//! The typed event taxonomy both engines emit.
//!
//! Every *engine* event carries *simulation* time only — a minute index for
//! tick-pipeline events or a millisecond offset for the event-driven
//! runtime's request-level events. No wall clock anywhere: traces from the
//! same seed are byte-identical across machines and reruns (the
//! `obs-sim-time` audit rule pins this). The one deliberate exception is
//! the `serve_*` family: those are *harness-side* telemetry from the
//! online serving front door (pulse-serve), whose whole point is wall-clock
//! throughput and decision latency. They are never emitted by an engine
//! replay, so engine-trace determinism is untouched.
//!
//! The JSONL encoding is one flat object per line with a `"type"`
//! discriminator, e.g.:
//!
//! ```text
//! {"type":"downgrade","minute":61,"func":4,"from":2,"to":0,"source":"policy","applied":true}
//! ```
//!
//! [`ObsEvent::to_json`] and [`ObsEvent::from_json`] are exact inverses for
//! every variant (the schema self-check below round-trips each one), which
//! is what lets offline tooling consume traces without this crate.

use crate::json::{parse_object, push_f64, push_json_str, Fields, ParseError};
use std::fmt::Write as _;

/// Which layer issued a downgrade/eviction action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionSource {
    /// The policy's cross-function adjustment (Algorithm 2 at a demand peak).
    Policy,
    /// Node-capacity enforcement flattening a footprint over the hard cap.
    Pressure,
}

impl ActionSource {
    fn as_str(self) -> &'static str {
        match self {
            ActionSource::Policy => "policy",
            ActionSource::Pressure => "pressure",
        }
    }

    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "policy" => Ok(ActionSource::Policy),
            "pressure" => Ok(ActionSource::Pressure),
            other => Err(ParseError::new(format!("unknown action source {other:?}"))),
        }
    }
}

/// The observability taxonomy of node-level faults (a mirror of the
/// runtime's fault kinds — this crate stays dependency-free, so the payload
/// a `Degraded` fault carries is not repeated here, only the class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeFaultClass {
    /// The node died: containers reaped, in-flight work aborted.
    Crash,
    /// The node runs slow (a straggler): durations stretched.
    Straggler,
    /// The node is unreachable: containers dropped, in-flight work finishes.
    Partition,
}

impl NodeFaultClass {
    fn as_str(self) -> &'static str {
        match self {
            NodeFaultClass::Crash => "crash",
            NodeFaultClass::Straggler => "straggler",
            NodeFaultClass::Partition => "partition",
        }
    }

    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "crash" => Ok(NodeFaultClass::Crash),
            "straggler" => Ok(NodeFaultClass::Straggler),
            "partition" => Ok(NodeFaultClass::Partition),
            other => Err(ParseError::new(format!("unknown fault class {other:?}"))),
        }
    }
}

/// One structured observation from an engine run. See the module docs for
/// the time semantics; `minute`-carrying events come from the minute-tick
/// pipeline, `at_ms`-carrying events from the runtime's request machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// Marks the start of one labelled run inside a shared stream (the
    /// experiment sweeps write several runs into one file).
    RunStart {
        /// Free-form run identity, e.g. `"chaos/mid/pulse"`.
        label: String,
    },
    /// The cross-function adjustment stage of one minute tick: how many
    /// actions the policy requested, how many actually moved a ledger slot,
    /// and the pre-adjustment keep-alive footprint it saw.
    Adjust {
        /// Minute being adjusted.
        minute: u64,
        /// Actions the policy returned.
        requested: usize,
        /// Actions that changed a slot (the ledger ignores holes, expired
        /// plans, and already-lower slots).
        applied: usize,
        /// Keep-alive demand (MB) presented to the policy.
        keepalive_mb: f64,
    },
    /// One downgrade action routed through the schedule ledger.
    Downgrade {
        /// Minute the clamp targets.
        minute: u64,
        /// Victim function.
        func: usize,
        /// Rung the action believed the slot held.
        from: usize,
        /// Rung the slot is clamped to.
        to: usize,
        /// Issuing layer.
        source: ActionSource,
        /// Whether the slot actually moved.
        applied: bool,
    },
    /// One eviction action routed through the schedule ledger.
    Evict {
        /// Minute the hole is punched at.
        minute: u64,
        /// Victim function.
        func: usize,
        /// Rung the action believed the slot held.
        from: usize,
        /// Issuing layer.
        source: ActionSource,
        /// Whether the slot actually changed.
        applied: bool,
    },
    /// One served function-minute in the minute engine.
    Serve {
        /// Minute served.
        minute: u64,
        /// Function invoked.
        func: usize,
        /// Invocations this minute.
        requests: u64,
        /// Cold starts among them (0 or 1 in the minute engine: same-minute
        /// followers reuse the freshly started container).
        cold_starts: u64,
    },
    /// One arrival served by the event-driven runtime.
    Arrival {
        /// Arrival time, ms since run start.
        at_ms: u64,
        /// Function invoked.
        func: usize,
        /// Whether a container existed (warm or still provisioning).
        warm: bool,
    },
    /// An arrival shed by admission control (never served).
    Shed {
        /// Shed time, ms since run start.
        at_ms: u64,
        /// Function whose arrival was shed.
        func: usize,
    },
    /// A fault-driven ladder degradation: provisioning retries exhausted,
    /// the runtime re-points the function one rung down.
    Degrade {
        /// Degradation time, ms since run start.
        at_ms: u64,
        /// Function degraded.
        func: usize,
        /// Rung that kept failing.
        from: usize,
        /// Rung now being provisioned.
        to: usize,
    },
    /// A container reaped after the whole ladder exhausted its retries.
    Reap {
        /// Reap time, ms since run start.
        at_ms: u64,
        /// Function whose container was reaped.
        func: usize,
    },
    /// The self-monitoring watchdog changed state at a minute tick.
    Watchdog {
        /// Tick at which the transition was observed.
        minute: u64,
        /// `true` = entered fallback, `false` = recovered.
        fallback: bool,
    },
    /// Keep-alive billing of one minute, post-adjustment.
    Bill {
        /// Minute billed.
        minute: u64,
        /// Billed keep-alive footprint, MB.
        keepalive_mb: f64,
        /// Billed keep-alive cost, USD.
        cost_usd: f64,
    },
    /// A node-level fault window opened (fleet runs only).
    NodeDown {
        /// Minute the fault struck.
        minute: u64,
        /// Affected node.
        node: usize,
        /// What kind of fault.
        kind: NodeFaultClass,
    },
    /// A node healed fully — no fault window covers it anymore.
    NodeRecovered {
        /// Minute the node came back up.
        minute: u64,
        /// Affected node.
        node: usize,
    },
    /// The rebalancer migrated a warm container between nodes.
    Migrate {
        /// Minute tick at which the rebalancer ran.
        minute: u64,
        /// Owning function.
        func: usize,
        /// Source node.
        from_node: usize,
        /// Destination node.
        to_node: usize,
    },
    /// A write-ahead journal epoch header. The journal opens with epoch 0;
    /// every checkpoint closes the current epoch and the next header marks
    /// the start of the tail that must be replayed on top of that snapshot.
    JournalEpoch {
        /// Epoch index, starting at 0.
        epoch: u64,
    },
    /// The online serving front door opened (pulse-serve). Harness-side
    /// telemetry: emitted once per serve run, before any request is
    /// admitted.
    ServeStart {
        /// Virtual horizon of the run, minutes.
        minutes: u64,
        /// Functions behind the front door.
        functions: usize,
        /// Load/transport mode label, e.g. `"live"`, `"replay"`, `"demo"`.
        mode: String,
    },
    /// The bounded ingress channel filled up and the front door shed
    /// arrivals without queueing them (transport-level backpressure, before
    /// the engine's admission control ever sees the requests).
    ServeBackpressure {
        /// Virtual time of the observation, ms since serve start.
        at_ms: u64,
        /// Arrivals dropped at the front door since the last report.
        dropped: u64,
    },
    /// One virtual minute of online serving completed.
    ServeTick {
        /// The completed minute.
        minute: u64,
        /// Requests admitted into the engine so far.
        admitted: u64,
        /// Requests shed so far (front door + engine admission).
        shed: u64,
        /// Events still pending in the engine queue at the tick.
        queue_depth: usize,
    },
    /// End-of-run serving report: volume, backpressure, and the
    /// decision-latency distribution (nanoseconds, from the pulse-obs
    /// histogram over per-`step` wall time).
    ServeSummary {
        /// Total requests admitted into the engine.
        admitted: u64,
        /// Total requests shed.
        shed: u64,
        /// Median per-decision latency, ns.
        p50_decision_ns: u64,
        /// Tail per-decision latency, ns.
        p99_decision_ns: u64,
        /// Wall-clock duration of the run, ms.
        wall_ms: u64,
        /// Sustained admitted-request throughput, requests per wall second.
        rps: f64,
    },
    /// A full engine snapshot embedded in the journal: the serialized
    /// document produced by a session's `snapshot()` as one opaque string.
    /// Restoring the snapshot and replaying the events after this record
    /// reproduces the uninterrupted run bit-identically.
    Checkpoint {
        /// Checkpoint sequence number within the run, starting at 0.
        seq: u64,
        /// The serialized snapshot document.
        snapshot: String,
    },
}

impl ObsEvent {
    /// The `"type"` discriminator this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::RunStart { .. } => "run_start",
            ObsEvent::Adjust { .. } => "adjust",
            ObsEvent::Downgrade { .. } => "downgrade",
            ObsEvent::Evict { .. } => "evict",
            ObsEvent::Serve { .. } => "serve",
            ObsEvent::Arrival { .. } => "arrival",
            ObsEvent::Shed { .. } => "shed",
            ObsEvent::Degrade { .. } => "degrade",
            ObsEvent::Reap { .. } => "reap",
            ObsEvent::Watchdog { .. } => "watchdog",
            ObsEvent::Bill { .. } => "bill",
            ObsEvent::NodeDown { .. } => "node_down",
            ObsEvent::NodeRecovered { .. } => "node_recovered",
            ObsEvent::Migrate { .. } => "migrate",
            ObsEvent::ServeStart { .. } => "serve_start",
            ObsEvent::ServeBackpressure { .. } => "serve_backpressure",
            ObsEvent::ServeTick { .. } => "serve_tick",
            ObsEvent::ServeSummary { .. } => "serve_summary",
            ObsEvent::JournalEpoch { .. } => "journal_epoch",
            ObsEvent::Checkpoint { .. } => "checkpoint",
        }
    }

    /// Serialize to one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"type\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            ObsEvent::RunStart { label } => {
                s.push_str(",\"label\":");
                push_json_str(&mut s, label);
            }
            ObsEvent::Adjust {
                minute,
                requested,
                applied,
                keepalive_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"minute\":{minute},\"requested\":{requested},\"applied\":{applied},\"keepalive_mb\":"
                );
                push_f64(&mut s, *keepalive_mb);
            }
            ObsEvent::Downgrade {
                minute,
                func,
                from,
                to,
                source,
                applied,
            } => {
                let _ = write!(
                    s,
                    ",\"minute\":{minute},\"func\":{func},\"from\":{from},\"to\":{to},\"source\":\"{}\",\"applied\":{applied}",
                    source.as_str()
                );
            }
            ObsEvent::Evict {
                minute,
                func,
                from,
                source,
                applied,
            } => {
                let _ = write!(
                    s,
                    ",\"minute\":{minute},\"func\":{func},\"from\":{from},\"source\":\"{}\",\"applied\":{applied}",
                    source.as_str()
                );
            }
            ObsEvent::Serve {
                minute,
                func,
                requests,
                cold_starts,
            } => {
                let _ = write!(
                    s,
                    ",\"minute\":{minute},\"func\":{func},\"requests\":{requests},\"cold_starts\":{cold_starts}"
                );
            }
            ObsEvent::Arrival { at_ms, func, warm } => {
                let _ = write!(s, ",\"at_ms\":{at_ms},\"func\":{func},\"warm\":{warm}");
            }
            ObsEvent::Shed { at_ms, func } => {
                let _ = write!(s, ",\"at_ms\":{at_ms},\"func\":{func}");
            }
            ObsEvent::Degrade {
                at_ms,
                func,
                from,
                to,
            } => {
                let _ = write!(
                    s,
                    ",\"at_ms\":{at_ms},\"func\":{func},\"from\":{from},\"to\":{to}"
                );
            }
            ObsEvent::Reap { at_ms, func } => {
                let _ = write!(s, ",\"at_ms\":{at_ms},\"func\":{func}");
            }
            ObsEvent::Watchdog { minute, fallback } => {
                let _ = write!(s, ",\"minute\":{minute},\"fallback\":{fallback}");
            }
            ObsEvent::Bill {
                minute,
                keepalive_mb,
                cost_usd,
            } => {
                let _ = write!(s, ",\"minute\":{minute},\"keepalive_mb\":");
                push_f64(&mut s, *keepalive_mb);
                s.push_str(",\"cost_usd\":");
                push_f64(&mut s, *cost_usd);
            }
            ObsEvent::NodeDown { minute, node, kind } => {
                let _ = write!(
                    s,
                    ",\"minute\":{minute},\"node\":{node},\"kind\":\"{}\"",
                    kind.as_str()
                );
            }
            ObsEvent::NodeRecovered { minute, node } => {
                let _ = write!(s, ",\"minute\":{minute},\"node\":{node}");
            }
            ObsEvent::Migrate {
                minute,
                func,
                from_node,
                to_node,
            } => {
                let _ = write!(
                    s,
                    ",\"minute\":{minute},\"func\":{func},\"from_node\":{from_node},\"to_node\":{to_node}"
                );
            }
            ObsEvent::ServeStart {
                minutes,
                functions,
                mode,
            } => {
                let _ = write!(
                    s,
                    ",\"minutes\":{minutes},\"functions\":{functions},\"mode\":"
                );
                push_json_str(&mut s, mode);
            }
            ObsEvent::ServeBackpressure { at_ms, dropped } => {
                let _ = write!(s, ",\"at_ms\":{at_ms},\"dropped\":{dropped}");
            }
            ObsEvent::ServeTick {
                minute,
                admitted,
                shed,
                queue_depth,
            } => {
                let _ = write!(
                    s,
                    ",\"minute\":{minute},\"admitted\":{admitted},\"shed\":{shed},\"queue_depth\":{queue_depth}"
                );
            }
            ObsEvent::ServeSummary {
                admitted,
                shed,
                p50_decision_ns,
                p99_decision_ns,
                wall_ms,
                rps,
            } => {
                let _ = write!(
                    s,
                    ",\"admitted\":{admitted},\"shed\":{shed},\"p50_decision_ns\":{p50_decision_ns},\"p99_decision_ns\":{p99_decision_ns},\"wall_ms\":{wall_ms},\"rps\":"
                );
                push_f64(&mut s, *rps);
            }
            ObsEvent::JournalEpoch { epoch } => {
                let _ = write!(s, ",\"epoch\":{epoch}");
            }
            ObsEvent::Checkpoint { seq, snapshot } => {
                let _ = write!(s, ",\"seq\":{seq},\"snapshot\":");
                push_json_str(&mut s, snapshot);
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line back into an event — the exact inverse of
    /// [`Self::to_json`] (and tolerant of field reordering).
    pub fn from_json(line: &str) -> Result<Self, ParseError> {
        let fields = Fields(parse_object(line)?);
        match fields.str("type")? {
            "run_start" => Ok(ObsEvent::RunStart {
                label: fields.str("label")?.to_string(),
            }),
            "adjust" => Ok(ObsEvent::Adjust {
                minute: fields.u64("minute")?,
                requested: fields.usize("requested")?,
                applied: fields.usize("applied")?,
                keepalive_mb: fields.f64("keepalive_mb")?,
            }),
            "downgrade" => Ok(ObsEvent::Downgrade {
                minute: fields.u64("minute")?,
                func: fields.usize("func")?,
                from: fields.usize("from")?,
                to: fields.usize("to")?,
                source: ActionSource::parse(fields.str("source")?)?,
                applied: fields.bool("applied")?,
            }),
            "evict" => Ok(ObsEvent::Evict {
                minute: fields.u64("minute")?,
                func: fields.usize("func")?,
                from: fields.usize("from")?,
                source: ActionSource::parse(fields.str("source")?)?,
                applied: fields.bool("applied")?,
            }),
            "serve" => Ok(ObsEvent::Serve {
                minute: fields.u64("minute")?,
                func: fields.usize("func")?,
                requests: fields.u64("requests")?,
                cold_starts: fields.u64("cold_starts")?,
            }),
            "arrival" => Ok(ObsEvent::Arrival {
                at_ms: fields.u64("at_ms")?,
                func: fields.usize("func")?,
                warm: fields.bool("warm")?,
            }),
            "shed" => Ok(ObsEvent::Shed {
                at_ms: fields.u64("at_ms")?,
                func: fields.usize("func")?,
            }),
            "degrade" => Ok(ObsEvent::Degrade {
                at_ms: fields.u64("at_ms")?,
                func: fields.usize("func")?,
                from: fields.usize("from")?,
                to: fields.usize("to")?,
            }),
            "reap" => Ok(ObsEvent::Reap {
                at_ms: fields.u64("at_ms")?,
                func: fields.usize("func")?,
            }),
            "watchdog" => Ok(ObsEvent::Watchdog {
                minute: fields.u64("minute")?,
                fallback: fields.bool("fallback")?,
            }),
            "bill" => Ok(ObsEvent::Bill {
                minute: fields.u64("minute")?,
                keepalive_mb: fields.f64("keepalive_mb")?,
                cost_usd: fields.f64("cost_usd")?,
            }),
            "node_down" => Ok(ObsEvent::NodeDown {
                minute: fields.u64("minute")?,
                node: fields.usize("node")?,
                kind: NodeFaultClass::parse(fields.str("kind")?)?,
            }),
            "node_recovered" => Ok(ObsEvent::NodeRecovered {
                minute: fields.u64("minute")?,
                node: fields.usize("node")?,
            }),
            "migrate" => Ok(ObsEvent::Migrate {
                minute: fields.u64("minute")?,
                func: fields.usize("func")?,
                from_node: fields.usize("from_node")?,
                to_node: fields.usize("to_node")?,
            }),
            "serve_start" => Ok(ObsEvent::ServeStart {
                minutes: fields.u64("minutes")?,
                functions: fields.usize("functions")?,
                mode: fields.str("mode")?.to_string(),
            }),
            "serve_backpressure" => Ok(ObsEvent::ServeBackpressure {
                at_ms: fields.u64("at_ms")?,
                dropped: fields.u64("dropped")?,
            }),
            "serve_tick" => Ok(ObsEvent::ServeTick {
                minute: fields.u64("minute")?,
                admitted: fields.u64("admitted")?,
                shed: fields.u64("shed")?,
                queue_depth: fields.usize("queue_depth")?,
            }),
            "serve_summary" => Ok(ObsEvent::ServeSummary {
                admitted: fields.u64("admitted")?,
                shed: fields.u64("shed")?,
                p50_decision_ns: fields.u64("p50_decision_ns")?,
                p99_decision_ns: fields.u64("p99_decision_ns")?,
                wall_ms: fields.u64("wall_ms")?,
                rps: fields.f64("rps")?,
            }),
            "journal_epoch" => Ok(ObsEvent::JournalEpoch {
                epoch: fields.u64("epoch")?,
            }),
            "checkpoint" => Ok(ObsEvent::Checkpoint {
                seq: fields.u64("seq")?,
                snapshot: fields.str("snapshot")?.to_string(),
            }),
            other => Err(ParseError::new(format!("unknown event type {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One exemplar of every variant — kept in sync with the enum by the
    /// `kind` match (adding a variant without extending this list fails the
    /// exhaustiveness check there first).
    fn exemplars() -> Vec<ObsEvent> {
        vec![
            ObsEvent::RunStart {
                label: "chaos/mid/pulse \"q\"\n".to_string(),
            },
            ObsEvent::Adjust {
                minute: 61,
                requested: 3,
                applied: 2,
                keepalive_mb: 1536.25,
            },
            ObsEvent::Downgrade {
                minute: 61,
                func: 4,
                from: 2,
                to: 0,
                source: ActionSource::Policy,
                applied: true,
            },
            ObsEvent::Evict {
                minute: 61,
                func: 7,
                from: 0,
                source: ActionSource::Pressure,
                applied: false,
            },
            ObsEvent::Serve {
                minute: 61,
                func: 4,
                requests: 9,
                cold_starts: 1,
            },
            ObsEvent::Arrival {
                at_ms: 3_660_001,
                func: 4,
                warm: true,
            },
            ObsEvent::Shed {
                at_ms: 3_660_777,
                func: 9,
            },
            ObsEvent::Degrade {
                at_ms: 3_661_000,
                func: 2,
                from: 2,
                to: 1,
            },
            ObsEvent::Reap {
                at_ms: 3_662_000,
                func: 2,
            },
            ObsEvent::Watchdog {
                minute: 62,
                fallback: true,
            },
            ObsEvent::Bill {
                minute: 61,
                keepalive_mb: 0.1 + 0.2,
                cost_usd: 1.234e-5,
            },
            ObsEvent::NodeDown {
                minute: 63,
                node: 2,
                kind: NodeFaultClass::Partition,
            },
            ObsEvent::NodeRecovered {
                minute: 68,
                node: 2,
            },
            ObsEvent::Migrate {
                minute: 64,
                func: 5,
                from_node: 2,
                to_node: 0,
            },
            ObsEvent::ServeStart {
                minutes: 10,
                functions: 12,
                mode: "demo \"open-loop\"".to_string(),
            },
            ObsEvent::ServeBackpressure {
                at_ms: 61_250,
                dropped: 4_096,
            },
            ObsEvent::ServeTick {
                minute: 1,
                admitted: 6_000_000,
                shed: 12_345,
                queue_depth: 42,
            },
            ObsEvent::ServeSummary {
                admitted: 60_000_000,
                shed: 54_321,
                p50_decision_ns: 511,
                p99_decision_ns: 1_023,
                wall_ms: 30_000,
                rps: 198_765.25,
            },
            ObsEvent::JournalEpoch { epoch: 2 },
            ObsEvent::Checkpoint {
                seq: 1,
                snapshot: "{\"type\":\"snapshot\",\"version\":1}\n{\"t\":0.30000000000000004}"
                    .to_string(),
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_jsonl() {
        for ev in exemplars() {
            let line = ev.to_json();
            let back = ObsEvent::from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn kinds_are_unique_and_stable() {
        let kinds: Vec<&str> = exemplars().iter().map(ObsEvent::kind).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len(), "duplicate type discriminator");
        assert!(kinds.contains(&"downgrade"));
        assert!(kinds.contains(&"evict"));
    }

    #[test]
    fn parser_accepts_reordered_fields() {
        let ev = ObsEvent::from_json(
            r#"{"func":4,"applied":true,"minute":61,"source":"policy","to":0,"from":2,"type":"downgrade"}"#,
        )
        .unwrap();
        assert_eq!(
            ev,
            ObsEvent::Downgrade {
                minute: 61,
                func: 4,
                from: 2,
                to: 0,
                source: ActionSource::Policy,
                applied: true,
            }
        );
    }

    #[test]
    fn unknown_type_and_bad_source_are_rejected() {
        assert!(ObsEvent::from_json(r#"{"type":"nope"}"#).is_err());
        assert!(ObsEvent::from_json(
            r#"{"type":"evict","minute":1,"func":0,"from":0,"source":"gremlin","applied":true}"#
        )
        .is_err());
    }

    #[test]
    fn non_finite_bill_parses_back_as_nan() {
        let ev = ObsEvent::Bill {
            minute: 5,
            keepalive_mb: f64::INFINITY,
            cost_usd: 0.0,
        };
        let line = ev.to_json();
        match ObsEvent::from_json(&line).unwrap() {
            ObsEvent::Bill { keepalive_mb, .. } => assert!(keepalive_mb.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }
}

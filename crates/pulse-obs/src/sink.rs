//! Trace sinks: where engines send their [`ObsEvent`] streams.
//!
//! The contract is built for hot paths: engines hold an
//! `Option<&mut dyn TraceSink>` and call [`emit`], which constructs the
//! event **only** when a sink is present and [`TraceSink::enabled`] — with
//! [`NullSink`] (or no sink at all) the closure never runs, so the
//! instrumented and un-instrumented paths execute the same arithmetic and
//! results stay bit-identical (pinned by the transparency suite in
//! `tests/robustness.rs`).

use crate::event::ObsEvent;
use std::io::Write;

/// A consumer of engine events. Implementations must not affect simulation
/// state — sinks observe, they never steer.
pub trait TraceSink {
    /// Cheap gate the engines check before building an event. Sinks that
    /// discard everything return `false` so event construction is skipped
    /// entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn record(&mut self, event: &ObsEvent);
}

/// Build and record an event only when a sink is attached and enabled. This
/// is the one emission path the engines use; `make` runs lazily so the
/// disabled path costs a branch and nothing else.
#[inline]
pub fn emit(sink: &mut Option<&mut dyn TraceSink>, make: impl FnOnce() -> ObsEvent) {
    if let Some(s) = sink {
        if s.enabled() {
            let event = make();
            s.record(&event);
        }
    }
}

/// The zero-cost default: disabled, discards everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &ObsEvent) {}
}

/// An in-memory sink that keeps every event — for tests and programmatic
/// consumers that want the typed stream rather than JSONL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    events: Vec<ObsEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every event recorded so far, in emission order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// How many recorded events satisfy `pred`.
    pub fn count(&self, pred: impl Fn(&ObsEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Drop the recorded events and return them.
    pub fn take(&mut self) -> Vec<ObsEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &ObsEvent) {
        self.events.push(event.clone());
    }
}

/// Streams events as JSON Lines — one [`ObsEvent::to_json`] object per line
/// — into any [`Write`] (a `BufWriter<File>`, a `Vec<u8>` in tests, …).
///
/// I/O errors never panic the simulation: the first failure latches
/// [`Self::had_error`] and further writes are skipped.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
    failed: bool,
    flush_every: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            lines: 0,
            failed: false,
            flush_every: 0,
        }
    }

    /// Wrap a writer with a periodic durability point: the sink flushes
    /// after every `n` lines written, bounding how many events a crash can
    /// lose to `n` plus one possibly-torn line (journal replay tolerates
    /// the latter). `n = 0` disables periodic flushing.
    pub fn with_flush_every(writer: W, n: u64) -> Self {
        Self {
            writer,
            lines: 0,
            failed: false,
            flush_every: n,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Whether any write failed (subsequent events were dropped).
    pub fn had_error(&self) -> bool {
        self.failed
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Unwrap the writer (callers flush/close it themselves).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &ObsEvent) {
        if self.failed {
            return;
        }
        let mut line = event.to_json();
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => {
                self.lines += 1;
                if self.flush_every > 0 && self.lines.is_multiple_of(self.flush_every) {
                    let _ = self.writer.flush();
                }
            }
            Err(_) => self.failed = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsEvent {
        ObsEvent::Serve {
            minute: 3,
            func: 1,
            requests: 4,
            cold_starts: 1,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_emit_skips_construction() {
        assert!(!NullSink.enabled());
        let mut built = false;
        let mut null = NullSink;
        let mut sink: Option<&mut dyn TraceSink> = Some(&mut null);
        emit(&mut sink, || {
            built = true;
            sample()
        });
        assert!(!built, "NullSink must not construct events");
        let mut none: Option<&mut dyn TraceSink> = None;
        emit(&mut none, || {
            built = true;
            sample()
        });
        assert!(!built, "absent sink must not construct events");
    }

    #[test]
    fn memory_sink_keeps_order_and_counts() {
        let mut mem = MemorySink::new();
        {
            let mut sink: Option<&mut dyn TraceSink> = Some(&mut mem);
            emit(&mut sink, sample);
            emit(&mut sink, || ObsEvent::Reap { at_ms: 9, func: 0 });
        }
        assert_eq!(mem.events().len(), 2);
        assert_eq!(mem.count(|e| e.kind() == "reap"), 1);
        assert_eq!(mem.take().len(), 2);
        assert!(mem.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&sample());
        sink.record(&ObsEvent::RunStart {
            label: "t".to_string(),
        });
        assert_eq!(sink.lines(), 2);
        assert!(!sink.had_error());
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(ObsEvent::from_json(lines[0]).unwrap(), sample());
    }

    #[test]
    fn jsonl_sink_latches_write_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.record(&sample());
        sink.record(&sample());
        assert_eq!(sink.lines(), 0);
        assert!(sink.had_error());
    }
}

//! A public flat-record codec for checkpoint documents.
//!
//! Snapshots serialize as multi-line documents of typed flat records — one
//! JSON object per line with a `"type"` discriminator, the same wire shape
//! as [`crate::ObsEvent`] but open-schema: the engines define their own
//! record kinds (schedule rows, queue contents, RNG cursors) without this
//! crate knowing them. [`RecordBuilder`] writes a record, [`Record`] parses
//! one back with typed field access; numeric series pack as comma-joined
//! shortest-round-trip values inside a single string field, so a
//! 10,000-entry event queue is one line, and every `f64` survives the trip
//! bit-exactly ([`push_f64`] semantics: non-finite values become `null` and
//! parse back as NaN).

use crate::json::{parse_object, push_f64, push_json_str, Fields, ParseError};
use std::fmt::Write as _;

/// Builds one flat record line (`{"type":"...",...}`, no trailing newline).
#[derive(Debug)]
pub struct RecordBuilder {
    out: String,
}

impl RecordBuilder {
    /// Start a record with the given `"type"` discriminator.
    pub fn new(kind: &str) -> Self {
        let mut out = String::with_capacity(64);
        out.push_str("{\"type\":");
        push_json_str(&mut out, kind);
        Self { out }
    }

    /// Append a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        push_json_str(&mut self.out, value);
        self
    }

    /// Append an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Append a `usize` field.
    pub fn usize(mut self, key: &str, value: usize) -> Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Append a float field in shortest round-trip form (`null` when
    /// non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        push_f64(&mut self.out, value);
        self
    }

    /// Append a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Append a packed list of unsigned integers: comma-joined decimal
    /// values inside one string field (empty list → empty string).
    pub fn u64_list(mut self, key: &str, values: &[u64]) -> Self {
        self.key(key);
        let mut packed = String::with_capacity(values.len() * 4);
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                packed.push(',');
            }
            let _ = write!(packed, "{v}");
        }
        push_json_str(&mut self.out, &packed);
        self
    }

    /// Append a packed list of floats: comma-joined shortest-round-trip
    /// values inside one string field (non-finite → `null`, parsed back as
    /// NaN; empty list → empty string).
    pub fn f64_list(mut self, key: &str, values: &[f64]) -> Self {
        self.key(key);
        let mut packed = String::with_capacity(values.len() * 8);
        for (i, &v) in values.iter().enumerate() {
            if i > 0 {
                packed.push(',');
            }
            push_f64(&mut packed, v);
        }
        push_json_str(&mut self.out, &packed);
        self
    }

    /// Finish the record and return the line.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }

    fn key(&mut self, key: &str) {
        self.out.push(',');
        push_json_str(&mut self.out, key);
        self.out.push(':');
    }
}

/// One parsed flat record with typed field access.
#[derive(Debug)]
pub struct Record {
    kind: String,
    fields: Fields,
}

impl Record {
    /// Parse one record line. Fails when the line is not a flat JSON object
    /// or lacks a string `"type"` field.
    pub fn parse(line: &str) -> Result<Self, ParseError> {
        let fields = Fields(parse_object(line)?);
        let kind = fields.str("type")?.to_string();
        Ok(Self { kind, fields })
    }

    /// The record's `"type"` discriminator.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// A string field.
    pub fn str(&self, key: &str) -> Result<&str, ParseError> {
        self.fields.str(key)
    }

    /// An unsigned integer field.
    pub fn u64(&self, key: &str) -> Result<u64, ParseError> {
        self.fields.u64(key)
    }

    /// A `usize` field.
    pub fn usize(&self, key: &str) -> Result<usize, ParseError> {
        self.fields.usize(key)
    }

    /// A float field (`null` parses as NaN).
    pub fn f64(&self, key: &str) -> Result<f64, ParseError> {
        self.fields.f64(key)
    }

    /// A boolean field.
    pub fn bool(&self, key: &str) -> Result<bool, ParseError> {
        self.fields.bool(key)
    }

    /// A packed unsigned-integer list written by
    /// [`RecordBuilder::u64_list`].
    pub fn u64_list(&self, key: &str) -> Result<Vec<u64>, ParseError> {
        let packed = self.fields.str(key)?;
        if packed.is_empty() {
            return Ok(Vec::new());
        }
        packed
            .split(',')
            .map(|tok| {
                tok.parse()
                    .map_err(|_| ParseError::new(format!("field {key:?}: {tok:?} is not a u64")))
            })
            .collect()
    }

    /// A packed float list written by [`RecordBuilder::f64_list`].
    pub fn f64_list(&self, key: &str) -> Result<Vec<f64>, ParseError> {
        let packed = self.fields.str(key)?;
        if packed.is_empty() {
            return Ok(Vec::new());
        }
        packed
            .split(',')
            .map(|tok| {
                if tok == "null" {
                    return Ok(f64::NAN);
                }
                tok.parse()
                    .map_err(|_| ParseError::new(format!("field {key:?}: {tok:?} is not an f64")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_fields_round_trip() {
        let line = RecordBuilder::new("probe")
            .str("name", "a \"b\"\nc")
            .u64("count", 42)
            .usize("idx", 7)
            .f64("x", 0.1 + 0.2)
            .bool("ok", true)
            .finish();
        let rec = Record::parse(&line).unwrap();
        assert_eq!(rec.kind(), "probe");
        assert_eq!(rec.str("name").unwrap(), "a \"b\"\nc");
        assert_eq!(rec.u64("count").unwrap(), 42);
        assert_eq!(rec.usize("idx").unwrap(), 7);
        assert_eq!(rec.f64("x").unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(rec.bool("ok").unwrap());
    }

    #[test]
    fn packed_lists_round_trip_bit_exactly() {
        let us = vec![0u64, 1, u64::MAX, 42];
        let fs = vec![0.0, -1.5, 0.1 + 0.2, f64::MIN_POSITIVE, f64::NAN];
        let line = RecordBuilder::new("lists")
            .u64_list("us", &us)
            .f64_list("fs", &fs)
            .finish();
        let rec = Record::parse(&line).unwrap();
        assert_eq!(rec.u64_list("us").unwrap(), us);
        let back = rec.f64_list("fs").unwrap();
        assert_eq!(back.len(), fs.len());
        for (b, f) in back.iter().zip(fs.iter()) {
            assert_eq!(b.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn empty_lists_round_trip() {
        let line = RecordBuilder::new("empty")
            .u64_list("us", &[])
            .f64_list("fs", &[])
            .finish();
        let rec = Record::parse(&line).unwrap();
        assert!(rec.u64_list("us").unwrap().is_empty());
        assert!(rec.f64_list("fs").unwrap().is_empty());
    }

    #[test]
    fn malformed_records_are_typed_errors() {
        assert!(Record::parse("not json").is_err());
        assert!(Record::parse("{\"minute\":3}").is_err(), "missing type");
        let rec = Record::parse("{\"type\":\"t\",\"us\":\"1,x\"}").unwrap();
        assert!(rec.u64_list("us").is_err());
        let rec = Record::parse("{\"type\":\"t\",\"fs\":\"1.5,?\"}").unwrap();
        assert!(rec.f64_list("fs").is_err());
        assert!(rec.u64("missing").is_err());
    }

    #[test]
    fn records_nest_inside_event_strings() {
        // A snapshot document line survives embedding in a Checkpoint event.
        let line = RecordBuilder::new("rng")
            .u64_list("s", &[1, 2, 3, 4])
            .finish();
        let ev = crate::ObsEvent::Checkpoint {
            seq: 0,
            snapshot: line.clone(),
        };
        match crate::ObsEvent::from_json(&ev.to_json()).unwrap() {
            crate::ObsEvent::Checkpoint { snapshot, .. } => {
                let rec = Record::parse(&snapshot).unwrap();
                assert_eq!(rec.u64_list("s").unwrap(), vec![1, 2, 3, 4]);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}

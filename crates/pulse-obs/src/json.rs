//! A hand-rolled JSON subset for the event schema.
//!
//! The workspace's vendored `serde` stand-in is inert (marker traits only),
//! so the JSONL encoding is written out by hand here: flat objects whose
//! values are strings, integers, finite floats, booleans, or `null`. That is
//! exactly the shape every [`crate::ObsEvent`] serializes to, and the parser
//! accepts exactly that shape back — the round-trip is pinned by the schema
//! self-check tests in [`crate::event`].

use std::fmt::Write as _;

/// Why a JSON line failed to parse back into an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the first problem found.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid event JSON: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// One parsed field value: strings are unescaped; everything else (numbers,
/// booleans, `null`) is kept as its raw token and interpreted per-field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Token {
    Str(String),
    Raw(String),
}

/// Append `s` as a JSON string literal (quotes and escapes included).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float field value: finite values print in Rust's shortest
/// round-trip form, non-finite values become `null` (JSON has no NaN/inf;
/// the parser maps `null` back to NaN).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parse one flat JSON object (`{"k": v, ...}`) into its fields, in order.
pub(crate) fn parse_object(line: &str) -> Result<Vec<(String, Token)>, ParseError> {
    let mut chars = line.trim().chars().peekable();
    expect_char(&mut chars, '{')?;
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finish(chars, fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect_char(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = parse_value(&mut chars)?;
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return finish(chars, fields),
            other => {
                return Err(ParseError::new(format!(
                    "expected ',' or '}}', got {other:?}"
                )))
            }
        }
    }
}

fn finish(
    mut chars: std::iter::Peekable<std::str::Chars<'_>>,
    fields: Vec<(String, Token)>,
) -> Result<Vec<(String, Token)>, ParseError> {
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(fields),
        Some(c) => Err(ParseError::new(format!(
            "trailing input after object: {c:?}"
        ))),
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect_char(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    want: char,
) -> Result<(), ParseError> {
    skip_ws(chars);
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(ParseError::new(format!("expected {want:?}, got {other:?}"))),
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, ParseError> {
    expect_char(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err(ParseError::new("unterminated string")),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| ParseError::new("bad \\u escape"))?;
                        code = code * 16 + d;
                    }
                    let c = char::from_u32(code)
                        .ok_or_else(|| ParseError::new("\\u escape is not a scalar value"))?;
                    out.push(c);
                }
                other => return Err(ParseError::new(format!("bad escape {other:?}"))),
            },
            Some(c) => out.push(c),
        }
    }
}

fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Token, ParseError> {
    match chars.peek() {
        Some('"') => parse_string(chars).map(Token::Str),
        Some(&c) if c == 't' || c == 'f' || c == 'n' || c == '-' || c.is_ascii_digit() => {
            let mut raw = String::new();
            while chars
                .peek()
                .is_some_and(|&c| c.is_ascii_alphanumeric() || "+-.".contains(c))
            {
                // The next() must yield the peeked char; the guard above
                // guarantees it exists.
                if let Some(c) = chars.next() {
                    raw.push(c);
                }
            }
            Ok(Token::Raw(raw))
        }
        other => Err(ParseError::new(format!("unexpected value start {other:?}"))),
    }
}

/// Typed field lookups over a parsed object.
#[derive(Debug)]
pub(crate) struct Fields(pub(crate) Vec<(String, Token)>);

impl Fields {
    fn find(&self, key: &str) -> Result<&Token, ParseError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| ParseError::new(format!("missing field {key:?}")))
    }

    pub(crate) fn str(&self, key: &str) -> Result<&str, ParseError> {
        match self.find(key)? {
            Token::Str(s) => Ok(s),
            Token::Raw(r) => Err(ParseError::new(format!(
                "field {key:?}: expected string, got {r}"
            ))),
        }
    }

    fn raw(&self, key: &str) -> Result<&str, ParseError> {
        match self.find(key)? {
            Token::Raw(r) => Ok(r),
            Token::Str(_) => Err(ParseError::new(format!("field {key:?}: unexpected string"))),
        }
    }

    pub(crate) fn u64(&self, key: &str) -> Result<u64, ParseError> {
        let raw = self.raw(key)?;
        raw.parse()
            .map_err(|_| ParseError::new(format!("field {key:?}: {raw} is not a u64")))
    }

    pub(crate) fn usize(&self, key: &str) -> Result<usize, ParseError> {
        let raw = self.raw(key)?;
        raw.parse()
            .map_err(|_| ParseError::new(format!("field {key:?}: {raw} is not a usize")))
    }

    pub(crate) fn f64(&self, key: &str) -> Result<f64, ParseError> {
        let raw = self.raw(key)?;
        if raw == "null" {
            return Ok(f64::NAN);
        }
        raw.parse()
            .map_err(|_| ParseError::new(format!("field {key:?}: {raw} is not an f64")))
    }

    pub(crate) fn bool(&self, key: &str) -> Result<bool, ParseError> {
        match self.raw(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            raw => Err(ParseError::new(format!(
                "field {key:?}: {raw} is not a bool"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let fields =
            Fields(parse_object(r#"{"type":"bill","minute":3,"mb":512.5,"ok":true}"#).unwrap());
        assert_eq!(fields.str("type").unwrap(), "bill");
        assert_eq!(fields.u64("minute").unwrap(), 3);
        assert!((fields.f64("mb").unwrap() - 512.5).abs() < 1e-12);
        assert!(fields.bool("ok").unwrap());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let line = format!("{{\"s\":{out}}}");
        let fields = Fields(parse_object(&line).unwrap());
        assert_eq!(fields.str("s").unwrap(), "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn non_finite_floats_become_null_and_parse_as_nan() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let fields = Fields(parse_object(r#"{"v":null}"#).unwrap());
        assert!(fields.f64("v").unwrap().is_nan());
    }

    #[test]
    fn finite_floats_round_trip_exactly() {
        for v in [0.0, 1.5, 1e-12, 123456.789, 0.1 + 0.2, f64::MIN_POSITIVE] {
            let mut out = String::new();
            push_f64(&mut out, v);
            let line = format!("{{\"v\":{out}}}");
            let back = Fields(parse_object(&line).unwrap()).f64("v").unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object(r#"{"a" 1}"#).is_err());
        let fields = Fields(parse_object(r#"{"a":1}"#).unwrap());
        assert!(fields.u64("missing").is_err());
        assert!(fields.str("a").is_err());
        assert!(fields.bool("a").is_err());
    }

    #[test]
    fn empty_object_is_valid() {
        assert!(parse_object("{}").unwrap().is_empty());
    }
}

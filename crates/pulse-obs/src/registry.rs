//! Cheap named metrics: counters and log-bucketed histograms.
//!
//! Registries are built for the parallel campaign runner's shape: each
//! worker owns a private registry, records into it with index-based ids
//! (no hashing, no locking on the hot path), and the per-worker registries
//! are [`CounterRegistry::merge`]d after the workers join. Merging is
//! commutative and associative, so the merged totals are independent of
//! worker scheduling — a determinism property the campaign tests rely on.

/// Handle to one registered counter (an index; `Copy`, cheap to pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// A set of named monotonic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    names: Vec<&'static str>,
    values: Vec<u64>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` (or find it, if already registered) and return its id.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return CounterId(i);
        }
        self.names.push(name);
        self.values.push(0);
        CounterId(self.names.len() - 1)
    }

    /// Add `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        if let Some(v) = self.values.get_mut(id.0) {
            *v = v.saturating_add(n);
        }
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of `name` (0 when never registered).
    pub fn get(&self, name: &str) -> u64 {
        self.names
            .iter()
            .position(|&n| n == name)
            .and_then(|i| self.values.get(i).copied())
            .unwrap_or(0)
    }

    /// All `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.values.iter().copied())
    }

    /// Fold another registry into this one, matching counters by name and
    /// registering any the other has that this one lacks.
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (name, value) in other.iter() {
            let id = self.counter(name);
            self.add(id, value);
        }
    }
}

/// Handle to one registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(usize);

/// Number of power-of-two buckets: bucket `i` holds values whose bit length
/// is `i` (bucket 0 = the value 0, bucket 64 = values ≥ 2⁶³).
const N_BUCKETS: usize = 65;

/// A fixed-footprint histogram over `u64` samples with power-of-two buckets
/// — coarse (one bucket per bit length) but allocation-free, mergeable, and
/// exact for `count`/`sum`/`min`/`max`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(v: u64) -> usize {
        // Bit length of v: 0 → 0, 1 → 1, 2..=3 → 2, … (≤ 64, so the
        // conversion never truncates).
        usize::try_from(64 - v.leading_zeros()).unwrap_or(N_BUCKETS - 1)
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            // u64 → f64 is a value conversion, not a truncation.
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `pct`-th percentile sample
    /// (nearest-rank over buckets; `pct` is clamped to 0..=100). Exact to
    /// within one power of two — enough to tell a 2 ms run from a 2 s one.
    pub fn approx_percentile(&self, pct: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let pct = pct.min(100);
        // Nearest-rank: the smallest rank r with r ≥ pct% of count (≥ 1).
        let target = (self.count * pct).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(match i {
                    0 => 0,
                    i if i >= 64 => u64::MAX,
                    i => (1u64 << i) - 1,
                });
            }
        }
        Some(u64::MAX)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A set of named histograms, mirroring [`CounterRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramRegistry {
    names: Vec<&'static str>,
    hists: Vec<Histogram>,
}

impl HistogramRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` (or find it) and return its id.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return HistogramId(i);
        }
        self.names.push(name);
        self.hists.push(Histogram::new());
        HistogramId(self.names.len() - 1)
    }

    /// Record one sample into a histogram.
    pub fn record(&mut self, id: HistogramId, v: u64) {
        if let Some(h) = self.hists.get_mut(id.0) {
            h.record(v);
        }
    }

    /// The histogram registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.names
            .iter()
            .position(|&n| n == name)
            .and_then(|i| self.hists.get(i))
    }

    /// All `(name, histogram)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.names.iter().copied().zip(self.hists.iter())
    }

    /// Fold another registry into this one, matching by name.
    pub fn merge(&mut self, other: &HistogramRegistry) {
        for (name, hist) in other.iter() {
            let id = self.histogram(name);
            if let Some(h) = self.hists.get_mut(id.0) {
                h.merge(hist);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;

    #[test]
    fn counters_register_add_and_merge_by_name() {
        let mut a = CounterRegistry::new();
        let runs = a.counter("runs");
        let colds = a.counter("cold_starts");
        a.inc(runs);
        a.add(colds, 5);
        assert_eq!(a.counter("runs"), runs, "re-registration finds the id");
        assert_eq!(a.get("runs"), 1);
        assert_eq!(a.get("absent"), 0);

        let mut b = CounterRegistry::new();
        // Registered in a different order, plus a name `a` lacks.
        let extra = b.counter("extra");
        let runs_b = b.counter("runs");
        b.inc(extra);
        b.add(runs_b, 9);
        a.merge(&b);
        assert_eq!(a.get("runs"), 10);
        assert_eq!(a.get("extra"), 1);
        assert_eq!(a.get("cold_starts"), 5);
    }

    #[test]
    fn counter_merge_is_order_independent() {
        let mk = |n: u64| {
            let mut r = CounterRegistry::new();
            let id = r.counter("x");
            r.add(id, n);
            r
        };
        let mut ab = mk(3);
        ab.merge(&mk(4));
        let mut ba = mk(4);
        ba.merge(&mk(3));
        assert_eq!(ab.get("x"), ba.get("x"));
    }

    #[test]
    fn histogram_tracks_exact_aggregates() {
        let mut h = Histogram::new();
        assert_eq!(h.approx_percentile(50), None);
        assert_eq!(h.min(), None);
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1_000_000));
        assert_eq!(h.mean(), 1_001_006.0 / 6.0);
    }

    #[test]
    fn percentile_bounds_bracket_the_sample() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 sample is 500 (bit length 9 ⇒ bucket bound 511).
        assert_eq!(h.approx_percentile(50), Some(511));
        assert_eq!(h.approx_percentile(100), Some(1023));
        assert_eq!(h.approx_percentile(0), Some(1), "lowest non-empty bucket");
        // Extremes of the bucket range.
        let mut edges = Histogram::new();
        edges.record(0);
        edges.record(u64::MAX);
        assert_eq!(edges.approx_percentile(0), Some(0));
        assert_eq!(edges.approx_percentile(100), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_equals_recording_everything_in_one() {
        let xs = [3u64, 7, 9, 1 << 40];
        let ys = [0u64, 2, 1 << 63];
        let mut merged = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for &v in &xs {
            merged.record(v);
            left.record(v);
        }
        for &v in &ys {
            merged.record(v);
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(left, merged);
    }

    #[test]
    fn histogram_registry_merges_by_name() {
        let mut a = HistogramRegistry::new();
        let cost = a.histogram("run_cost");
        a.record(cost, 100);
        let mut b = HistogramRegistry::new();
        let other = b.histogram("run_cold_starts");
        b.record(other, 2);
        let cost_b = b.histogram("run_cost");
        b.record(cost_b, 300);
        a.merge(&b);
        let merged = a.get("run_cost").unwrap();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), 400);
        assert_eq!(a.get("run_cold_starts").unwrap().count(), 1);
        assert!(a.get("absent").is_none());
    }

    #[test]
    fn saturation_not_overflow() {
        let mut c = CounterRegistry::new();
        let id = c.counter("big");
        c.add(id, u64::MAX);
        c.inc(id);
        assert_eq!(c.get("big"), u64::MAX);
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }
}

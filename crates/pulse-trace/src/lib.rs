//! # pulse-trace — serverless invocation traces for PULSE
//!
//! The paper drives its evaluation with the Microsoft Azure Functions
//! production trace (Shahrad et al., ATC'20): two weeks of per-minute
//! invocation counts, from which it selects the inter-arrival patterns of 12
//! functions. That trace is licensed Microsoft data we cannot vendor, so this
//! crate provides:
//!
//! * [`trace`] — the in-memory representation: per-function, per-minute
//!   invocation counts over a common horizon;
//! * [`csv`] — parsing/serialization, including the Azure day-file schema
//!   (`HashOwner,HashApp,HashFunction,Trigger,1,…,1440`) so the real trace
//!   can be dropped in when available, plus a simple one-row-per-function
//!   format for fixtures;
//! * [`synth`] — a calibrated synthetic generator reproducing the statistical
//!   archetypes the paper's Figures 1–2 illustrate (steady periodic, bursty,
//!   diurnal, nocturnal, drifting-period, heavy-tailed, Poisson, on/off) and
//!   [`synth::azure_like_12`], the 12-function two-week workload with two
//!   engineered global invocation peaks (the paper's Peak I / Peak II);
//! * [`interarrival`] — the gap-percentage analysis behind Figures 1 and 2;
//! * [`peaks`] — cumulative-invocation peak finding behind Tables II and III.
//!
//! ```
//! use pulse_trace::synth;
//! use pulse_trace::peaks;
//!
//! let trace = synth::azure_like_12(42);
//! assert_eq!(trace.n_functions(), 12);
//! assert_eq!(trace.minutes(), 14 * 24 * 60);
//!
//! // The workload has two prominent global peaks.
//! let totals = peaks::total_per_minute(&trace);
//! let top = peaks::top_peaks(&totals, 2, 60);
//! assert_eq!(top.len(), 2);
//! ```

pub mod characterize;
pub mod csv;
pub mod interarrival;
pub mod peaks;
pub mod scale;
pub mod synth;
pub mod trace;

pub use trace::{FunctionTrace, Trace};

/// Minutes in one day.
pub const MINUTES_PER_DAY: usize = 24 * 60;
/// Length of the paper's evaluation horizon: two weeks.
pub const TWO_WEEKS_MINUTES: usize = 14 * MINUTES_PER_DAY;

//! Global invocation-peak finding (Section II, Observation 2).
//!
//! The paper identifies "numerous peaks in invocations (cumulative for all
//! concurrent functions)" in the production trace and designates the two
//! most prominent for the Table II / Table III evaluation. This module
//! computes the cumulative per-minute series and extracts the top-k peaks
//! with a minimum separation, so nearby minutes of the same spike are not
//! double-counted.

use crate::trace::Trace;

/// Cumulative invocations per minute across all functions.
pub fn total_per_minute(trace: &Trace) -> Vec<u32> {
    let mut totals = vec![0u32; trace.minutes()];
    for f in trace.functions() {
        for (t, &c) in f.per_minute.iter().enumerate() {
            totals[t] += c;
        }
    }
    totals
}

/// The `k` highest-volume minutes, greedily chosen with at least
/// `min_separation` minutes between any two picks. Returns `(minute, count)`
/// pairs ordered by descending count.
pub fn top_peaks(totals: &[u32], k: usize, min_separation: usize) -> Vec<(usize, u32)> {
    let mut order: Vec<usize> = (0..totals.len()).collect();
    order.sort_by(|&a, &b| totals[b].cmp(&totals[a]).then(a.cmp(&b)));
    let mut picks: Vec<(usize, u32)> = Vec::with_capacity(k);
    for t in order {
        if totals[t] == 0 {
            break;
        }
        if picks.iter().all(|&(p, _)| t.abs_diff(p) >= min_separation) {
            picks.push((t, totals[t]));
            if picks.len() == k {
                break;
            }
        }
    }
    picks
}

/// Peak windows for the Table II/III evaluation: for each of the top-k
/// peaks, the half-open minute range starting at the peak minute and
/// spanning `window` minutes (the 10-minute keep-alive period following the
/// peak).
pub fn peak_windows(
    trace: &Trace,
    k: usize,
    window: usize,
    min_separation: usize,
) -> Vec<std::ops::Range<usize>> {
    let totals = total_per_minute(trace);
    top_peaks(&totals, k, min_separation)
        .into_iter()
        .map(|(t, _)| t..(t + window).min(trace.minutes()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{azure_like_12, PEAK1_START, PEAK2_START, PEAK_LEN};
    use crate::trace::FunctionTrace;

    fn toy() -> Trace {
        Trace::new(vec![
            FunctionTrace::new("a", vec![1, 0, 5, 0, 0, 9, 0, 0]),
            FunctionTrace::new("b", vec![0, 2, 5, 0, 0, 9, 1, 0]),
        ])
    }

    #[test]
    fn totals_sum_functions() {
        assert_eq!(total_per_minute(&toy()), vec![1, 2, 10, 0, 0, 18, 1, 0]);
    }

    #[test]
    fn top_peaks_ordered_by_volume() {
        let totals = total_per_minute(&toy());
        let p = top_peaks(&totals, 2, 1);
        assert_eq!(p, vec![(5, 18), (2, 10)]);
    }

    #[test]
    fn separation_suppresses_shoulders() {
        let totals = vec![0, 10, 9, 0, 0, 0, 8, 0];
        // Without separation the shoulder at minute 2 would be picked.
        let p = top_peaks(&totals, 2, 3);
        assert_eq!(p, vec![(1, 10), (6, 8)]);
    }

    #[test]
    fn zero_minutes_never_picked() {
        let totals = vec![0, 0, 3, 0];
        let p = top_peaks(&totals, 5, 1);
        assert_eq!(p, vec![(2, 3)]);
    }

    #[test]
    fn engineered_peaks_are_found() {
        let trace = azure_like_12(21);
        let totals = total_per_minute(&trace);
        let picks = top_peaks(&totals, 2, 60);
        assert_eq!(picks.len(), 2);
        let minutes: Vec<usize> = picks.iter().map(|&(t, _)| t).collect();
        for &m in &minutes {
            let near_p1 = m.abs_diff(PEAK1_START) <= PEAK_LEN + 1;
            let near_p2 = m.abs_diff(PEAK2_START) <= PEAK_LEN + 1;
            assert!(near_p1 || near_p2, "peak at unexpected minute {m}");
        }
    }

    #[test]
    fn peak_windows_span_keepalive_period() {
        let trace = azure_like_12(21);
        let ws = peak_windows(&trace, 2, 10, 60);
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert_eq!(w.len(), 10);
        }
    }

    #[test]
    fn window_clamped_at_horizon() {
        let t = Trace::new(vec![FunctionTrace::new("a", vec![0, 0, 0, 7])]);
        let ws = peak_windows(&t, 1, 10, 1);
        assert_eq!(ws[0].clone().count(), 1); // 3..4
    }

    #[test]
    fn ties_break_deterministically() {
        let totals = vec![5, 5, 5];
        let p = top_peaks(&totals, 2, 1);
        assert_eq!(p, vec![(0, 5), (1, 5)]);
    }
}

//! Trace characterization in the style of the ATC'20 "Serverless in the
//! Wild" analysis the paper builds on: per-function invocation statistics,
//! idle-time distribution classes, burstiness and periodicity measures.
//!
//! The Wild policy's histogram-vs-ARIMA split, PULSE's local-window choice,
//! and the workload generator's calibration all reason in these terms; this
//! module makes them first-class so users can characterize their own traces
//! before trusting a policy with them.

use crate::trace::{FunctionTrace, Trace};
use pulse_models::stats;

/// Qualitative class of a function's idle-time (inter-arrival) behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleClass {
    /// Too few invocations to say anything (< 3 gaps).
    Insufficient,
    /// Tight, regular cadence: coefficient of variation < 0.3.
    Periodic,
    /// Moderate spread: CV in [0.3, 1.1] — Poisson-like.
    Irregular,
    /// Heavy tail / bursty: CV > 1.1.
    HeavyTailed,
}

/// Per-function characterization summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionProfile {
    /// Function name.
    pub name: String,
    /// Total invocations over the horizon.
    pub invocations: u64,
    /// Fraction of minutes with at least one invocation.
    pub active_minute_frac: f64,
    /// Mean inter-arrival gap, minutes (0 with < 2 invocation minutes).
    pub mean_gap_min: f64,
    /// Median gap, minutes.
    pub median_gap_min: f64,
    /// 99th-percentile gap, minutes.
    pub p99_gap_min: f64,
    /// Coefficient of variation of the gaps (σ/μ).
    pub gap_cv: f64,
    /// Burstiness index `B = (σ − μ)/(σ + μ)` ∈ [−1, 1]:
    /// −1 = perfectly periodic, 0 = Poisson, → 1 = extremely bursty.
    pub burstiness: f64,
    /// Idle-behaviour class derived from the CV.
    pub class: IdleClass,
    /// Probability mass of gaps within the 10-minute keep-alive window —
    /// how much of this function a fixed 10-minute policy can ever serve
    /// warm.
    pub in_window_mass: f64,
}

/// Characterize one function.
pub fn profile_function(f: &FunctionTrace) -> FunctionProfile {
    let gaps: Vec<f64> = f.gaps().iter().map(|&g| g as f64).collect();
    let invocations = f.total_invocations();
    let active = f.invocation_minutes().len();
    let (mean, median, p99, cv, burstiness, class, in_window) = if gaps.len() < 3 {
        (
            stats::mean(&gaps),
            stats::percentile(&gaps, 50.0),
            stats::percentile(&gaps, 99.0),
            0.0,
            0.0,
            IdleClass::Insufficient,
            0.0,
        )
    } else {
        let mean = stats::mean(&gaps);
        let sd = stats::std_dev(&gaps);
        let cv = if mean > 0.0 { sd / mean } else { 0.0 };
        let burstiness = if sd + mean > 0.0 {
            (sd - mean) / (sd + mean)
        } else {
            0.0
        };
        let class = if cv < 0.3 {
            IdleClass::Periodic
        } else if cv <= 1.1 {
            IdleClass::Irregular
        } else {
            IdleClass::HeavyTailed
        };
        let in_window = gaps.iter().filter(|&&g| g <= 10.0).count() as f64 / gaps.len() as f64;
        (
            mean,
            stats::percentile(&gaps, 50.0),
            stats::percentile(&gaps, 99.0),
            cv,
            burstiness,
            class,
            in_window,
        )
    };
    FunctionProfile {
        name: f.name.clone(),
        invocations,
        active_minute_frac: active as f64 / f.minutes() as f64,
        mean_gap_min: mean,
        median_gap_min: median,
        p99_gap_min: p99,
        gap_cv: cv,
        burstiness,
        class,
        in_window_mass: in_window,
    }
}

/// Characterize every function of a workload.
pub fn profile_trace(trace: &Trace) -> Vec<FunctionProfile> {
    trace.functions().iter().map(profile_function).collect()
}

/// Workload-level roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Per-class function counts: (periodic, irregular, heavy-tailed,
    /// insufficient).
    pub class_counts: (usize, usize, usize, usize),
    /// Total invocations.
    pub invocations: u64,
    /// Mean of per-function in-window mass (weighted by nothing — the
    /// figure the 10-minute policy debate turns on).
    pub mean_in_window_mass: f64,
    /// Peak-to-mean ratio of the cumulative per-minute invocation series —
    /// the "sudden spikes" measure of Observation 2.
    pub peak_to_mean: f64,
}

/// Roll a workload up.
pub fn profile_summary(trace: &Trace) -> TraceProfile {
    let profiles = profile_trace(trace);
    let mut counts = (0usize, 0usize, 0usize, 0usize);
    for p in &profiles {
        match p.class {
            IdleClass::Periodic => counts.0 += 1,
            IdleClass::Irregular => counts.1 += 1,
            IdleClass::HeavyTailed => counts.2 += 1,
            IdleClass::Insufficient => counts.3 += 1,
        }
    }
    let totals = crate::peaks::total_per_minute(trace);
    let totals_f: Vec<f64> = totals.iter().map(|&c| c as f64).collect();
    let mean = stats::mean(&totals_f);
    let peak = totals_f.iter().copied().fold(0.0f64, f64::max);
    TraceProfile {
        class_counts: counts,
        invocations: trace.total_invocations(),
        mean_in_window_mass: stats::mean(
            &profiles
                .iter()
                .map(|p| p.in_window_mass)
                .collect::<Vec<_>>(),
        ),
        peak_to_mean: if mean > 0.0 { peak / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{azure_like_12, Archetype};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gen(a: Archetype, minutes: usize) -> FunctionTrace {
        let mut rng = SmallRng::seed_from_u64(99);
        FunctionTrace::new("x", a.generate(minutes, &mut rng))
    }

    #[test]
    fn pure_cadence_is_periodic_with_negative_burstiness() {
        let p = profile_function(&gen(
            Archetype::SteadyPeriodic {
                period_min: 5,
                jitter_min: 0,
            },
            2000,
        ));
        assert_eq!(p.class, IdleClass::Periodic);
        assert!(p.gap_cv < 0.05);
        assert!(p.burstiness < -0.9, "burstiness {}", p.burstiness);
        assert!((p.mean_gap_min - 5.0).abs() < 0.1);
        assert!((p.in_window_mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_is_irregular_near_zero_burstiness() {
        let p = profile_function(&gen(Archetype::Poisson { rate: 0.2 }, 50_000));
        assert_eq!(p.class, IdleClass::Irregular, "cv = {}", p.gap_cv);
        assert!(p.burstiness.abs() < 0.25, "burstiness {}", p.burstiness);
    }

    #[test]
    fn pareto_gaps_are_heavy_tailed() {
        let p = profile_function(&gen(
            Archetype::HeavyTailed {
                min_gap: 2.0,
                alpha: 1.2,
            },
            100_000,
        ));
        assert_eq!(p.class, IdleClass::HeavyTailed, "cv = {}", p.gap_cv);
        assert!(p.burstiness > 0.0);
        assert!(p.p99_gap_min > 5.0 * p.median_gap_min);
    }

    #[test]
    fn silent_function_is_insufficient() {
        let p = profile_function(&FunctionTrace::new("s", vec![0; 100]));
        assert_eq!(p.class, IdleClass::Insufficient);
        assert_eq!(p.invocations, 0);
        assert_eq!(p.active_minute_frac, 0.0);
    }

    #[test]
    fn standard_workload_spans_classes() {
        let t = azure_like_12(42);
        let summary = profile_summary(&t);
        let (periodic, irregular, heavy, insufficient) = summary.class_counts;
        assert_eq!(periodic + irregular + heavy + insufficient, 12);
        assert!(periodic >= 2, "classes: {:?}", summary.class_counts);
        assert!(
            irregular + heavy >= 2,
            "classes: {:?}",
            summary.class_counts
        );
        // Observation 2: the workload has pronounced global spikes.
        assert!(
            summary.peak_to_mean > 3.0,
            "peak/mean {}",
            summary.peak_to_mean
        );
        assert!(summary.mean_in_window_mass > 0.3);
    }

    #[test]
    fn active_fraction_counts_minutes_not_requests() {
        let p = profile_function(&FunctionTrace::new("b", vec![5, 0, 5, 0]));
        assert_eq!(p.active_minute_frac, 0.5);
        assert_eq!(p.invocations, 10);
    }
}

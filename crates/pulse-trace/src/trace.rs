//! In-memory invocation traces: per-minute counts per function.

use serde::{Deserialize, Serialize};

/// Per-minute invocation counts of one serverless function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionTrace {
    /// Function name (a hash in the Azure schema).
    pub name: String,
    /// `per_minute[t]` invocations arrived during minute `t`.
    pub per_minute: Vec<u32>,
}

impl FunctionTrace {
    /// Build a trace, validating it is non-empty.
    pub fn new(name: impl Into<String>, per_minute: Vec<u32>) -> Self {
        assert!(!per_minute.is_empty(), "trace must cover at least 1 minute");
        Self {
            name: name.into(),
            per_minute,
        }
    }

    /// Horizon length in minutes.
    pub fn minutes(&self) -> usize {
        self.per_minute.len()
    }

    /// Total number of invocations.
    pub fn total_invocations(&self) -> u64 {
        self.per_minute.iter().map(|&c| c as u64).sum()
    }

    /// Minutes with at least one invocation, ascending.
    pub fn invocation_minutes(&self) -> Vec<u64> {
        self.per_minute
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(t, _)| t as u64)
            .collect()
    }

    /// Count at minute `t` (0 outside the horizon).
    pub fn at(&self, t: u64) -> u32 {
        self.per_minute.get(t as usize).copied().unwrap_or(0)
    }

    /// Inter-arrival gaps between successive invocation minutes (minute
    /// resolution; multiple invocations within a minute collapse, matching
    /// the paper's analysis).
    pub fn gaps(&self) -> Vec<u64> {
        self.invocation_minutes()
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect()
    }

    /// Restrict to the half-open minute range `[from, to)`.
    pub fn slice(&self, from: usize, to: usize) -> FunctionTrace {
        let to = to.min(self.per_minute.len());
        let from = from.min(to);
        FunctionTrace {
            name: self.name.clone(),
            per_minute: self.per_minute[from..to].to_vec(),
        }
    }
}

/// A workload: several functions over a common horizon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    functions: Vec<FunctionTrace>,
}

impl Trace {
    /// Build a workload; all functions must share the same horizon.
    pub fn new(functions: Vec<FunctionTrace>) -> Self {
        assert!(!functions.is_empty(), "workload must have >= 1 function");
        let len = functions[0].minutes();
        for f in &functions {
            assert_eq!(
                f.minutes(),
                len,
                "function {} has a different horizon",
                f.name
            );
        }
        Self { functions }
    }

    /// Number of functions.
    pub fn n_functions(&self) -> usize {
        self.functions.len()
    }

    /// Horizon length in minutes.
    pub fn minutes(&self) -> usize {
        self.functions[0].minutes()
    }

    /// All functions.
    pub fn functions(&self) -> &[FunctionTrace] {
        &self.functions
    }

    /// Function by index.
    pub fn function(&self, i: usize) -> &FunctionTrace {
        &self.functions[i]
    }

    /// Function by name.
    pub fn by_name(&self, name: &str) -> Option<&FunctionTrace> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total invocations across all functions.
    pub fn total_invocations(&self) -> u64 {
        self.functions.iter().map(|f| f.total_invocations()).sum()
    }

    /// Restrict every function to the half-open minute range `[from, to)`.
    pub fn slice(&self, from: usize, to: usize) -> Trace {
        Trace::new(self.functions.iter().map(|f| f.slice(from, to)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(name: &str, counts: &[u32]) -> FunctionTrace {
        FunctionTrace::new(name, counts.to_vec())
    }

    #[test]
    fn function_basics() {
        let f = ft("a", &[0, 2, 0, 1, 0, 0, 3]);
        assert_eq!(f.minutes(), 7);
        assert_eq!(f.total_invocations(), 6);
        assert_eq!(f.invocation_minutes(), vec![1, 3, 6]);
        assert_eq!(f.at(3), 1);
        assert_eq!(f.at(100), 0);
    }

    #[test]
    fn gaps_are_minute_resolution() {
        let f = ft("a", &[1, 0, 1, 0, 0, 1]);
        assert_eq!(f.gaps(), vec![2, 3]);
        // Multiple invocations within a minute carry no gap.
        let g = ft("b", &[5, 0, 0, 0]);
        assert!(g.gaps().is_empty());
    }

    #[test]
    fn slice_clamps_bounds() {
        let f = ft("a", &[1, 2, 3, 4, 5]);
        assert_eq!(f.slice(1, 3).per_minute, vec![2, 3]);
        assert_eq!(f.slice(3, 100).per_minute, vec![4, 5]);
        assert_eq!(f.slice(10, 20).per_minute.len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 minute")]
    fn empty_function_rejected() {
        FunctionTrace::new("x", vec![]);
    }

    #[test]
    fn workload_totals() {
        let t = Trace::new(vec![ft("a", &[1, 0, 2]), ft("b", &[0, 3, 0])]);
        assert_eq!(t.n_functions(), 2);
        assert_eq!(t.minutes(), 3);
        assert_eq!(t.total_invocations(), 6);
        assert_eq!(t.by_name("b").unwrap().total_invocations(), 3);
        assert!(t.by_name("zzz").is_none());
    }

    #[test]
    #[should_panic(expected = "different horizon")]
    fn mismatched_horizons_rejected() {
        Trace::new(vec![ft("a", &[1]), ft("b", &[1, 2])]);
    }

    #[test]
    fn workload_slice_preserves_shape() {
        let t = Trace::new(vec![ft("a", &[1, 0, 2, 0]), ft("b", &[0, 3, 0, 1])]);
        let s = t.slice(1, 3);
        assert_eq!(s.minutes(), 2);
        assert_eq!(s.function(0).per_minute, vec![0, 2]);
        assert_eq!(s.function(1).per_minute, vec![3, 0]);
    }
}

//! Calibrated synthetic workloads.
//!
//! The paper's evaluation uses the inter-arrival patterns of 12 functions
//! from the Azure production trace. This module generates statistically
//! equivalent workloads: each function follows one of the invocation
//! *archetypes* the trace-characterization literature (and the paper's own
//! Figures 1–2) identifies — steady periodic cadences, bursts, diurnal and
//! nocturnal cycles, period drift across days, heavy-tailed gaps, Poisson
//! background noise, and on/off duty cycles — plus two engineered *global
//! invocation peaks* standing in for the paper's Peak I and Peak II.
//!
//! All generation is deterministic given the seed.

use crate::trace::{FunctionTrace, Trace};
use crate::TWO_WEEKS_MINUTES;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An invocation-pattern archetype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Archetype {
    /// One invocation roughly every `period_min` minutes, ± uniform jitter.
    SteadyPeriodic {
        /// Mean gap, minutes.
        period_min: u32,
        /// Max absolute jitter, minutes.
        jitter_min: u32,
    },
    /// Quiet stretches punctuated by dense bursts.
    Bursty {
        /// Quiet gap between bursts, minutes.
        quiet_min: u32,
        /// Burst duration, minutes.
        burst_len_min: u32,
        /// Poisson rate per minute during a burst.
        burst_rate: f64,
    },
    /// A daily Gaussian activity bump (diurnal when peaked at midday,
    /// nocturnal when peaked at night).
    DailyCycle {
        /// Minute-of-day of the activity peak.
        peak_minute: u32,
        /// Gaussian width, minutes.
        width_min: f64,
        /// Expected invocations per day.
        per_day: f64,
    },
    /// A periodic cadence whose period drifts linearly over the horizon —
    /// the Figure-2 "different inter-arrival patterns across periods for the
    /// same function" archetype.
    DriftingPeriod {
        /// Period at the start of the horizon, minutes.
        start_period: u32,
        /// Period at the end of the horizon, minutes.
        end_period: u32,
    },
    /// Pareto-distributed gaps (heavy tail).
    HeavyTailed {
        /// Minimum gap, minutes.
        min_gap: f64,
        /// Pareto shape; smaller ⇒ heavier tail. Must be > 1.
        alpha: f64,
    },
    /// Memoryless background traffic.
    Poisson {
        /// Rate per minute.
        rate: f64,
    },
    /// Active/inactive duty cycle; periodic cadence while active.
    OnOff {
        /// Active stretch, minutes.
        on_min: u32,
        /// Inactive stretch, minutes.
        off_min: u32,
        /// Cadence while active, minutes.
        period_in_on: u32,
    },
    /// Self-exciting (discrete-time Hawkes) arrivals: every invocation
    /// raises the near-future rate, producing the clustered bursts that
    /// stress gap-probability keep-alive policies hardest. Minute `t` draws
    /// `Poisson(base_rate + carry)` where the carry accumulates
    /// `excitation` per past invocation and shrinks geometrically by
    /// `decay` each minute.
    SelfExciting {
        /// Background (immigrant) rate per minute.
        base_rate: f64,
        /// Intensity added per invocation, before decay.
        excitation: f64,
        /// Per-minute geometric memory factor, in `[0, 1)`. The expected
        /// offspring count per event is `excitation * decay / (1 - decay)`;
        /// generation asserts it below 1 so the process stays subcritical.
        decay: f64,
    },
}

impl Archetype {
    /// Generate a per-minute count series of `minutes` length.
    pub fn generate<R: Rng + ?Sized>(&self, minutes: usize, rng: &mut R) -> Vec<u32> {
        let mut counts = vec![0u32; minutes];
        match *self {
            Archetype::SteadyPeriodic {
                period_min,
                jitter_min,
            } => {
                assert!(period_min >= 1);
                let mut t = rng.gen_range(0..period_min.max(1)) as i64;
                while (t as usize) < minutes {
                    if t >= 0 {
                        counts[t as usize] += 1;
                    }
                    let j = if jitter_min == 0 {
                        0
                    } else {
                        rng.gen_range(-(jitter_min as i64)..=jitter_min as i64)
                    };
                    t += (period_min as i64 + j).max(1);
                }
            }
            Archetype::Bursty {
                quiet_min,
                burst_len_min,
                burst_rate,
            } => {
                assert!(burst_rate >= 0.0);
                let cycle = (quiet_min + burst_len_min).max(1) as usize;
                let offset = rng.gen_range(0..cycle);
                for (t, c) in counts.iter_mut().enumerate() {
                    let phase = (t + offset) % cycle;
                    if phase >= quiet_min as usize {
                        *c += poisson(burst_rate, rng);
                    }
                }
            }
            Archetype::DailyCycle {
                peak_minute,
                width_min,
                per_day,
            } => {
                assert!(width_min > 0.0 && per_day >= 0.0);
                // Normalize a wrapped Gaussian over one day so the expected
                // daily volume is `per_day`.
                let day = crate::MINUTES_PER_DAY as f64;
                let mut weights = vec![0.0f64; crate::MINUTES_PER_DAY];
                let mut norm = 0.0;
                for (m, w) in weights.iter_mut().enumerate() {
                    let mut d = (m as f64 - peak_minute as f64).abs();
                    d = d.min(day - d); // wrap around midnight
                    *w = (-0.5 * (d / width_min).powi(2)).exp();
                    norm += *w;
                }
                for (t, c) in counts.iter_mut().enumerate() {
                    let w = weights[t % crate::MINUTES_PER_DAY];
                    *c += poisson(per_day * w / norm, rng);
                }
            }
            Archetype::DriftingPeriod {
                start_period,
                end_period,
            } => {
                assert!(start_period >= 1 && end_period >= 1);
                let mut t = 0usize;
                while t < minutes {
                    counts[t] += 1;
                    let frac = t as f64 / minutes.max(1) as f64;
                    let period =
                        start_period as f64 + (end_period as f64 - start_period as f64) * frac;
                    t += period.round().max(1.0) as usize;
                }
            }
            Archetype::HeavyTailed { min_gap, alpha } => {
                assert!(alpha > 1.0 && min_gap >= 1.0);
                let mut t = 0.0f64;
                while (t as usize) < minutes {
                    counts[t as usize] += 1;
                    // Inverse-CDF Pareto draw.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += min_gap / u.powf(1.0 / alpha);
                }
            }
            Archetype::Poisson { rate } => {
                assert!(rate >= 0.0);
                for c in counts.iter_mut() {
                    *c += poisson(rate, rng);
                }
            }
            Archetype::OnOff {
                on_min,
                off_min,
                period_in_on,
            } => {
                assert!(period_in_on >= 1);
                let cycle = (on_min + off_min).max(1) as usize;
                let mut t = 0usize;
                while t < minutes {
                    if t % cycle < on_min as usize {
                        counts[t] += 1;
                        t += period_in_on as usize;
                    } else {
                        // Skip to the next on-phase.
                        t = (t / cycle + 1) * cycle;
                    }
                }
            }
            Archetype::SelfExciting {
                base_rate,
                excitation,
                decay,
            } => {
                assert!(base_rate >= 0.0 && excitation >= 0.0);
                assert!((0.0..1.0).contains(&decay));
                assert!(
                    excitation * decay / (1.0 - decay) < 1.0,
                    "supercritical Hawkes parameters: expected offspring per \
                     event must stay below 1"
                );
                let mut carry = 0.0f64;
                for c in counts.iter_mut() {
                    let k = poisson(base_rate + carry, rng);
                    *c += k;
                    carry = (carry + excitation * f64::from(k)) * decay;
                }
            }
        }
        counts
    }
}

/// Knuth's Poisson sampler (fine for the per-minute rates used here; for
/// the serving load generator's very high rates see pulse-serve's
/// normal-approximation fast path).
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // safety valve for absurd rates
        }
    }
}

/// Superimpose a burst on *every* function of a workload: during
/// `[start, start + len)`, each function receives extra Poisson(`intensity`)
/// invocations per minute. This models the correlated invocation spikes the
/// paper observes in the production trace (Section II, Observation 2).
pub fn inject_global_peak(
    trace: &mut [FunctionTrace],
    start: usize,
    len: usize,
    intensity: f64,
    rng: &mut impl Rng,
) {
    for f in trace.iter_mut() {
        for t in start..(start + len).min(f.per_minute.len()) {
            f.per_minute[t] += 1 + poisson(intensity, rng);
        }
    }
}

/// Index (into [`azure_like_12`]) of the five diverse functions plotted in
/// Figure 1 (Functions A–E).
pub const FIG1_FUNCTIONS: [usize; 5] = [0, 3, 5, 8, 9];
/// Index of the drifting-period function analyzed across day ranges in
/// Figure 2.
pub const FIG2_FUNCTION: usize = 7;
/// Start minute of the engineered Peak I (day 4, mid-morning).
pub const PEAK1_START: usize = 4 * crate::MINUTES_PER_DAY + 10 * 60;
/// Start minute of the engineered Peak II (day 9, early evening).
pub const PEAK2_START: usize = 9 * crate::MINUTES_PER_DAY + 18 * 60;
/// Length of each engineered peak, minutes.
pub const PEAK_LEN: usize = 5;

/// A global invocation spike to engineer into a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSpec {
    /// Start minute.
    pub start: usize,
    /// Duration, minutes.
    pub len: usize,
    /// Extra Poisson intensity per function per minute (each function also
    /// gets at least one guaranteed invocation per peak minute).
    pub intensity: f64,
}

/// A declarative synthetic-workload description: named archetypes plus
/// engineered peaks, generated deterministically from a seed.
///
/// ```
/// use pulse_trace::synth::{Archetype, PeakSpec, SynthConfig};
///
/// let trace = SynthConfig::new(600)
///     .function("api", Archetype::SteadyPeriodic { period_min: 3, jitter_min: 1 })
///     .function("batch", Archetype::Bursty { quiet_min: 60, burst_len_min: 10, burst_rate: 1.5 })
///     .peak(PeakSpec { start: 300, len: 5, intensity: 2.0 })
///     .generate(7);
/// assert_eq!(trace.n_functions(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Horizon, minutes.
    pub minutes: usize,
    functions: Vec<(String, Archetype)>,
    peaks: Vec<PeakSpec>,
}

impl SynthConfig {
    /// Empty workload over `minutes`.
    pub fn new(minutes: usize) -> Self {
        assert!(minutes >= 1);
        Self {
            minutes,
            functions: Vec::new(),
            peaks: Vec::new(),
        }
    }

    /// Add a function.
    pub fn function(mut self, name: impl Into<String>, archetype: Archetype) -> Self {
        self.functions.push((name.into(), archetype));
        self
    }

    /// Add a global peak (skipped at generation time if it falls outside
    /// the horizon).
    pub fn peak(mut self, peak: PeakSpec) -> Self {
        self.peaks.push(peak);
        self
    }

    /// Number of functions configured.
    pub fn n_functions(&self) -> usize {
        self.functions.len()
    }

    /// Generate the workload.
    ///
    /// # Panics
    /// Panics when no function was configured.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(
            !self.functions.is_empty(),
            "configure at least one function"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut functions: Vec<FunctionTrace> = self
            .functions
            .iter()
            .map(|(name, a)| FunctionTrace::new(name.clone(), a.generate(self.minutes, &mut rng)))
            .collect();
        for p in &self.peaks {
            if p.start + p.len <= self.minutes {
                inject_global_peak(&mut functions, p.start, p.len, p.intensity, &mut rng);
            }
        }
        Trace::new(functions)
    }
}

/// The 12-function, two-week Azure-like workload used throughout the
/// reproduction — the synthetic stand-in for the paper's "inter-arrival of 12
/// functions observed in the Azure trace, previously employed by Wild and
/// IceBreaker".
///
/// The mix spans every archetype of Figures 1–2, and two global invocation
/// peaks are injected at [`PEAK1_START`] and [`PEAK2_START`] (the paper's
/// Peak I / Peak II).
pub fn azure_like_12(seed: u64) -> Trace {
    azure_like_12_with_horizon(seed, TWO_WEEKS_MINUTES)
}

/// The declarative description of [`azure_like_12`]; build on it to vary
/// the standard workload.
pub fn azure_like_12_config(minutes: usize) -> SynthConfig {
    let mut cfg = SynthConfig::new(minutes);
    for (name, a) in standard_archetypes() {
        cfg = cfg.function(name, a);
    }
    cfg.peak(PeakSpec {
        start: PEAK1_START,
        len: PEAK_LEN,
        intensity: 2.0,
    })
    .peak(PeakSpec {
        start: PEAK2_START,
        len: PEAK_LEN,
        intensity: 2.0,
    })
}

fn standard_archetypes() -> [(&'static str, Archetype); 12] {
    [
        (
            "steady-2m",
            Archetype::SteadyPeriodic {
                period_min: 2,
                jitter_min: 0,
            },
        ),
        (
            "steady-5m",
            Archetype::SteadyPeriodic {
                period_min: 5,
                jitter_min: 1,
            },
        ),
        (
            "steady-9m",
            Archetype::SteadyPeriodic {
                period_min: 9,
                jitter_min: 2,
            },
        ),
        (
            "bursty-45m",
            Archetype::Bursty {
                quiet_min: 45,
                burst_len_min: 8,
                burst_rate: 2.0,
            },
        ),
        (
            "bursty-2h",
            Archetype::Bursty {
                quiet_min: 120,
                burst_len_min: 15,
                burst_rate: 1.0,
            },
        ),
        (
            "diurnal-noon",
            Archetype::DailyCycle {
                peak_minute: 12 * 60,
                width_min: 120.0,
                per_day: 300.0,
            },
        ),
        (
            "nocturnal-3am",
            Archetype::DailyCycle {
                peak_minute: 3 * 60,
                width_min: 90.0,
                per_day: 200.0,
            },
        ),
        (
            "drifting-3to8",
            Archetype::DriftingPeriod {
                start_period: 3,
                end_period: 8,
            },
        ),
        (
            "heavytail",
            Archetype::HeavyTailed {
                min_gap: 2.0,
                alpha: 1.3,
            },
        ),
        ("poisson-9h", Archetype::Poisson { rate: 0.15 }),
        (
            "onoff-6h",
            Archetype::OnOff {
                on_min: 360,
                off_min: 720,
                period_in_on: 4,
            },
        ),
        ("sparse", Archetype::Poisson { rate: 0.02 }),
    ]
}

/// [`azure_like_12`] with a custom horizon (useful for fast tests; peaks are
/// only injected when they fit the horizon).
pub fn azure_like_12_with_horizon(seed: u64, minutes: usize) -> Trace {
    azure_like_12_config(minutes).generate(seed)
}

/// A fleet-scale generalization of [`azure_like_12`]: `n` functions cycling
/// through the 12 standard archetypes, with timing parameters stretched a
/// little on every pass so later cycles are not statistical clones of the
/// first, plus the two standard global peaks. On a peak-free horizon the
/// first 12 functions of `azure_like_n(n, seed)` carry exactly the
/// per-minute series of `azure_like_12(seed)` — the fleet is a strict
/// superset of the paper-scale workload (peak injection draws fresh noise,
/// so full-horizon runs agree in shape rather than bitwise).
pub fn azure_like_n(n: usize, seed: u64) -> Trace {
    azure_like_n_with_horizon(n, seed, TWO_WEEKS_MINUTES)
}

/// [`azure_like_n`] with a custom horizon — the knob the fleet-scale
/// benchmarks use to keep generation time proportional to the scenario.
pub fn azure_like_n_with_horizon(n: usize, seed: u64, minutes: usize) -> Trace {
    azure_like_n_config(n, minutes).generate(seed)
}

/// The declarative description of [`azure_like_n`].
pub fn azure_like_n_config(n: usize, minutes: usize) -> SynthConfig {
    assert!(n >= 1, "a fleet needs at least one function");
    let base = standard_archetypes();
    let mut cfg = SynthConfig::new(minutes);
    for i in 0..n {
        let (name, a) = base[i % base.len()];
        let cycle = (i / base.len()) as u32;
        cfg = cfg.function(format!("{name}-{i}"), vary_archetype(a, cycle));
    }
    cfg.peak(PeakSpec {
        start: PEAK1_START,
        len: PEAK_LEN,
        intensity: 2.0,
    })
    .peak(PeakSpec {
        start: PEAK2_START,
        len: PEAK_LEN,
        intensity: 2.0,
    })
}

/// Deterministically perturb an archetype's timing parameters for cycle `k`
/// of the fleet generator (cycle 0 is the archetype verbatim). Stretches
/// keep every invariant the generators assert (periods ≥ 1, `alpha` > 1).
fn vary_archetype(a: Archetype, k: u32) -> Archetype {
    if k == 0 {
        return a;
    }
    // 1.0, 1.15, 1.30, … 1.90, then wrapping — bounded so rates stay sane.
    let stretch = 1.0 + 0.15 * f64::from(k % 7);
    let widen = |m: u32| -> u32 { ((f64::from(m) * stretch).round() as u32).max(1) };
    match a {
        Archetype::SteadyPeriodic {
            period_min,
            jitter_min,
        } => Archetype::SteadyPeriodic {
            period_min: widen(period_min),
            jitter_min,
        },
        Archetype::Bursty {
            quiet_min,
            burst_len_min,
            burst_rate,
        } => Archetype::Bursty {
            quiet_min: widen(quiet_min),
            burst_len_min,
            burst_rate: burst_rate / stretch,
        },
        Archetype::DailyCycle {
            peak_minute,
            width_min,
            per_day,
        } => Archetype::DailyCycle {
            // Shift the activity bump around the clock, one hour per cycle.
            peak_minute: (peak_minute + k * 60) % crate::MINUTES_PER_DAY as u32,
            width_min,
            per_day: per_day / stretch,
        },
        Archetype::DriftingPeriod {
            start_period,
            end_period,
        } => Archetype::DriftingPeriod {
            start_period: widen(start_period),
            end_period: widen(end_period),
        },
        Archetype::HeavyTailed { min_gap, alpha } => Archetype::HeavyTailed {
            min_gap: min_gap * stretch,
            alpha,
        },
        Archetype::Poisson { rate } => Archetype::Poisson {
            rate: rate / stretch,
        },
        Archetype::OnOff {
            on_min,
            off_min,
            period_in_on,
        } => Archetype::OnOff {
            on_min,
            off_min: widen(off_min),
            period_in_on: widen(period_in_on),
        },
        Archetype::SelfExciting {
            base_rate,
            excitation,
            decay,
        } => Archetype::SelfExciting {
            // Thinning the background rate keeps the branching ratio — and
            // therefore subcriticality — untouched.
            base_rate: base_rate / stretch,
            excitation,
            decay,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1234)
    }

    #[test]
    fn steady_periodic_has_constant_gap() {
        let a = Archetype::SteadyPeriodic {
            period_min: 7,
            jitter_min: 0,
        };
        let f = FunctionTrace::new("x", a.generate(1000, &mut rng()));
        let gaps = f.gaps();
        assert!(!gaps.is_empty());
        assert!(gaps.iter().all(|&g| g == 7), "{gaps:?}");
    }

    #[test]
    fn jitter_spreads_gaps() {
        let a = Archetype::SteadyPeriodic {
            period_min: 7,
            jitter_min: 2,
        };
        let f = FunctionTrace::new("x", a.generate(5000, &mut rng()));
        let gaps = f.gaps();
        assert!(gaps.iter().all(|&g| (5..=9).contains(&g)), "{gaps:?}");
        assert!(gaps.iter().any(|&g| g != 7));
    }

    #[test]
    fn bursty_concentrates_in_bursts() {
        let a = Archetype::Bursty {
            quiet_min: 50,
            burst_len_min: 5,
            burst_rate: 3.0,
        };
        let counts = a.generate(5500, &mut rng());
        let active = counts.iter().filter(|&&c| c > 0).count();
        // Activity confined to ~5/55 of the horizon.
        assert!(active < 5500 * 5 / 55 + 200, "active={active}");
        assert!(counts.iter().map(|&c| c as u64).sum::<u64>() > 100);
    }

    #[test]
    fn daily_cycle_peaks_at_the_right_hour() {
        let a = Archetype::DailyCycle {
            peak_minute: 12 * 60,
            width_min: 60.0,
            per_day: 2000.0,
        };
        let counts = a.generate(7 * crate::MINUTES_PER_DAY, &mut rng());
        // Compare volume at the peak hour vs 3 AM across the week.
        let sum_at = |hour: usize| -> u64 {
            (0..7)
                .flat_map(|d| (0..60).map(move |m| d * crate::MINUTES_PER_DAY + hour * 60 + m))
                .map(|t| counts[t] as u64)
                .sum()
        };
        assert!(sum_at(12) > 20 * sum_at(3).max(1));
    }

    #[test]
    fn drifting_period_changes_gap_over_time() {
        let a = Archetype::DriftingPeriod {
            start_period: 3,
            end_period: 9,
        };
        let f = FunctionTrace::new("x", a.generate(10_000, &mut rng()));
        let gaps = f.gaps();
        let first: f64 = gaps[..20].iter().sum::<u64>() as f64 / 20.0;
        let last: f64 = gaps[gaps.len() - 20..].iter().sum::<u64>() as f64 / 20.0;
        assert!(first < 4.0, "early gaps ≈ start period, got {first}");
        assert!(last > 7.0, "late gaps ≈ end period, got {last}");
    }

    #[test]
    fn heavy_tail_produces_outlier_gaps() {
        let a = Archetype::HeavyTailed {
            min_gap: 2.0,
            alpha: 1.3,
        };
        let f = FunctionTrace::new("x", a.generate(50_000, &mut rng()));
        let gaps = f.gaps();
        let max = *gaps.iter().max().unwrap();
        let median = {
            let mut s = gaps.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(max > 10 * median, "max={max}, median={median}");
    }

    #[test]
    fn poisson_volume_matches_rate() {
        let a = Archetype::Poisson { rate: 0.2 };
        let counts = a.generate(50_000, &mut rng());
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        let expected = 0.2 * 50_000.0;
        assert!(
            (total as f64 - expected).abs() < expected * 0.1,
            "total={total}"
        );
    }

    #[test]
    fn onoff_silent_in_off_phase() {
        let a = Archetype::OnOff {
            on_min: 100,
            off_min: 200,
            period_in_on: 5,
        };
        let counts = a.generate(900, &mut rng());
        // Off phases: [100,300), [400,600), [700,900).
        for t in (100..300).chain(400..600).chain(700..900) {
            assert_eq!(counts[t], 0, "t={t}");
        }
        assert!(counts[..100].iter().any(|&c| c > 0));
    }

    #[test]
    fn azure_like_12_shape() {
        let t = azure_like_12_with_horizon(7, 2000);
        assert_eq!(t.n_functions(), 12);
        assert_eq!(t.minutes(), 2000);
        for f in t.functions() {
            assert!(f.total_invocations() > 0, "{} is silent", f.name);
        }
    }

    #[test]
    fn azure_like_12_is_deterministic() {
        assert_eq!(
            azure_like_12_with_horizon(7, 3000),
            azure_like_12_with_horizon(7, 3000)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            azure_like_12_with_horizon(7, 3000),
            azure_like_12_with_horizon(8, 3000)
        );
    }

    #[test]
    fn peaks_are_injected_on_full_horizon() {
        let t = azure_like_12(3);
        // During Peak I every function is active every minute.
        for f in t.functions() {
            for m in PEAK1_START..PEAK1_START + PEAK_LEN {
                assert!(f.at(m as u64) >= 1, "{} silent at peak minute {m}", f.name);
            }
        }
        // Total volume in the peak window dwarfs a typical window.
        let peak_total: u64 = (PEAK1_START..PEAK1_START + PEAK_LEN)
            .flat_map(|m| t.functions().iter().map(move |f| f.at(m as u64) as u64))
            .sum();
        let typical_total: u64 = (1000..1000 + PEAK_LEN)
            .flat_map(|m| t.functions().iter().map(move |f| f.at(m as u64) as u64))
            .sum();
        assert!(
            peak_total > 3 * typical_total.max(1),
            "{peak_total} vs {typical_total}"
        );
    }

    #[test]
    fn inject_peak_respects_horizon() {
        let mut fs = vec![FunctionTrace::new("a", vec![0; 10])];
        inject_global_peak(&mut fs, 8, 5, 1.0, &mut rng());
        assert_eq!(fs[0].per_minute.len(), 10);
        assert!(fs[0].per_minute[8] >= 1 && fs[0].per_minute[9] >= 1);
    }

    #[test]
    fn poisson_sampler_zero_rate() {
        let mut r = rng();
        assert_eq!(poisson(0.0, &mut r), 0);
        assert_eq!(poisson(-1.0, &mut r), 0);
    }

    #[test]
    fn synth_config_builder_matches_canonical_generator() {
        // The standard workload must be byte-identical whether built via the
        // convenience function or the declarative config.
        let a = azure_like_12_with_horizon(9, 3000);
        let b = azure_like_12_config(3000).generate(9);
        assert_eq!(a, b);
    }

    #[test]
    fn synth_config_custom_workload() {
        let t = SynthConfig::new(500)
            .function(
                "a",
                Archetype::SteadyPeriodic {
                    period_min: 4,
                    jitter_min: 0,
                },
            )
            .function("b", Archetype::Poisson { rate: 0.1 })
            .peak(PeakSpec {
                start: 250,
                len: 3,
                intensity: 1.0,
            })
            .generate(11);
        assert_eq!(t.n_functions(), 2);
        assert_eq!(t.minutes(), 500);
        // Peak guarantees activity for both functions at its minutes.
        for f in t.functions() {
            for m in 250..253u64 {
                assert!(f.at(m) >= 1, "{} silent at {m}", f.name);
            }
        }
    }

    #[test]
    fn synth_config_out_of_horizon_peak_is_skipped() {
        let t = SynthConfig::new(100)
            .function("a", Archetype::Poisson { rate: 0.0 })
            .peak(PeakSpec {
                start: 99,
                len: 5,
                intensity: 1.0,
            })
            .generate(1);
        assert_eq!(t.total_invocations(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn synth_config_empty_rejected() {
        SynthConfig::new(100).generate(1);
    }

    #[test]
    fn azure_like_n_extends_the_standard_workload() {
        let twelve = azure_like_12_with_horizon(7, 2000);
        let forty = azure_like_n_with_horizon(40, 7, 2000);
        assert_eq!(forty.n_functions(), 40);
        // The first 12 functions are the paper-scale workload verbatim.
        for f in 0..12 {
            assert_eq!(
                twelve.functions()[f].per_minute,
                forty.functions()[f].per_minute,
                "function {f} diverged from azure_like_12"
            );
        }
        // Later cycles are stretched, not clones of the first cycle (a
        // single pair may coincide when rounding restores the period, so
        // assert over the whole cycle).
        assert!((0..12)
            .any(|f| forty.functions()[f].per_minute != forty.functions()[f + 12].per_minute));
        for f in forty.functions() {
            assert!(f.total_invocations() > 0, "{} is silent", f.name);
        }
    }

    #[test]
    fn azure_like_n_is_deterministic() {
        assert_eq!(
            azure_like_n_with_horizon(100, 3, 500),
            azure_like_n_with_horizon(100, 3, 500)
        );
        assert_ne!(
            azure_like_n_with_horizon(100, 3, 500),
            azure_like_n_with_horizon(100, 4, 500)
        );
    }

    #[test]
    fn self_exciting_is_overdispersed() {
        // A Hawkes stream must be burstier than a Poisson stream of the
        // same volume: its variance-to-mean ratio (Fano factor) exceeds the
        // Poisson value of 1 by a wide margin at these parameters.
        let a = Archetype::SelfExciting {
            base_rate: 0.05,
            excitation: 0.9,
            decay: 0.5,
        };
        let counts = a.generate(50_000, &mut rng());
        let n = counts.len() as f64;
        let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / n;
        let var = counts
            .iter()
            .map(|&c| (f64::from(c) - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean > 0.0);
        assert!(var / mean > 1.5, "fano={}", var / mean);
    }

    #[test]
    fn self_exciting_events_cluster_after_events() {
        // Conditioning on an active minute, the next minute is busier than
        // the unconditional average — the signature of self-excitation.
        let a = Archetype::SelfExciting {
            base_rate: 0.05,
            excitation: 0.9,
            decay: 0.5,
        };
        let counts = a.generate(50_000, &mut rng());
        let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / counts.len() as f64;
        let (mut after_sum, mut after_n) = (0.0, 0u32);
        for w in counts.windows(2) {
            if w[0] > 0 {
                after_sum += f64::from(w[1]);
                after_n += 1;
            }
        }
        assert!(after_n > 0);
        assert!(
            after_sum / f64::from(after_n) > 2.0 * mean,
            "after-event mean {} vs unconditional {mean}",
            after_sum / f64::from(after_n)
        );
    }

    #[test]
    #[should_panic(expected = "supercritical")]
    fn supercritical_hawkes_rejected() {
        Archetype::SelfExciting {
            base_rate: 0.1,
            excitation: 3.0,
            decay: 0.9,
        }
        .generate(10, &mut rng());
    }

    #[test]
    fn vary_archetype_thins_self_exciting_background() {
        let a = Archetype::SelfExciting {
            base_rate: 0.2,
            excitation: 0.5,
            decay: 0.5,
        };
        match vary_archetype(a, 1) {
            Archetype::SelfExciting {
                base_rate,
                excitation,
                decay,
            } => {
                assert!(base_rate < 0.2);
                assert_eq!(excitation, 0.5);
                assert_eq!(decay, 0.5);
            }
            other => panic!("variant changed: {other:?}"),
        }
        // Varied parameters still generate (subcriticality preserved).
        assert_eq!(vary_archetype(a, 5).generate(600, &mut rng()).len(), 600);
    }

    #[test]
    fn vary_archetype_keeps_generator_invariants() {
        // Every standard archetype must still generate under heavy cycling.
        let mut r = rng();
        for k in 0..20 {
            for (_, a) in standard_archetypes() {
                let counts = vary_archetype(a, k).generate(600, &mut r);
                assert_eq!(counts.len(), 600);
            }
        }
    }
}

//! Workload scaling: build larger fleets from a base trace.
//!
//! Section V claims "PULSE's overhead remains minimal even when handling a
//! large number of concurrent functions". Reproducing that needs workloads
//! bigger than 12 functions; this module replicates a base trace with
//! deterministic phase shifts (so the copies are neither identical nor
//! synchronized), merges traces, and resamples horizons.

use crate::trace::{FunctionTrace, Trace};

/// Replicate every function `factor` times. Copy `k` of a function is
/// rotated left by `k × phase_step` minutes (wrapping), so replicas keep
/// the same inter-arrival *distribution* but are de-synchronized in time.
/// Copy 0 is the original.
pub fn replicate(trace: &Trace, factor: usize, phase_step: usize) -> Trace {
    assert!(factor >= 1, "factor must be >= 1");
    let minutes = trace.minutes();
    let mut functions = Vec::with_capacity(trace.n_functions() * factor);
    for f in trace.functions() {
        for k in 0..factor {
            let shift = (k * phase_step) % minutes.max(1);
            let mut counts = Vec::with_capacity(minutes);
            counts.extend_from_slice(&f.per_minute[shift..]);
            counts.extend_from_slice(&f.per_minute[..shift]);
            functions.push(FunctionTrace::new(
                if k == 0 {
                    f.name.clone()
                } else {
                    format!("{}#{k}", f.name)
                },
                counts,
            ));
        }
    }
    Trace::new(functions)
}

/// Concatenate the function sets of several traces over a common horizon.
///
/// # Panics
/// Panics when traces disagree on the horizon or the input is empty.
pub fn merge(traces: &[Trace]) -> Trace {
    assert!(!traces.is_empty(), "need at least one trace");
    let functions = traces
        .iter()
        .flat_map(|t| t.functions().iter().cloned())
        .collect();
    Trace::new(functions)
}

/// Tile a trace in time until it covers `minutes` (truncating the last
/// repetition), e.g. to stretch a one-day fixture to two weeks.
pub fn tile_to(trace: &Trace, minutes: usize) -> Trace {
    assert!(minutes >= 1);
    let base = trace.minutes();
    let functions = trace
        .functions()
        .iter()
        .map(|f| {
            let counts: Vec<u32> = (0..minutes).map(|t| f.per_minute[t % base]).collect();
            FunctionTrace::new(f.name.clone(), counts)
        })
        .collect();
    Trace::new(functions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Trace {
        Trace::new(vec![
            FunctionTrace::new("a", vec![1, 0, 0, 2, 0, 0]),
            FunctionTrace::new("b", vec![0, 3, 0, 0, 0, 0]),
        ])
    }

    #[test]
    fn replicate_multiplies_functions_and_preserves_volume() {
        let t = replicate(&base(), 3, 2);
        assert_eq!(t.n_functions(), 6);
        assert_eq!(t.minutes(), 6);
        assert_eq!(t.total_invocations(), base().total_invocations() * 3);
    }

    #[test]
    fn replicas_are_phase_shifted() {
        let t = replicate(&base(), 2, 2);
        let orig = t.by_name("a").unwrap();
        let copy = t.by_name("a#1").unwrap();
        assert_ne!(orig.per_minute, copy.per_minute);
        // Rotation by 2: [1,0,0,2,0,0] → [0,2,0,0,1,0].
        assert_eq!(copy.per_minute, vec![0, 2, 0, 0, 1, 0]);
        // Same gap multiset up to wraparound: total volume preserved.
        assert_eq!(orig.total_invocations(), copy.total_invocations());
    }

    #[test]
    fn factor_one_is_identity() {
        let t = replicate(&base(), 1, 7);
        assert_eq!(t, base());
    }

    #[test]
    fn zero_phase_step_clones_exactly() {
        let t = replicate(&base(), 2, 0);
        assert_eq!(
            t.by_name("a").unwrap().per_minute,
            t.by_name("a#1").unwrap().per_minute
        );
    }

    #[test]
    fn merge_concatenates() {
        let t = merge(&[base(), base()]);
        assert_eq!(t.n_functions(), 4);
        assert_eq!(t.total_invocations(), base().total_invocations() * 2);
    }

    #[test]
    #[should_panic(expected = "different horizon")]
    fn merge_rejects_mismatched_horizons() {
        let other = Trace::new(vec![FunctionTrace::new("c", vec![1, 1])]);
        merge(&[base(), other]);
    }

    #[test]
    fn tile_extends_and_truncates() {
        let t = tile_to(&base(), 15);
        assert_eq!(t.minutes(), 15);
        let a = t.by_name("a").unwrap();
        assert_eq!(a.per_minute[6], 1); // second repetition starts
        assert_eq!(a.per_minute[9], 2);
        assert_eq!(a.per_minute[14], 0); // truncated mid-repetition
    }

    #[test]
    fn tile_shorter_than_base_truncates() {
        let t = tile_to(&base(), 3);
        assert_eq!(t.minutes(), 3);
        assert_eq!(t.by_name("a").unwrap().per_minute, vec![1, 0, 0]);
    }
}

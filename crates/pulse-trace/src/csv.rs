//! Trace (de)serialization.
//!
//! Two formats are supported, both hand-rolled (no CSV dependency):
//!
//! * **Simple format** — one header line `function,0,1,2,…`, then one row per
//!   function: `name,c0,c1,…`. Used for fixtures and for persisting synthetic
//!   workloads.
//! * **Azure day-file schema** — the format of the public Azure Functions
//!   trace (Shahrad et al., ATC'20): columns `HashOwner,HashApp,HashFunction,
//!   Trigger,1,2,…,1440`, one file per day. [`parse_azure_day`] reads one
//!   day; [`merge_azure_days`] concatenates consecutive days into a
//!   two-week [`Trace`], so the real trace can be dropped into the
//!   reproduction when available.
//!
//! Both parsers are **strict by default**: the first malformed row aborts
//! the parse with a [`ParseError`]. Real production dumps are messier than
//! fixtures, so each has a `_lenient` twin ([`from_simple_csv_lenient`],
//! [`parse_azure_day_lenient`]) that *quarantines* malformed rows — ragged
//! column counts, unparsable/negative/NaN count cells — into a
//! [`QuarantineReport`] and parses everything else, failing only when no
//! usable row survives.

use crate::trace::{FunctionTrace, Trace};
use crate::MINUTES_PER_DAY;
use std::collections::BTreeMap;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input had no data rows.
    Empty,
    /// A row had the wrong number of columns.
    ColumnCount {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        got: usize,
        /// Columns expected.
        want: usize,
    },
    /// A count cell failed to parse as an integer.
    BadCount {
        /// 1-based line number.
        line: usize,
        /// Offending cell contents.
        cell: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "no data rows"),
            ParseError::ColumnCount { line, got, want } => {
                write!(f, "line {line}: expected {want} columns, got {got}")
            }
            ParseError::BadCount { line, cell } => {
                write!(f, "line {line}: bad invocation count {cell:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// One row set aside by a lenient parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// The row's function name / key as far as it could be read (first
    /// cell(s)); empty when even that was missing.
    pub name: String,
    /// Why the row was quarantined.
    pub reason: ParseError,
}

/// Max quarantined rows retained in [`QuarantineReport::rows`]. Past this,
/// only the total is counted — a multi-GB trace where *every* row is corrupt
/// must not balloon the report into a second copy of the input.
pub const QUARANTINE_SAMPLE_CAP: usize = 64;

/// The malformed rows a lenient parse set aside instead of aborting on.
///
/// Holds at most [`QUARANTINE_SAMPLE_CAP`] sample rows; [`Self::quarantined`]
/// always reports the *total* count, which can be larger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// The first [`QUARANTINE_SAMPLE_CAP`] quarantined rows, in input order.
    pub rows: Vec<QuarantinedRow>,
    /// Rows that parsed cleanly.
    pub accepted: usize,
    /// Total quarantined rows, including those beyond the retained sample.
    total: usize,
}

impl QuarantineReport {
    /// True when every row parsed cleanly.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Total number of quarantined rows (may exceed `rows.len()` once the
    /// sample cap is hit).
    pub fn quarantined(&self) -> usize {
        self.total
    }

    /// Record one quarantined row, retaining it only while the sample has
    /// room.
    fn note(&mut self, row: QuarantinedRow) {
        self.total += 1;
        if self.rows.len() < QUARANTINE_SAMPLE_CAP {
            self.rows.push(row);
        }
    }
}

impl std::fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} row(s) accepted, {} quarantined",
            self.accepted,
            self.quarantined()
        )?;
        for r in &self.rows {
            writeln!(f, "  line {}: {:?}: {}", r.line, r.name, r.reason)?;
        }
        let unsampled = self.total - self.rows.len();
        if unsampled > 0 {
            writeln!(f, "  … and {unsampled} more (sample capped)")?;
        }
        Ok(())
    }
}

/// Serialize a workload in the simple one-row-per-function format.
pub fn to_simple_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.n_functions() * trace.minutes() * 2);
    out.push_str("function");
    for t in 0..trace.minutes() {
        out.push(',');
        out.push_str(&t.to_string());
    }
    out.push('\n');
    for f in trace.functions() {
        out.push_str(&f.name);
        for &c in &f.per_minute {
            out.push(',');
            out.push_str(&c.to_string());
        }
        out.push('\n');
    }
    out
}

/// Parse one data row of the simple format (`name,c0,c1,…`).
fn parse_simple_row(line: &str, lineno: usize, want: usize) -> Result<FunctionTrace, ParseError> {
    let mut cells = line.split(',');
    let name = cells.next().unwrap_or("").to_string();
    let counts: Vec<u32> = cells
        .map(|c| {
            c.trim().parse::<u32>().map_err(|_| ParseError::BadCount {
                line: lineno,
                cell: c.to_string(),
            })
        })
        .collect::<Result<_, _>>()?;
    if counts.len() + 1 != want {
        return Err(ParseError::ColumnCount {
            line: lineno,
            got: counts.len() + 1,
            want,
        });
    }
    Ok(FunctionTrace::new(name, counts))
}

/// Parse the simple one-row-per-function format, aborting on the first
/// malformed row. See [`from_simple_csv_lenient`] for the quarantining twin.
pub fn from_simple_csv(s: &str) -> Result<Trace, ParseError> {
    let mut lines = s.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::Empty)?;
    let want = header.split(',').count();
    let mut functions = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        functions.push(parse_simple_row(line, i + 1, want)?);
    }
    if functions.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(Trace::new(functions))
}

/// Parse the simple format, quarantining malformed rows (ragged columns,
/// unparsable / negative / NaN count cells) instead of aborting. Errors only
/// when the input has no header or no row parses; the report records every
/// row that was set aside.
pub fn from_simple_csv_lenient(s: &str) -> Result<(Trace, QuarantineReport), ParseError> {
    let mut lines = s.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::Empty)?;
    let want = header.split(',').count();
    let mut functions = Vec::new();
    let mut report = QuarantineReport::default();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_simple_row(line, i + 1, want) {
            Ok(f) => {
                report.accepted += 1;
                functions.push(f);
            }
            Err(reason) => report.note(QuarantinedRow {
                line: i + 1,
                name: line.split(',').next().unwrap_or("").to_string(),
                reason,
            }),
        }
    }
    if functions.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok((Trace::new(functions), report))
}

/// Serialize one day of a workload in the Azure schema
/// (`HashOwner,HashApp,HashFunction,Trigger,1,…,N`). Function names that
/// already contain `owner/app/function` keys are split back into the three
/// hash columns; bare names get `owner0/app0` defaults. `day` selects which
/// [`MINUTES_PER_DAY`]-sized window of the trace to write (clamped to the
/// horizon).
pub fn to_azure_day_csv(trace: &Trace, day: usize) -> String {
    let from = day * MINUTES_PER_DAY;
    let to = ((day + 1) * MINUTES_PER_DAY).min(trace.minutes());
    let n_minutes = to.saturating_sub(from);
    let mut out = String::from("HashOwner,HashApp,HashFunction,Trigger");
    for m in 1..=n_minutes {
        out.push(',');
        out.push_str(&m.to_string());
    }
    out.push('\n');
    for f in trace.functions() {
        let mut parts = f.name.splitn(3, '/');
        let (owner, app, func) = match (parts.next(), parts.next(), parts.next()) {
            (Some(o), Some(a), Some(fu)) => (o.to_string(), a.to_string(), fu.to_string()),
            _ => ("owner0".into(), "app0".into(), f.name.clone()),
        };
        out.push_str(&format!("{owner},{app},{func},http"));
        for t in from..to {
            out.push(',');
            out.push_str(&f.per_minute[t].to_string());
        }
        out.push('\n');
    }
    out
}

/// One parsed Azure day file: function key → 1440 per-minute counts.
/// The key is `HashOwner/HashApp/HashFunction`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AzureDay {
    /// Function key → that day's 1440 counts.
    pub functions: BTreeMap<String, Vec<u32>>,
}

/// Parse one Azure data row into `(key, counts)`.
fn parse_azure_row(
    line: &str,
    lineno: usize,
    want: usize,
) -> Result<(String, Vec<u32>), ParseError> {
    let cells: Vec<&str> = line.split(',').collect();
    if cells.len() != want {
        return Err(ParseError::ColumnCount {
            line: lineno,
            got: cells.len(),
            want,
        });
    }
    let key = format!("{}/{}/{}", cells[0], cells[1], cells[2]);
    let counts: Vec<u32> = cells[4..]
        .iter()
        .map(|c| {
            c.trim().parse::<u32>().map_err(|_| ParseError::BadCount {
                line: lineno,
                cell: c.to_string(),
            })
        })
        .collect::<Result<_, _>>()?;
    Ok((key, counts))
}

/// Validate an Azure header line, returning its column count.
fn azure_header_width(header: &str) -> Result<usize, ParseError> {
    let want = header.split(',').count();
    if want < 5 {
        return Err(ParseError::ColumnCount {
            line: 1,
            got: want,
            want: 4 + MINUTES_PER_DAY,
        });
    }
    Ok(want)
}

/// Parse one Azure day file (`HashOwner,HashApp,HashFunction,Trigger,1..1440`),
/// aborting on the first malformed row. See [`parse_azure_day_lenient`] for
/// the quarantining twin.
pub fn parse_azure_day(s: &str) -> Result<AzureDay, ParseError> {
    let mut lines = s.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::Empty)?;
    let want = azure_header_width(header)?;
    let mut functions = BTreeMap::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (key, counts) = parse_azure_row(line, i + 1, want)?;
        functions.insert(key, counts);
    }
    if functions.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(AzureDay { functions })
}

/// Parse one Azure day file, quarantining malformed rows instead of
/// aborting. The header must still be well-formed (a broken header means the
/// file is not this format at all), and at least one row must parse.
pub fn parse_azure_day_lenient(s: &str) -> Result<(AzureDay, QuarantineReport), ParseError> {
    let mut lines = s.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::Empty)?;
    let want = azure_header_width(header)?;
    let mut functions = BTreeMap::new();
    let mut report = QuarantineReport::default();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_azure_row(line, i + 1, want) {
            Ok((key, counts)) => {
                report.accepted += 1;
                functions.insert(key, counts);
            }
            Err(reason) => report.note(QuarantinedRow {
                line: i + 1,
                name: {
                    let c: Vec<&str> = line.splitn(4, ',').collect();
                    match c.as_slice() {
                        [o, a, f, ..] => format!("{o}/{a}/{f}"),
                        _ => line.split(',').next().unwrap_or("").to_string(),
                    }
                },
                reason,
            }),
        }
    }
    if functions.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok((AzureDay { functions }, report))
}

/// Concatenate consecutive Azure day files into one workload. Functions
/// missing from a day contribute zeros for that day (functions come and go
/// in the production trace).
pub fn merge_azure_days(days: &[AzureDay]) -> Result<Trace, ParseError> {
    if days.is_empty() {
        return Err(ParseError::Empty);
    }
    let day_len: Vec<usize> = days
        .iter()
        .map(|d| d.functions.values().next().map_or(0, |v| v.len()))
        .collect();
    let mut keys: Vec<String> = days
        .iter()
        .flat_map(|d| d.functions.keys().cloned())
        .collect();
    keys.sort();
    keys.dedup();
    let functions = keys
        .into_iter()
        .map(|key| {
            let mut counts = Vec::new();
            for (d, day) in days.iter().enumerate() {
                match day.functions.get(&key) {
                    Some(v) => counts.extend_from_slice(v),
                    None => counts.extend(std::iter::repeat_n(0, day_len[d])),
                }
            }
            FunctionTrace::new(key, counts)
        })
        .collect();
    Ok(Trace::new(functions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Trace {
        Trace::new(vec![
            FunctionTrace::new("fa", vec![1, 0, 2, 0]),
            FunctionTrace::new("fb", vec![0, 3, 0, 1]),
        ])
    }

    #[test]
    fn simple_round_trip() {
        let t = small_trace();
        let csv = to_simple_csv(&t);
        let back = from_simple_csv(&csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn simple_header_shape() {
        let csv = to_simple_csv(&small_trace());
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "function,0,1,2,3");
    }

    #[test]
    fn simple_rejects_bad_count() {
        let err = from_simple_csv("function,0,1\nfa,1,x\n").unwrap_err();
        assert!(matches!(err, ParseError::BadCount { line: 2, .. }));
    }

    #[test]
    fn simple_rejects_ragged_rows() {
        let err = from_simple_csv("function,0,1\nfa,1\n").unwrap_err();
        assert!(matches!(err, ParseError::ColumnCount { line: 2, .. }));
    }

    #[test]
    fn simple_rejects_empty() {
        assert_eq!(from_simple_csv("").unwrap_err(), ParseError::Empty);
        assert_eq!(
            from_simple_csv("function,0,1\n").unwrap_err(),
            ParseError::Empty
        );
    }

    #[test]
    fn simple_skips_blank_lines() {
        let t = from_simple_csv("function,0,1\nfa,1,2\n\n").unwrap();
        assert_eq!(t.n_functions(), 1);
    }

    #[test]
    fn lenient_quarantines_bad_rows_and_keeps_good_ones() {
        // Row 3 has a negative count (unparsable as u32), row 4 is ragged,
        // row 5 has a NaN-ish cell; rows 2 and 6 are clean.
        let csv = "function,0,1\nfa,1,2\nfb,-1,2\nfc,1\nfd,NaN,0\nfe,0,9\n";
        let (t, report) = from_simple_csv_lenient(csv).unwrap();
        assert_eq!(t.n_functions(), 2);
        assert!(t.by_name("fa").is_some());
        assert!(t.by_name("fe").is_some());
        assert_eq!(report.accepted, 2);
        assert_eq!(report.quarantined(), 3);
        assert!(!report.is_clean());
        assert_eq!(report.rows[0].line, 3);
        assert_eq!(report.rows[0].name, "fb");
        assert!(matches!(report.rows[0].reason, ParseError::BadCount { .. }));
        assert!(matches!(
            report.rows[1].reason,
            ParseError::ColumnCount {
                line: 4,
                got: 2,
                want: 3
            }
        ));
        // Strict mode aborts on the same input.
        assert!(from_simple_csv(csv).is_err());
        // The report prints one line per quarantined row.
        assert_eq!(report.to_string().lines().count(), 4);
    }

    #[test]
    fn lenient_clean_input_matches_strict() {
        let csv = to_simple_csv(&small_trace());
        let (t, report) = from_simple_csv_lenient(&csv).unwrap();
        assert_eq!(t, from_simple_csv(&csv).unwrap());
        assert!(report.is_clean());
        assert_eq!(report.accepted, 2);
    }

    #[test]
    fn quarantine_sample_is_capped_but_the_count_is_not() {
        // 200 corrupt rows + 1 clean one: the report keeps only the first
        // QUARANTINE_SAMPLE_CAP rows but still counts all 200.
        let mut csv = String::from("function,0,1\nok,1,2\n");
        for i in 0..200 {
            csv.push_str(&format!("bad{i},x,y\n"));
        }
        let (t, report) = from_simple_csv_lenient(&csv).unwrap();
        assert_eq!(t.n_functions(), 1);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined(), 200);
        assert_eq!(report.rows.len(), QUARANTINE_SAMPLE_CAP);
        assert!(!report.is_clean());
        // The sample holds the *first* offenders, in input order.
        assert_eq!(report.rows[0].name, "bad0");
        assert_eq!(report.rows[QUARANTINE_SAMPLE_CAP - 1].name, "bad63");
        // Display stays bounded and says how much it elided.
        let shown = report.to_string();
        assert_eq!(shown.lines().count(), 1 + QUARANTINE_SAMPLE_CAP + 1);
        assert!(shown.contains("200 quarantined"));
        assert!(shown.contains("136 more"));
    }

    #[test]
    fn lenient_errors_when_nothing_survives() {
        assert_eq!(from_simple_csv_lenient("").unwrap_err(), ParseError::Empty);
        assert_eq!(
            from_simple_csv_lenient("function,0\nfa,x\n").unwrap_err(),
            ParseError::Empty
        );
    }

    fn azure_line(owner: &str, app: &str, func: &str, counts: &[u32]) -> String {
        let mut s = format!("{owner},{app},{func},http");
        for c in counts {
            s.push(',');
            s.push_str(&c.to_string());
        }
        s
    }

    fn azure_file(rows: &[String], n_minutes: usize) -> String {
        let mut header = "HashOwner,HashApp,HashFunction,Trigger".to_string();
        for m in 1..=n_minutes {
            header.push(',');
            header.push_str(&m.to_string());
        }
        let mut out = header;
        out.push('\n');
        for r in rows {
            out.push_str(r);
            out.push('\n');
        }
        out
    }

    #[test]
    fn azure_day_parses() {
        let file = azure_file(
            &[
                azure_line("o1", "a1", "f1", &[1, 0, 2]),
                azure_line("o1", "a1", "f2", &[0, 0, 5]),
            ],
            3,
        );
        let day = parse_azure_day(&file).unwrap();
        assert_eq!(day.functions.len(), 2);
        assert_eq!(day.functions["o1/a1/f1"], vec![1, 0, 2]);
    }

    #[test]
    fn azure_merge_concatenates_days() {
        let d1 = parse_azure_day(&azure_file(&[azure_line("o", "a", "f1", &[1, 2])], 2)).unwrap();
        let d2 = parse_azure_day(&azure_file(
            &[
                azure_line("o", "a", "f1", &[3, 4]),
                azure_line("o", "a", "f2", &[9, 9]),
            ],
            2,
        ))
        .unwrap();
        let t = merge_azure_days(&[d1, d2]).unwrap();
        assert_eq!(t.minutes(), 4);
        assert_eq!(t.by_name("o/a/f1").unwrap().per_minute, vec![1, 2, 3, 4]);
        // f2 was absent on day 1 → zero-padded.
        assert_eq!(t.by_name("o/a/f2").unwrap().per_minute, vec![0, 0, 9, 9]);
    }

    #[test]
    fn azure_rejects_truncated_header() {
        assert!(parse_azure_day("a,b,c\n").is_err());
    }

    #[test]
    fn azure_rejects_bad_cell() {
        let file = azure_file(&[azure_line("o", "a", "f", &[1]).replace('1', "?")], 1);
        assert!(matches!(
            parse_azure_day(&file),
            Err(ParseError::BadCount { .. })
        ));
    }

    #[test]
    fn azure_lenient_quarantines_and_still_merges() {
        let good = azure_line("o", "a", "f1", &[1, 2]);
        let bad = azure_line("o", "a", "f2", &[1, 2]).replace('1', "-7");
        let ragged = "o,a,f3,http,5".to_string();
        let file = azure_file(&[good, bad, ragged], 2);
        let (day, report) = parse_azure_day_lenient(&file).unwrap();
        assert_eq!(day.functions.len(), 1);
        assert_eq!(day.functions["o/a/f1"], vec![1, 2]);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined(), 2);
        assert_eq!(report.rows[0].name, "o/a/f2");
        assert_eq!(report.rows[1].name, "o/a/f3");
        // Strict mode aborts on the same file; the lenient day still merges.
        assert!(parse_azure_day(&file).is_err());
        let t = merge_azure_days(&[day]).unwrap();
        assert_eq!(t.n_functions(), 1);
    }

    #[test]
    fn azure_lenient_still_requires_valid_header() {
        assert!(parse_azure_day_lenient("a,b,c\n").is_err());
    }

    #[test]
    fn merge_empty_is_error() {
        assert_eq!(merge_azure_days(&[]).unwrap_err(), ParseError::Empty);
    }

    #[test]
    fn azure_writer_round_trips_through_parser() {
        use crate::synth;
        let trace = synth::azure_like_12_with_horizon(5, 2 * MINUTES_PER_DAY);
        let days: Vec<AzureDay> = (0..2)
            .map(|d| parse_azure_day(&to_azure_day_csv(&trace, d)).unwrap())
            .collect();
        let back = merge_azure_days(&days).unwrap();
        assert_eq!(back.minutes(), trace.minutes());
        assert_eq!(back.total_invocations(), trace.total_invocations());
        // Keys get the owner0/app0 prefix; counts must be preserved.
        for f in trace.functions() {
            let key = format!("owner0/app0/{}", f.name);
            assert_eq!(back.by_name(&key).unwrap().per_minute, f.per_minute);
        }
    }

    #[test]
    fn azure_writer_preserves_existing_keys() {
        let t = Trace::new(vec![FunctionTrace::new("o1/a2/f3", vec![1, 0, 2])]);
        let csv = to_azure_day_csv(&t, 0);
        assert!(csv.lines().nth(1).unwrap().starts_with("o1,a2,f3,http"));
        let day = parse_azure_day(&csv).unwrap();
        assert_eq!(day.functions["o1/a2/f3"], vec![1, 0, 2]);
    }

    #[test]
    fn azure_writer_clamps_partial_days() {
        let t = Trace::new(vec![FunctionTrace::new("f", vec![1; 100])]);
        let csv = to_azure_day_csv(&t, 0);
        // Header: 4 meta columns + 100 minutes.
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 104);
        // Day 1 is out of range → header only, zero minutes.
        let empty = to_azure_day_csv(&t, 1);
        assert_eq!(empty.lines().next().unwrap().split(',').count(), 4);
    }
}

//! Trace (de)serialization.
//!
//! Two formats are supported, both hand-rolled (no CSV dependency):
//!
//! * **Simple format** — one header line `function,0,1,2,…`, then one row per
//!   function: `name,c0,c1,…`. Used for fixtures and for persisting synthetic
//!   workloads.
//! * **Azure day-file schema** — the format of the public Azure Functions
//!   trace (Shahrad et al., ATC'20): columns `HashOwner,HashApp,HashFunction,
//!   Trigger,1,2,…,1440`, one file per day. [`parse_azure_day`] reads one
//!   day; [`merge_azure_days`] concatenates consecutive days into a
//!   two-week [`Trace`], so the real trace can be dropped into the
//!   reproduction when available.

use crate::trace::{FunctionTrace, Trace};
use crate::MINUTES_PER_DAY;
use std::collections::BTreeMap;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input had no data rows.
    Empty,
    /// A row had the wrong number of columns.
    ColumnCount {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        got: usize,
        /// Columns expected.
        want: usize,
    },
    /// A count cell failed to parse as an integer.
    BadCount {
        /// 1-based line number.
        line: usize,
        /// Offending cell contents.
        cell: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "no data rows"),
            ParseError::ColumnCount { line, got, want } => {
                write!(f, "line {line}: expected {want} columns, got {got}")
            }
            ParseError::BadCount { line, cell } => {
                write!(f, "line {line}: bad invocation count {cell:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a workload in the simple one-row-per-function format.
pub fn to_simple_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.n_functions() * trace.minutes() * 2);
    out.push_str("function");
    for t in 0..trace.minutes() {
        out.push(',');
        out.push_str(&t.to_string());
    }
    out.push('\n');
    for f in trace.functions() {
        out.push_str(&f.name);
        for &c in &f.per_minute {
            out.push(',');
            out.push_str(&c.to_string());
        }
        out.push('\n');
    }
    out
}

/// Parse the simple one-row-per-function format.
pub fn from_simple_csv(s: &str) -> Result<Trace, ParseError> {
    let mut lines = s.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::Empty)?;
    let want = header.split(',').count();
    let mut functions = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut cells = line.split(',');
        let name = cells.next().unwrap_or("").to_string();
        let counts: Result<Vec<u32>, _> = cells
            .map(|c| {
                c.trim().parse::<u32>().map_err(|_| ParseError::BadCount {
                    line: i + 1,
                    cell: c.to_string(),
                })
            })
            .collect();
        let counts = counts?;
        if counts.len() + 1 != want {
            return Err(ParseError::ColumnCount {
                line: i + 1,
                got: counts.len() + 1,
                want,
            });
        }
        functions.push(FunctionTrace::new(name, counts));
    }
    if functions.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(Trace::new(functions))
}

/// Serialize one day of a workload in the Azure schema
/// (`HashOwner,HashApp,HashFunction,Trigger,1,…,N`). Function names that
/// already contain `owner/app/function` keys are split back into the three
/// hash columns; bare names get `owner0/app0` defaults. `day` selects which
/// [`MINUTES_PER_DAY`]-sized window of the trace to write (clamped to the
/// horizon).
pub fn to_azure_day_csv(trace: &Trace, day: usize) -> String {
    let from = day * MINUTES_PER_DAY;
    let to = ((day + 1) * MINUTES_PER_DAY).min(trace.minutes());
    let n_minutes = to.saturating_sub(from);
    let mut out = String::from("HashOwner,HashApp,HashFunction,Trigger");
    for m in 1..=n_minutes {
        out.push(',');
        out.push_str(&m.to_string());
    }
    out.push('\n');
    for f in trace.functions() {
        let mut parts = f.name.splitn(3, '/');
        let (owner, app, func) = match (parts.next(), parts.next(), parts.next()) {
            (Some(o), Some(a), Some(fu)) => (o.to_string(), a.to_string(), fu.to_string()),
            _ => ("owner0".into(), "app0".into(), f.name.clone()),
        };
        out.push_str(&format!("{owner},{app},{func},http"));
        for t in from..to {
            out.push(',');
            out.push_str(&f.per_minute[t].to_string());
        }
        out.push('\n');
    }
    out
}

/// One parsed Azure day file: function key → 1440 per-minute counts.
/// The key is `HashOwner/HashApp/HashFunction`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AzureDay {
    /// Function key → that day's 1440 counts.
    pub functions: BTreeMap<String, Vec<u32>>,
}

/// Parse one Azure day file (`HashOwner,HashApp,HashFunction,Trigger,1..1440`).
pub fn parse_azure_day(s: &str) -> Result<AzureDay, ParseError> {
    let mut lines = s.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::Empty)?;
    let want = header.split(',').count();
    if want < 5 {
        return Err(ParseError::ColumnCount {
            line: 1,
            got: want,
            want: 4 + MINUTES_PER_DAY,
        });
    }
    let mut functions = BTreeMap::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != want {
            return Err(ParseError::ColumnCount {
                line: i + 1,
                got: cells.len(),
                want,
            });
        }
        let key = format!("{}/{}/{}", cells[0], cells[1], cells[2]);
        let counts: Result<Vec<u32>, _> = cells[4..]
            .iter()
            .map(|c| {
                c.trim().parse::<u32>().map_err(|_| ParseError::BadCount {
                    line: i + 1,
                    cell: c.to_string(),
                })
            })
            .collect();
        functions.insert(key, counts?);
    }
    if functions.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(AzureDay { functions })
}

/// Concatenate consecutive Azure day files into one workload. Functions
/// missing from a day contribute zeros for that day (functions come and go
/// in the production trace).
pub fn merge_azure_days(days: &[AzureDay]) -> Result<Trace, ParseError> {
    if days.is_empty() {
        return Err(ParseError::Empty);
    }
    let day_len: Vec<usize> = days
        .iter()
        .map(|d| d.functions.values().next().map_or(0, |v| v.len()))
        .collect();
    let mut keys: Vec<String> = days
        .iter()
        .flat_map(|d| d.functions.keys().cloned())
        .collect();
    keys.sort();
    keys.dedup();
    let functions = keys
        .into_iter()
        .map(|key| {
            let mut counts = Vec::new();
            for (d, day) in days.iter().enumerate() {
                match day.functions.get(&key) {
                    Some(v) => counts.extend_from_slice(v),
                    None => counts.extend(std::iter::repeat_n(0, day_len[d])),
                }
            }
            FunctionTrace::new(key, counts)
        })
        .collect();
    Ok(Trace::new(functions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Trace {
        Trace::new(vec![
            FunctionTrace::new("fa", vec![1, 0, 2, 0]),
            FunctionTrace::new("fb", vec![0, 3, 0, 1]),
        ])
    }

    #[test]
    fn simple_round_trip() {
        let t = small_trace();
        let csv = to_simple_csv(&t);
        let back = from_simple_csv(&csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn simple_header_shape() {
        let csv = to_simple_csv(&small_trace());
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "function,0,1,2,3");
    }

    #[test]
    fn simple_rejects_bad_count() {
        let err = from_simple_csv("function,0,1\nfa,1,x\n").unwrap_err();
        assert!(matches!(err, ParseError::BadCount { line: 2, .. }));
    }

    #[test]
    fn simple_rejects_ragged_rows() {
        let err = from_simple_csv("function,0,1\nfa,1\n").unwrap_err();
        assert!(matches!(err, ParseError::ColumnCount { line: 2, .. }));
    }

    #[test]
    fn simple_rejects_empty() {
        assert_eq!(from_simple_csv("").unwrap_err(), ParseError::Empty);
        assert_eq!(
            from_simple_csv("function,0,1\n").unwrap_err(),
            ParseError::Empty
        );
    }

    #[test]
    fn simple_skips_blank_lines() {
        let t = from_simple_csv("function,0,1\nfa,1,2\n\n").unwrap();
        assert_eq!(t.n_functions(), 1);
    }

    fn azure_line(owner: &str, app: &str, func: &str, counts: &[u32]) -> String {
        let mut s = format!("{owner},{app},{func},http");
        for c in counts {
            s.push(',');
            s.push_str(&c.to_string());
        }
        s
    }

    fn azure_file(rows: &[String], n_minutes: usize) -> String {
        let mut header = "HashOwner,HashApp,HashFunction,Trigger".to_string();
        for m in 1..=n_minutes {
            header.push(',');
            header.push_str(&m.to_string());
        }
        let mut out = header;
        out.push('\n');
        for r in rows {
            out.push_str(r);
            out.push('\n');
        }
        out
    }

    #[test]
    fn azure_day_parses() {
        let file = azure_file(
            &[
                azure_line("o1", "a1", "f1", &[1, 0, 2]),
                azure_line("o1", "a1", "f2", &[0, 0, 5]),
            ],
            3,
        );
        let day = parse_azure_day(&file).unwrap();
        assert_eq!(day.functions.len(), 2);
        assert_eq!(day.functions["o1/a1/f1"], vec![1, 0, 2]);
    }

    #[test]
    fn azure_merge_concatenates_days() {
        let d1 = parse_azure_day(&azure_file(&[azure_line("o", "a", "f1", &[1, 2])], 2)).unwrap();
        let d2 = parse_azure_day(&azure_file(
            &[
                azure_line("o", "a", "f1", &[3, 4]),
                azure_line("o", "a", "f2", &[9, 9]),
            ],
            2,
        ))
        .unwrap();
        let t = merge_azure_days(&[d1, d2]).unwrap();
        assert_eq!(t.minutes(), 4);
        assert_eq!(t.by_name("o/a/f1").unwrap().per_minute, vec![1, 2, 3, 4]);
        // f2 was absent on day 1 → zero-padded.
        assert_eq!(t.by_name("o/a/f2").unwrap().per_minute, vec![0, 0, 9, 9]);
    }

    #[test]
    fn azure_rejects_truncated_header() {
        assert!(parse_azure_day("a,b,c\n").is_err());
    }

    #[test]
    fn azure_rejects_bad_cell() {
        let file = azure_file(&[azure_line("o", "a", "f", &[1]).replace('1', "?")], 1);
        assert!(matches!(
            parse_azure_day(&file),
            Err(ParseError::BadCount { .. })
        ));
    }

    #[test]
    fn merge_empty_is_error() {
        assert_eq!(merge_azure_days(&[]).unwrap_err(), ParseError::Empty);
    }

    #[test]
    fn azure_writer_round_trips_through_parser() {
        use crate::synth;
        let trace = synth::azure_like_12_with_horizon(5, 2 * MINUTES_PER_DAY);
        let days: Vec<AzureDay> = (0..2)
            .map(|d| parse_azure_day(&to_azure_day_csv(&trace, d)).unwrap())
            .collect();
        let back = merge_azure_days(&days).unwrap();
        assert_eq!(back.minutes(), trace.minutes());
        assert_eq!(back.total_invocations(), trace.total_invocations());
        // Keys get the owner0/app0 prefix; counts must be preserved.
        for f in trace.functions() {
            let key = format!("owner0/app0/{}", f.name);
            assert_eq!(back.by_name(&key).unwrap().per_minute, f.per_minute);
        }
    }

    #[test]
    fn azure_writer_preserves_existing_keys() {
        let t = Trace::new(vec![FunctionTrace::new("o1/a2/f3", vec![1, 0, 2])]);
        let csv = to_azure_day_csv(&t, 0);
        assert!(csv.lines().nth(1).unwrap().starts_with("o1,a2,f3,http"));
        let day = parse_azure_day(&csv).unwrap();
        assert_eq!(day.functions["o1/a2/f3"], vec![1, 0, 2]);
    }

    #[test]
    fn azure_writer_clamps_partial_days() {
        let t = Trace::new(vec![FunctionTrace::new("f", vec![1; 100])]);
        let csv = to_azure_day_csv(&t, 0);
        // Header: 4 meta columns + 100 minutes.
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 104);
        // Day 1 is out of range → header only, zero minutes.
        let empty = to_azure_day_csv(&t, 1);
        assert_eq!(empty.lines().next().unwrap().split(',').count(), 4);
    }
}

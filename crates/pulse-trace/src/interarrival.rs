//! Inter-arrival analysis behind Figures 1 and 2.
//!
//! Both figures plot, for gaps of 1–10 minutes (the fixed keep-alive
//! period), the *percentage of invocations* arriving exactly `k` minutes
//! after the previous invocation. Figure 1 compares five functions over the
//! full trace; Figure 2 compares the first / middle / last four days of a
//! single function, demonstrating pattern drift.

use crate::trace::FunctionTrace;
use crate::MINUTES_PER_DAY;

/// Percentage of invocations with an inter-arrival gap of exactly `k`
/// minutes, for `k = 1..=window`; index 0 of the result is `k = 1`.
/// The denominator is the total number of gaps (all sizes), matching the
/// paper's probability definition scaled to percent.
pub fn gap_percentages(f: &FunctionTrace, window: u32) -> Vec<f64> {
    let gaps = f.gaps();
    let total = gaps.len();
    let mut counts = vec![0u64; window as usize];
    for g in gaps {
        if g >= 1 && g <= window as u64 {
            counts[g as usize - 1] += 1;
        }
    }
    if total == 0 {
        return vec![0.0; window as usize];
    }
    counts
        .iter()
        .map(|&c| c as f64 / total as f64 * 100.0)
        .collect()
}

/// Gap percentages over a day range `[first_day, last_day)` of the trace —
/// the Figure 2 slicing.
pub fn gap_percentages_days(
    f: &FunctionTrace,
    window: u32,
    first_day: usize,
    last_day: usize,
) -> Vec<f64> {
    let s = f.slice(first_day * MINUTES_PER_DAY, last_day * MINUTES_PER_DAY);
    gap_percentages(&s, window)
}

/// The three Figure-2 panels for a two-week trace: first four days, middle
/// four days (days 5–8), last four days (days 10–13).
pub fn fig2_panels(f: &FunctionTrace, window: u32) -> [Vec<f64>; 3] {
    [
        gap_percentages_days(f, window, 0, 4),
        gap_percentages_days(f, window, 5, 9),
        gap_percentages_days(f, window, 10, 14),
    ]
}

/// A scalar summary of how different two gap distributions are: total
/// variation distance over the in-window bins, in `[0, 1]`. Used by tests
/// and by the Figure-2 experiment to quantify drift.
pub fn distribution_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distributions must share support");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .sum::<f64>()
        / 200.0 // percentages: max Σ|x−y| is 200
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{azure_like_12, Archetype, FIG2_FUNCTION};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pure_cadence_is_one_spike() {
        let f = FunctionTrace::new("x", {
            let mut v = vec![0u32; 100];
            for t in (0..100).step_by(4) {
                v[t] = 1;
            }
            v
        });
        let p = gap_percentages(&f, 10);
        assert!((p[3] - 100.0).abs() < 1e-9); // gap 4 → index 3
        assert!(p.iter().enumerate().all(|(i, &v)| i == 3 || v == 0.0));
    }

    #[test]
    fn out_of_window_gaps_shrink_percentages() {
        // Gaps: 5, 50 → only 50 % of gaps are in-window.
        let mut v = vec![0u32; 60];
        v[0] = 1;
        v[5] = 1;
        v[55] = 1;
        let f = FunctionTrace::new("x", v);
        let p = gap_percentages(&f, 10);
        assert!((p[4] - 50.0).abs() < 1e-9);
        assert!((p.iter().sum::<f64>() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn silent_function_is_all_zero() {
        let f = FunctionTrace::new("x", vec![0; 100]);
        assert_eq!(gap_percentages(&f, 10), vec![0.0; 10]);
        let g = FunctionTrace::new("y", {
            let mut v = vec![0u32; 100];
            v[5] = 1;
            v
        });
        assert_eq!(gap_percentages(&g, 10), vec![0.0; 10]);
    }

    #[test]
    fn day_slicing_isolates_regimes() {
        // Cadence 2 for 4 "days" of 10 minutes, then cadence 5.
        let mut v = vec![0u32; 80];
        for t in (0..40).step_by(2) {
            v[t] = 1;
        }
        for t in (40..80).step_by(5) {
            v[t] = 1;
        }
        let f = FunctionTrace::new("x", v);
        // Use raw slices (MINUTES_PER_DAY is too big for this toy example).
        let early = gap_percentages(&f.slice(0, 40), 10);
        let late = gap_percentages(&f.slice(40, 80), 10);
        assert!(early[1] > 90.0);
        assert!(late[4] > 80.0);
        assert!(distribution_distance(&early, &late) > 0.8);
    }

    #[test]
    fn fig2_panels_show_drift_on_drifting_function() {
        let t = azure_like_12(11);
        let [first, mid, last] = fig2_panels(t.function(FIG2_FUNCTION), 10);
        // The drifting function's dominant gap moves right over the weeks.
        let argmax = |p: &[f64]| {
            p.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert!(argmax(&first) < argmax(&last), "{first:?} vs {last:?}");
        assert!(distribution_distance(&first, &last) > 0.2);
        let _ = mid;
    }

    #[test]
    fn fig1_functions_have_diverse_patterns() {
        let t = azure_like_12(11);
        let dists: Vec<Vec<f64>> = crate::synth::FIG1_FUNCTIONS
            .iter()
            .map(|&i| gap_percentages(t.function(i), 10))
            .collect();
        // Every pair of Figure-1 functions differs noticeably.
        for i in 0..dists.len() {
            for j in i + 1..dists.len() {
                assert!(
                    distribution_distance(&dists[i], &dists[j]) > 0.05,
                    "functions {i} and {j} look identical"
                );
            }
        }
    }

    #[test]
    fn distance_is_zero_for_identical() {
        let p = vec![10.0, 20.0, 70.0];
        assert_eq!(distribution_distance(&p, &p), 0.0);
    }

    #[test]
    fn distance_is_one_for_disjoint_full_mass() {
        let a = vec![100.0, 0.0];
        let b = vec![0.0, 100.0];
        assert!((distribution_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generated_poisson_has_geometric_like_gaps() {
        let a = Archetype::Poisson { rate: 0.3 };
        let mut rng = SmallRng::seed_from_u64(5);
        let f = FunctionTrace::new("p", a.generate(20_000, &mut rng));
        let p = gap_percentages(&f, 10);
        // Monotone decreasing head for a memoryless process.
        assert!(p[0] > p[4], "{p:?}");
        assert!(p[4] > p[9], "{p:?}");
    }
}

//! Property tests for the trace substrate.

use proptest::prelude::*;
use pulse_trace::csv;
use pulse_trace::interarrival::gap_percentages;
use pulse_trace::scale::{merge, replicate, tile_to};
use pulse_trace::{FunctionTrace, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    (1usize..5, 2usize..80).prop_flat_map(|(nf, minutes)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..4, minutes..=minutes),
            nf..=nf,
        )
        .prop_map(|rows| {
            Trace::new(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, counts)| FunctionTrace::new(format!("f{i}"), counts))
                    .collect(),
            )
        })
    })
}

proptest! {
    #[test]
    fn simple_csv_round_trip(trace in arb_trace()) {
        let s = csv::to_simple_csv(&trace);
        let back = csv::from_simple_csv(&s).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn gap_percentages_are_bounded(trace in arb_trace(), window in 1u32..20) {
        for f in trace.functions() {
            let p = gap_percentages(f, window);
            prop_assert_eq!(p.len(), window as usize);
            let total: f64 = p.iter().sum();
            prop_assert!(total <= 100.0 + 1e-9);
            for &v in &p {
                prop_assert!((0.0..=100.0).contains(&v));
            }
        }
    }

    #[test]
    fn slice_composition(trace in arb_trace(), a in 0usize..40, b in 0usize..80) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let s = trace.slice(lo, hi);
        // Volume of slices partitions the whole.
        let rest_lo = trace.slice(0, lo);
        let rest_hi = trace.slice(hi, trace.minutes());
        prop_assert_eq!(
            rest_lo.total_invocations() + s.total_invocations() + rest_hi.total_invocations(),
            trace.total_invocations()
        );
    }

    #[test]
    fn replicate_preserves_per_copy_volume(trace in arb_trace(), factor in 1usize..5, step in 0usize..30) {
        let r = replicate(&trace, factor, step);
        prop_assert_eq!(r.n_functions(), trace.n_functions() * factor);
        prop_assert_eq!(r.total_invocations(), trace.total_invocations() * factor as u64);
        prop_assert_eq!(r.minutes(), trace.minutes());
    }

    #[test]
    fn tile_preserves_rate(trace in arb_trace(), reps in 1usize..4) {
        let minutes = trace.minutes() * reps;
        let t = tile_to(&trace, minutes);
        prop_assert_eq!(t.minutes(), minutes);
        prop_assert_eq!(t.total_invocations(), trace.total_invocations() * reps as u64);
    }

    #[test]
    fn merge_is_additive(trace in arb_trace()) {
        let m = merge(&[trace.clone(), trace.clone()]);
        prop_assert_eq!(m.total_invocations(), 2 * trace.total_invocations());
        prop_assert_eq!(m.n_functions(), 2 * trace.n_functions());
    }

    #[test]
    fn gaps_match_invocation_minutes(trace in arb_trace()) {
        for f in trace.functions() {
            let minutes = f.invocation_minutes();
            let gaps = f.gaps();
            prop_assert_eq!(gaps.len(), minutes.len().saturating_sub(1));
            let gap_sum: u64 = gaps.iter().sum();
            if let (Some(first), Some(last)) = (minutes.first(), minutes.last()) {
                prop_assert_eq!(gap_sum, last - first);
            }
        }
    }
}

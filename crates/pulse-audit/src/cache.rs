//! Incremental per-file diagnostics cache.
//!
//! The audit fingerprints every file's raw content (FNV-1a, [`fnv1a`]) and
//! stores, per file: the fingerprint, the cross-file facts the file
//! contributes (see [`crate::index::CrossFacts`]), the workspace fact
//! digest its diagnostics were computed under, and the diagnostics
//! themselves. On the next run a file is **not** re-lexed, re-indexed or
//! re-scanned when its fingerprint and the workspace digest both match —
//! the warm path is read + hash + cache lookup, which is what keeps the
//! whole-workspace audit sub-second and the warm re-run several times
//! faster than a cold one (see `crates/bench/benches/audit.rs`).
//!
//! Invalidation is layered:
//! - **rule-set version bump** ([`crate::rules::RULES_VERSION`]) — the whole
//!   cache is discarded (stored in the header);
//! - **file edit** — that file's entry misses (fingerprint mismatch);
//! - **cross-file fact change** (e.g. a function somewhere starts returning
//!   a `HashMap`) — every entry misses (digest mismatch), because any file
//!   may call it.
//!
//! The on-disk format is a line-oriented TSV (`target/pulse-audit-cache.tsv`
//! by default) with `\t`/`\n`/`\\` escaped in free-text fields; any parse
//! error simply yields an empty cache — the cache is a pure accelerator and
//! never changes audit results.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diagnostics::Diagnostic;

/// On-disk format version (bump on layout changes).
pub const CACHE_FORMAT: u32 = 1;

/// FNV-1a 64-bit hash — the fingerprint primitive for file contents and
/// fact digests (stable across runs and platforms, dependency-free).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cached state for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// FNV-1a of the file's raw bytes.
    pub fingerprint: u64,
    /// Cross-file facts the file contributes ([`crate::index::FileIndex::facts`]).
    pub facts: Vec<String>,
    /// Workspace fact digest the diagnostics were computed under.
    pub digest: u64,
    /// Diagnostics produced for the file.
    pub diagnostics: Vec<Diagnostic>,
}

/// The whole cache: path → entry, kept sorted for deterministic storage.
#[derive(Debug, Default)]
pub struct Cache {
    /// Entries by workspace-relative path.
    pub entries: BTreeMap<PathBuf, CacheEntry>,
}

impl Cache {
    /// Load the cache at `path`. Any mismatch — missing file, unreadable
    /// text, wrong format or rules version, malformed line — yields an
    /// empty cache rather than an error.
    pub fn load(path: &Path, rules_version: u32) -> Self {
        let Ok(text) = fs::read_to_string(path) else {
            return Self::default();
        };
        parse(&text, rules_version).unwrap_or_default()
    }

    /// Write the cache to `path` (parent directories are created).
    pub fn store(&self, path: &Path, rules_version: u32) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        out.push_str(&format!(
            "pulse-audit-cache\t{CACHE_FORMAT}\t{rules_version}\n"
        ));
        for (p, e) in &self.entries {
            out.push_str(&format!(
                "F\t{}\t{:016x}\t{:016x}\n",
                esc(&p.to_string_lossy()),
                e.fingerprint,
                e.digest
            ));
            for fact in &e.facts {
                out.push_str(&format!("X\t{}\n", esc(fact)));
            }
            for d in &e.diagnostics {
                out.push_str(&format!(
                    "D\t{}\t{}\t{}\t{}\n",
                    d.line,
                    esc(d.rule),
                    esc(&d.message),
                    esc(d.hint.as_deref().unwrap_or(""))
                ));
            }
        }
        fs::write(path, out)
    }
}

fn parse(text: &str, rules_version: u32) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut h = header.split('\t');
    if h.next()? != "pulse-audit-cache"
        || h.next()?.parse::<u32>().ok()? != CACHE_FORMAT
        || h.next()?.parse::<u32>().ok()? != rules_version
    {
        return None;
    }
    let mut cache = Cache::default();
    let mut current: Option<(PathBuf, CacheEntry)> = None;
    for line in lines {
        let mut parts = line.split('\t');
        match parts.next()? {
            "F" => {
                if let Some((p, e)) = current.take() {
                    cache.entries.insert(p, e);
                }
                let path = PathBuf::from(unesc(parts.next()?));
                let fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
                let digest = u64::from_str_radix(parts.next()?, 16).ok()?;
                current = Some((
                    path,
                    CacheEntry {
                        fingerprint,
                        facts: Vec::new(),
                        digest,
                        diagnostics: Vec::new(),
                    },
                ));
            }
            "X" => {
                current.as_mut()?.1.facts.push(unesc(parts.next()?));
            }
            "D" => {
                let line_no = parts.next()?.parse::<usize>().ok()?;
                // Rule names must round-trip to the registry's 'static strs.
                let rule = crate::rules::static_name(&unesc(parts.next()?))?;
                let message = unesc(parts.next()?);
                let hint = unesc(parts.next()?);
                let mut d = Diagnostic::new(current.as_ref()?.0.clone(), line_no, rule, message);
                if !hint.is_empty() {
                    d = d.with_hint(hint);
                }
                current.as_mut()?.1.diagnostics.push(d);
            }
            _ => return None,
        }
    }
    if let Some((p, e)) = current.take() {
        cache.entries.insert(p, e);
    }
    Some(cache)
}

/// Escape `\t`, `\n`, `\r` and `\\` for the TSV format.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fp: u64) -> CacheEntry {
        CacheEntry {
            fingerprint: fp,
            facts: vec!["hash-fn:by_app".to_owned()],
            digest: 99,
            diagnostics: vec![
                Diagnostic::new("a.rs", 3, "unwrap", "msg with\ttab").with_hint("use ? instead")
            ],
        }
    }

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"pulse"), fnv1a(b"pulse"));
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir =
            std::env::temp_dir().join(format!("pulse-audit-cache-test-{}", std::process::id()));
        let path = dir.join("cache.tsv");
        let mut cache = Cache::default();
        cache.entries.insert(PathBuf::from("a.rs"), entry(42));
        cache.store(&path, 7).expect("store");
        let loaded = Cache::load(&path, 7);
        assert_eq!(loaded.entries.len(), 1);
        let e = &loaded.entries[&PathBuf::from("a.rs")];
        assert_eq!(e, &entry(42));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rules_version_bump_invalidates_everything() {
        let dir = std::env::temp_dir().join(format!("pulse-audit-ver-test-{}", std::process::id()));
        let path = dir.join("cache.tsv");
        let mut cache = Cache::default();
        cache.entries.insert(PathBuf::from("a.rs"), entry(42));
        cache.store(&path, 7).expect("store");
        assert!(Cache::load(&path, 8).entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_garbage_file_loads_empty() {
        assert!(Cache::load(Path::new("/no/such/cache"), 1)
            .entries
            .is_empty());
        let dir = std::env::temp_dir().join(format!("pulse-audit-bad-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache.tsv");
        std::fs::write(&path, "not a cache\nat all\n").expect("write");
        assert!(Cache::load(&path, 1).entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_rule_name_invalidates() {
        // A cached diagnostic naming a rule that no longer exists cannot be
        // resurrected (its &'static str is gone) — the cache drops cleanly.
        let text = "pulse-audit-cache\t1\t7\nF\ta.rs\t000000000000002a\t0000000000000063\nD\t3\tno-such-rule\tmsg\t\n";
        assert!(parse(text, 7).is_none());
    }

    #[test]
    fn escaping_roundtrips() {
        let nasty = "tab\t nl\n bs\\ cr\r end";
        assert_eq!(unesc(&esc(nasty)), nasty);
    }
}

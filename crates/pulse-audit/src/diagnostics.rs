//! Diagnostic type and rendering.

use std::fmt;
use std::path::PathBuf;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Name of the violated rule.
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// Suggested rewrite, shown under `--fix-hints`.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Construct a diagnostic without a hint.
    pub fn new(
        path: impl Into<PathBuf>,
        line: usize,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Self {
            path: path.into(),
            line,
            rule,
            message: message.into(),
            hint: None,
        }
    }

    /// Attach a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_file_line_rule_message() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 7, "no-unwrap", "found `.unwrap()`");
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: [no-unwrap] found `.unwrap()`"
        );
    }

    #[test]
    fn hint_is_carried() {
        let d = Diagnostic::new("a.rs", 1, "no-cast", "raw cast").with_hint("use f64::from");
        assert_eq!(d.hint.as_deref(), Some("use f64::from"));
    }
}

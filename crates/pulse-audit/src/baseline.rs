//! Committed baseline / ratchet for CI.
//!
//! A baseline records, per `(path, rule)` pair, how many findings are
//! currently accepted. CI runs the audit with `--baseline audit-baseline.tsv`
//! and fails **only on regressions** — a pair whose current count exceeds
//! its baselined count. Pre-existing findings keep CI green while they are
//! being burned down, but no new finding can land; shrinking counts are
//! allowed without touching the file, which is what makes it a ratchet
//! rather than a suppression list. Regenerate with `--write-baseline` after
//! deliberate changes (the diff then shows exactly which debt was added or
//! paid off, reviewable like any other change).
//!
//! The workspace's committed baseline is empty — the audit holds at zero
//! findings — so the ratchet currently enforces "no findings at all" and
//! exists so a future justified exception is a reviewed one-line diff
//! instead of a waiver scattered in source.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::diagnostics::Diagnostic;

/// On-disk format version.
pub const BASELINE_FORMAT: u32 = 1;

/// Accepted finding counts per `(path, rule)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(workspace-relative path, rule name)` → accepted count.
    pub counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Snapshot the baseline that would accept exactly `diagnostics`.
    pub fn from_diagnostics(diagnostics: &[Diagnostic]) -> Self {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for d in diagnostics {
            *counts
                .entry((d.path.to_string_lossy().into_owned(), d.rule.to_owned()))
                .or_insert(0) += 1;
        }
        Self { counts }
    }

    /// Load a baseline file. A malformed file is an error (unlike the
    /// incremental cache, a silently-empty baseline would turn every
    /// accepted finding into a CI failure — or worse, on a `--write-baseline`
    /// round-trip, silently accept new ones).
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        parse(&text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed baseline file {}", path.display()),
            )
        })
    }

    /// Write the baseline to `path` (deterministic order, diff-friendly).
    pub fn store(&self, path: &Path) -> io::Result<()> {
        let mut out = format!("pulse-audit-baseline\t{BASELINE_FORMAT}\n");
        for ((p, rule), count) in &self.counts {
            out.push_str(&format!("{p}\t{rule}\t{count}\n"));
        }
        fs::write(path, out)
    }

    /// The diagnostics in groups that regressed past the baseline: every
    /// diagnostic of any `(path, rule)` pair whose current count exceeds the
    /// accepted count. Returning the whole group (not just the excess) is
    /// deliberate — the findings are indistinguishable, so the report shows
    /// all candidate lines for the regression.
    pub fn regressions<'d>(&self, diagnostics: &'d [Diagnostic]) -> Vec<&'d Diagnostic> {
        let current = Self::from_diagnostics(diagnostics);
        let mut out = Vec::new();
        for (key, &count) in &current.counts {
            let accepted = self.counts.get(key).copied().unwrap_or(0);
            if count > accepted {
                out.extend(
                    diagnostics
                        .iter()
                        .filter(|d| d.path.to_string_lossy() == key.0.as_str() && d.rule == key.1),
                );
            }
        }
        out
    }
}

fn parse(text: &str) -> Option<Baseline> {
    let mut lines = text.lines();
    let mut header = lines.next()?.split('\t');
    if header.next()? != "pulse-audit-baseline"
        || header.next()?.parse::<u32>().ok()? != BASELINE_FORMAT
    {
        return None;
    }
    let mut counts = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let path = parts.next()?.to_owned();
        let rule = parts.next()?.to_owned();
        let count = parts.next()?.parse::<usize>().ok()?;
        counts.insert((path, rule), count);
    }
    Some(Baseline { counts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, line: usize, rule: &'static str) -> Diagnostic {
        Diagnostic::new(path, line, rule, "msg")
    }

    #[test]
    fn counts_group_by_path_and_rule() {
        let ds = vec![
            diag("a.rs", 1, "unwrap"),
            diag("a.rs", 9, "unwrap"),
            diag("b.rs", 2, "cast"),
        ];
        let b = Baseline::from_diagnostics(&ds);
        assert_eq!(b.counts[&("a.rs".to_owned(), "unwrap".to_owned())], 2);
        assert_eq!(b.counts[&("b.rs".to_owned(), "cast".to_owned())], 1);
    }

    #[test]
    fn ratchet_allows_accepted_and_shrinking_counts() {
        let accepted =
            Baseline::from_diagnostics(&[diag("a.rs", 1, "unwrap"), diag("a.rs", 9, "unwrap")]);
        // Same count: fine. Fewer: fine.
        assert!(accepted
            .regressions(&[diag("a.rs", 1, "unwrap"), diag("a.rs", 9, "unwrap")])
            .is_empty());
        assert!(accepted
            .regressions(&[diag("a.rs", 1, "unwrap")])
            .is_empty());
    }

    #[test]
    fn ratchet_fails_on_new_findings_only() {
        let accepted = Baseline::from_diagnostics(&[diag("a.rs", 1, "unwrap")]);
        // A second unwrap in a.rs regresses that group; the cast in b.rs is
        // brand new; both are reported, and nothing else.
        let current = vec![
            diag("a.rs", 1, "unwrap"),
            diag("a.rs", 5, "unwrap"),
            diag("b.rs", 2, "cast"),
        ];
        let regressed = accepted.regressions(&current);
        assert_eq!(regressed.len(), 3);
        assert!(regressed.iter().any(|d| d.line == 5));
        assert!(regressed.iter().any(|d| d.rule == "cast"));
    }

    #[test]
    fn empty_baseline_means_zero_tolerance() {
        let b = Baseline::default();
        assert!(b.regressions(&[]).is_empty());
        assert_eq!(b.regressions(&[diag("a.rs", 1, "unwrap")]).len(), 1);
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir =
            std::env::temp_dir().join(format!("pulse-audit-baseline-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("baseline.tsv");
        let b = Baseline::from_diagnostics(&[diag("a.rs", 1, "unwrap"), diag("b.rs", 2, "cast")]);
        b.store(&path).expect("store");
        assert_eq!(Baseline::load(&path).expect("load"), b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_baseline_is_an_error_not_empty() {
        let dir =
            std::env::temp_dir().join(format!("pulse-audit-badbase-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("baseline.tsv");
        std::fs::write(&path, "garbage\n").expect("write");
        assert!(Baseline::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

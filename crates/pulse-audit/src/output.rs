//! Diagnostic rendering: human text, machine JSON, and SARIF 2.1.0.
//!
//! All three renderers are deterministic — diagnostics arrive sorted from
//! [`crate::AuditOutcome`] and fields are emitted in a fixed order — so the
//! outputs are snapshot-testable and diffable across runs. JSON is
//! hand-rolled (the crate is deliberately dependency-free; `pulse-obs` sets
//! the precedent for emitting JSON without serde).
//!
//! The SARIF output is the minimal valid subset of SARIF 2.1.0 that GitHub
//! code scanning and other SARIF viewers accept: one run, a tool driver
//! carrying the rule table from [`crate::rules::registry`], and one result
//! per diagnostic with a physical location. CI uploads it as an artifact so
//! findings are browsable without re-running the audit.

use crate::rules;
use crate::AuditOutcome;

/// Render the human-readable report (the default CLI output).
pub fn render_text(outcome: &AuditOutcome, fix_hints: bool) -> String {
    let mut out = String::new();
    for d in &outcome.diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
        if fix_hints {
            if let Some(hint) = &d.hint {
                out.push_str("    hint: ");
                out.push_str(hint);
                out.push('\n');
            }
        }
    }
    if outcome.is_clean() {
        out.push_str(&format!(
            "pulse-audit: clean ({} files, {} rules, cache {}/{} hits)\n",
            outcome.files_scanned,
            rules::registry().len(),
            outcome.cache_hits,
            outcome.cache_hits + outcome.cache_misses,
        ));
    } else {
        out.push_str(&format!(
            "pulse-audit: {} violation(s) across {} files scanned\n",
            outcome.diagnostics.len(),
            outcome.files_scanned
        ));
    }
    out
}

/// Render the machine-readable JSON report.
pub fn render_json(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n",
        outcome.files_scanned, outcome.cache_hits, outcome.cache_misses
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in outcome.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"",
            json_escape(&d.path.to_string_lossy()),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        ));
        if let Some(hint) = &d.hint {
            out.push_str(&format!(", \"hint\": \"{}\"", json_escape(hint)));
        }
        out.push('}');
    }
    if outcome.diagnostics.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Render a minimal SARIF 2.1.0 report.
pub fn render_sarif(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\n");
    out.push_str("      \"name\": \"pulse-audit\",\n");
    out.push_str(&format!(
        "      \"version\": \"{}\",\n",
        json_escape(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("      \"rules\": [");
    let registry = rules::registry();
    for (i, rule) in registry.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(rule.name()),
            json_escape(rule.description())
        ));
    }
    // The framework-level waiver-hygiene pseudo-rule also appears in results.
    out.push_str(
        ",\n        {\"id\": \"waiver\", \"shortDescription\": \
         {\"text\": \"audit:allow waivers must name a rule and justify themselves\"}}",
    );
    out.push_str("\n      ]\n");
    out.push_str("    }},\n");
    out.push_str("    \"results\": [");
    for (i, d) in outcome.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_escape(d.rule),
            json_escape(&d.message),
            json_escape(&d.path.to_string_lossy().replace('\\', "/")),
            d.line
        ));
    }
    if outcome.diagnostics.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n    ]\n");
    }
    out.push_str("  }]\n");
    out.push_str("}\n");
    out
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Diagnostic;

    fn outcome() -> AuditOutcome {
        AuditOutcome {
            files_scanned: 2,
            diagnostics: vec![
                Diagnostic::new("a.rs", 3, "unwrap", "found `.unwrap()` in library code")
                    .with_hint("propagate with `?`"),
                Diagnostic::new("b.rs", 7, "cast", "raw `as f64` cast"),
            ],
            cache_hits: 1,
            cache_misses: 1,
        }
    }

    #[test]
    fn text_report_lists_diagnostics_and_summary() {
        let text = render_text(&outcome(), true);
        assert!(text.contains("a.rs:3: [unwrap]"));
        assert!(text.contains("    hint: propagate with `?`"));
        assert!(text.contains("2 violation(s) across 2 files"));
    }

    #[test]
    fn clean_text_report_shows_cache_stats() {
        let clean = AuditOutcome {
            files_scanned: 5,
            diagnostics: Vec::new(),
            cache_hits: 5,
            cache_misses: 0,
        };
        let text = render_text(&clean, false);
        assert!(text.contains("clean (5 files"));
        assert!(text.contains("cache 5/5 hits"));
    }

    #[test]
    fn json_is_deterministic_and_carries_all_fields() {
        let json = render_json(&outcome());
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"cache_hits\": 1"));
        assert!(
            json.contains("\"path\": \"a.rs\", \"line\": 3, \"rule\": \"unwrap\""),
            "{json}"
        );
        assert!(json.contains("\"hint\": \"propagate with `?`\""));
        assert_eq!(json, render_json(&outcome()), "deterministic");
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let sarif = render_sarif(&outcome());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"pulse-audit\""));
        assert!(sarif.contains("{\"id\": \"hashmap-iter-order\""), "{sarif}");
        assert!(sarif.contains("{\"id\": \"waiver\""));
        assert!(sarif.contains("\"ruleId\": \"unwrap\""));
        assert!(sarif.contains("\"startLine\": 3"));
    }

    #[test]
    fn empty_outcome_renders_empty_arrays() {
        let clean = AuditOutcome {
            files_scanned: 1,
            diagnostics: Vec::new(),
            cache_hits: 0,
            cache_misses: 1,
        };
        assert!(render_json(&clean).contains("\"diagnostics\": []"));
        assert!(render_sarif(&clean).contains("\"results\": []"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

//! Workspace file discovery.
//!
//! The audit scans first-party sources only: `crates/<name>/src/**/*.rs`
//! (crate name taken from the directory) plus the root package's `src/`
//! (crate name `pulse`). `vendor/` stand-ins, `target/`, integration
//! `tests/`, `benches/` and `examples/` are deliberately out of scope —
//! the rules state guarantees about shipped library code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// One discovered file: workspace-relative path, owning crate, raw text.
///
/// Discovery is separated from parsing so the incremental cache can
/// fingerprint the raw text and skip the parse for unchanged files (see
/// [`crate::audit_workspace_with`]).
#[derive(Debug, Clone)]
pub struct RawFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Name of the crate the file belongs to.
    pub krate: String,
    /// Raw file contents.
    pub text: String,
}

impl RawFile {
    /// Parse into the masked-text source model.
    pub fn parse(&self) -> SourceFile {
        SourceFile::parse(self.path.clone(), &self.krate, &self.text)
    }
}

/// Discover every in-scope `.rs` file under `root` (the workspace root) and
/// read its contents. Paths are workspace-relative; the result is sorted by
/// path so downstream diagnostics are deterministic.
pub fn discover(root: &Path) -> io::Result<Vec<RawFile>> {
    let mut found: Vec<(PathBuf, String)> = Vec::new();

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for crate_dir in entries {
            let krate = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let src = crate_dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &krate, &mut found)?;
            }
        }
    }

    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, "pulse", &mut found)?;
    }

    let mut files = Vec::with_capacity(found.len());
    for (path, krate) in found {
        let text = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        files.push(RawFile {
            path: rel,
            krate,
            text,
        });
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Discover and parse every in-scope `.rs` file under `root` (the
/// cache-less convenience used by tests and [`crate::audit_workspace`]).
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    Ok(discover(root)?.iter().map(RawFile::parse).collect())
}

/// Recursively gather `.rs` files under `dir`, skipping build/vendor trees.
fn collect_rs(dir: &Path, krate: &str, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(name.as_deref(), Some("target") | Some("vendor")) {
                continue;
            }
            collect_rs(&path, krate, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((path, krate.to_owned()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks the real workspace when run from the repo (CARGO_MANIFEST_DIR
    /// is `crates/pulse-audit`, two levels below the root).
    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root exists")
    }

    #[test]
    fn finds_core_files_with_crate_names() {
        let files = workspace_files(&repo_root()).expect("walk succeeds");
        assert!(files
            .iter()
            .any(|f| f.krate == "pulse-core" && f.path.ends_with("interarrival.rs")));
        assert!(files.iter().any(|f| f.krate == "pulse-audit"));
        assert!(files.iter().any(|f| f.krate == "pulse"));
    }

    #[test]
    fn vendor_is_not_scanned() {
        let files = workspace_files(&repo_root()).expect("walk succeeds");
        assert!(files.iter().all(|f| !f.path.starts_with("vendor")));
    }

    #[test]
    fn paths_are_sorted_and_relative() {
        let files = workspace_files(&repo_root()).expect("walk succeeds");
        let paths: Vec<_> = files.iter().map(|f| f.path.clone()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
        assert!(paths.iter().all(|p| p.is_relative()));
    }
}

//! Brace-matched item index over the token stream.
//!
//! One [`FileIndex`] per source file records the facts the semantic rules
//! reason about:
//!
//! - **functions** — name, parameter names, body token span, and whether the
//!   return type is an unordered hash container;
//! - **bindings** — `let`/`static` bindings and struct fields classified by
//!   type ([`BindKind`]): unordered hash containers, `AtomicBool` control
//!   flags, synchronized wrappers, or plain data;
//! - **spawn sites** — `crossbeam::thread::scope` / `std::thread::scope`
//!   regions and the `.spawn(...)` closures inside them.
//!
//! A [`CrossFacts`] summary aggregates the *cross-file* facts (currently:
//! the names of functions returning hash containers) over the whole
//! workspace, so a rule checking file B can know that a function defined in
//! file A hands it unordered data. [`CrossFacts::digest`] fingerprints that
//! summary for the incremental cache: per-file diagnostics stay valid as
//! long as the file and the workspace-wide facts are both unchanged.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::cache::fnv1a;
use crate::lex::{matching_close, tokenize, Token, TokenKind};
use crate::source::SourceFile;

/// Classification of a binding's type, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindKind {
    /// `HashMap` / `HashSet`: iteration order is unspecified.
    HashContainer {
        /// The declared value type mentions `f64`/`f32` (order-sensitive
        /// float reductions over it are flagged).
        float_values: bool,
    },
    /// `AtomicBool`: a cross-thread control flag.
    AtomicBool,
    /// Synchronized or order-insensitive shared state (`Mutex`, `RwLock`,
    /// numeric atomics used as counters).
    Sync,
    /// Anything else.
    Other,
}

/// A named binding: `let` (optionally `mut`), `static`, or struct field.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound identifier (for fields, the field name).
    pub name: String,
    /// Type classification.
    pub kind: BindKind,
    /// Declared with `mut` (fields count as mutable).
    pub mutable: bool,
    /// 1-based declaration line.
    pub line: usize,
    /// Token index of the name token.
    pub token: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameter identifier names (patterns more complex than
    /// `[mut] name: Type` contribute no names).
    pub params: Vec<String>,
    /// The declared return type mentions `HashMap`/`HashSet`.
    pub returns_hash: bool,
    /// Token span `[start, end]` of the body braces; `None` for bodyless
    /// trait-method signatures.
    pub body: Option<(usize, usize)>,
}

/// A `.spawn(...)` closure inside a thread-scope region.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// Token index of the `scope` call this spawn belongs to.
    pub scope_token: usize,
    /// 1-based line of the `.spawn` call.
    pub line: usize,
    /// Token span `[start, end]` of the spawn closure body braces.
    pub body: (usize, usize),
}

/// Everything the semantic rules know about one file.
#[derive(Debug, Clone, Default)]
pub struct FileIndex {
    /// Token stream (see [`crate::lex`]).
    pub tokens: Vec<Token>,
    /// All `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// All classified bindings (lets, statics, struct fields).
    pub bindings: Vec<Binding>,
    /// All spawn closures inside thread-scope regions.
    pub spawns: Vec<SpawnSite>,
}

impl FileIndex {
    /// Build the index for one file.
    pub fn build(file: &SourceFile) -> Self {
        let tokens = tokenize(file);
        let fns = index_fns(&tokens);
        let bindings = index_bindings(&tokens);
        let spawns = index_spawns(&tokens);
        Self {
            tokens,
            fns,
            bindings,
            spawns,
        }
    }

    /// The innermost function whose body contains token `at`.
    pub fn enclosing_fn(&self, at: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| s <= at && at <= e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }

    /// Binding visible at a use of identifier `name` (last declaration at or
    /// before token `at`; falls back to any declaration, so struct fields
    /// used via `self.name` resolve too).
    pub fn binding(&self, name: &str, at: usize) -> Option<&Binding> {
        self.bindings
            .iter()
            .rfind(|b| b.name == name && b.token <= at)
            .or_else(|| self.bindings.iter().find(|b| b.name == name))
    }

    /// Cross-file facts this file contributes.
    pub fn facts(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .fns
            .iter()
            .filter(|f| f.returns_hash)
            .map(|f| format!("hash-fn:{}", f.name))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Workspace-wide facts shared by every file's rule run.
#[derive(Debug, Clone, Default)]
pub struct CrossFacts {
    /// Names of functions (any file) whose return type is a hash container.
    pub hash_returning_fns: std::collections::BTreeSet<String>,
}

impl CrossFacts {
    /// Aggregate per-file fact lists (as produced by [`FileIndex::facts`]).
    pub fn from_facts<'a>(facts: impl Iterator<Item = &'a String>) -> Self {
        let mut out = Self::default();
        for f in facts {
            if let Some(name) = f.strip_prefix("hash-fn:") {
                out.hash_returning_fns.insert(name.to_owned());
            }
        }
        out
    }

    /// Order-independent fingerprint of the facts, mixed into every cache
    /// entry: when the cross-file facts change, all cached diagnostics are
    /// recomputed.
    pub fn digest(&self) -> u64 {
        let mut joined = String::new();
        for f in &self.hash_returning_fns {
            joined.push_str("hash-fn:");
            joined.push_str(f);
            joined.push('\n');
        }
        fnv1a(joined.as_bytes())
    }
}

/// Index plus cross-facts handed to every rule invocation.
#[derive(Debug, Default)]
pub struct Context {
    /// Workspace-wide facts.
    pub cross: CrossFacts,
    indexes: BTreeMap<PathBuf, FileIndex>,
}

impl Context {
    /// Build a full context for an in-memory file set (tests and
    /// [`crate::audit_files`]).
    pub fn of(files: &[SourceFile]) -> Self {
        let indexes: BTreeMap<PathBuf, FileIndex> = files
            .iter()
            .map(|f| (f.path.clone(), FileIndex::build(f)))
            .collect();
        let all_facts: Vec<String> = indexes.values().flat_map(FileIndex::facts).collect();
        Self {
            cross: CrossFacts::from_facts(all_facts.iter()),
            indexes,
        }
    }

    /// Assemble a context from pre-computed parts (the cached-audit path,
    /// where unchanged files contribute facts without re-indexing).
    pub fn from_parts(cross: CrossFacts, indexes: BTreeMap<PathBuf, FileIndex>) -> Self {
        Self { cross, indexes }
    }

    /// The index of `path`, when it was built this run.
    pub fn index_of(&self, path: &Path) -> Option<&FileIndex> {
        self.indexes.get(path)
    }
}

/// Method names that iterate a container in storage order.
pub const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens
        .get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

/// Classify a type/initializer token range.
fn classify(tokens: &[Token]) -> BindKind {
    let has = |name: &str| tokens.iter().any(|t| t.is_ident(name));
    if has("HashMap") || has("HashSet") {
        return BindKind::HashContainer {
            float_values: has("f64") || has("f32"),
        };
    }
    if has("AtomicBool") {
        return BindKind::AtomicBool;
    }
    const SYNC: &[&str] = &[
        "Mutex",
        "RwLock",
        "AtomicUsize",
        "AtomicIsize",
        "AtomicU8",
        "AtomicU16",
        "AtomicU32",
        "AtomicU64",
        "AtomicI8",
        "AtomicI16",
        "AtomicI32",
        "AtomicI64",
        "Condvar",
        "Barrier",
        "Sender",
        "Receiver",
    ];
    if SYNC.iter().any(|s| has(s)) {
        return BindKind::Sync;
    }
    BindKind::Other
}

/// Scan for `fn` items and parse name, params, return type and body span.
fn index_fns(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            i += 1;
            continue;
        };
        let name = name.to_owned();
        let line = tokens[i].line;
        // Parameter list: first `(` after the name (skips generics, which
        // contain no parens).
        let Some(open) = (i + 2..tokens.len()).find(|&j| tokens[j].is_punct("(")) else {
            i += 1;
            continue;
        };
        let Some(close) = matching_close(tokens, open) else {
            break;
        };
        let mut params = Vec::new();
        let mut depth = 0i64;
        for j in open + 1..close {
            match tokens[j].text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                _ => {}
            }
            // `name :` at top level of the param list (skip `mut` markers).
            if depth == 0
                && tokens[j].kind == TokenKind::Ident
                && tokens.get(j + 1).is_some_and(|t| t.is_punct(":"))
                && !tokens[j].is_ident("mut")
            {
                params.push(tokens[j].text.clone());
            }
            if depth == 0 && tokens[j].is_ident("self") {
                params.push("self".to_owned());
            }
        }
        // Return type: tokens between `->` and the body `{` / `;` / `where`.
        let mut returns_hash = false;
        let mut j = close + 1;
        if tokens.get(j).is_some_and(|t| t.is_punct("-"))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(">"))
        {
            j += 2;
            let ret_start = j;
            let mut depth = 0i64;
            while j < tokens.len() {
                let t = &tokens[j];
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" if depth == 0 => break,
                    "where" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            returns_hash = matches!(
                classify(&tokens[ret_start..j]),
                BindKind::HashContainer { .. }
            );
        }
        // Body: next `{` or `;` at top level from the params on.
        let mut body = None;
        let mut k = close + 1;
        let mut depth = 0i64;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break,
                "{" if depth == 0 => {
                    if let Some(end) = matching_close(tokens, k) {
                        body = Some((k, end));
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnItem {
            name,
            line,
            params,
            returns_hash,
            body,
        });
        // Continue scanning *inside* the body too (nested fns, closures).
        i += 2;
    }
    out
}

/// Scan for `let` / `static` bindings and struct fields.
fn index_bindings(tokens: &[Token]) -> Vec<Binding> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("let") || t.is_ident("static") {
            let mut j = i + 1;
            let mut mutable = false;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                mutable = true;
                j += 1;
            }
            let Some(name) = ident_at(tokens, j) else {
                i += 1;
                continue;
            };
            // Statement tail (`: Type = init ;`): classify over everything
            // up to the terminating `;` at this nesting level.
            let mut end = j + 1;
            let mut depth = 0i64;
            while end < tokens.len() {
                match tokens[end].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            out.push(Binding {
                name: name.to_owned(),
                kind: classify(&tokens[j + 1..end]),
                mutable,
                line: tokens[j].line,
                token: j,
            });
            i = j + 1;
            continue;
        }
        if t.is_ident("fn") {
            // Parameters are bindings visible throughout the body:
            // `name: Type` at the top level of the parameter list. The body
            // itself is still scanned normally for `let` bindings.
            if let Some(open) = (i + 1..tokens.len().min(i + 24)).find(|&j| tokens[j].is_punct("("))
            {
                if let Some(close) = matching_close(tokens, open) {
                    index_params(tokens, open, close, &mut out);
                    i = close + 1;
                    continue;
                }
            }
        }
        if t.is_ident("struct") {
            if let Some(open) = (i + 1..tokens.len().min(i + 24)).find(|&j| {
                tokens[j].is_punct("{")
                    && tokens[..j]
                        .iter()
                        .skip(i)
                        .all(|t| !t.is_punct(";") && !t.is_punct("("))
            }) {
                if let Some(close) = matching_close(tokens, open) {
                    index_fields(tokens, open, close, &mut out);
                    i = open + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Record `name: Type` parameters of a fn signature as bindings. A `&mut`
/// (or `mut name`) parameter is mutable; everything else is read-only.
fn index_params(tokens: &[Token], open: usize, close: usize, out: &mut Vec<Binding>) {
    let mut j = open + 1;
    let mut depth = 0i64;
    while j < close {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            _ => {}
        }
        if depth == 0
            && tokens[j].kind == TokenKind::Ident
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(":"))
            && !tokens[j].is_ident("mut")
            && !tokens[j].is_ident("self")
        {
            // Type runs to the `,` at this level or the close paren.
            let mut end = j + 2;
            let mut d = 0i64;
            while end < close {
                match tokens[end].text.as_str() {
                    "(" | "[" | "{" | "<" => d += 1,
                    ")" | "]" | "}" | ">" => d -= 1,
                    "," if d == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            let ty = &tokens[j + 2..end];
            let pattern_mut = j > open + 1 && tokens[j - 1].is_ident("mut");
            out.push(Binding {
                name: tokens[j].text.clone(),
                kind: classify(ty),
                mutable: pattern_mut || ty.iter().any(|t| t.is_ident("mut")),
                line: tokens[j].line,
                token: j,
            });
            j = end;
            continue;
        }
        j += 1;
    }
}

/// Record `name: Type` fields of a struct body as mutable bindings.
fn index_fields(tokens: &[Token], open: usize, close: usize, out: &mut Vec<Binding>) {
    let mut j = open + 1;
    let mut depth = 0i64;
    while j < close {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            _ => {}
        }
        if depth == 0
            && tokens[j].kind == TokenKind::Ident
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(":"))
            && !tokens[j].is_ident("pub")
        {
            // Field type runs to the `,` at this level or the close brace.
            let mut end = j + 2;
            let mut d = 0i64;
            while end < close {
                match tokens[end].text.as_str() {
                    "(" | "[" | "{" | "<" => d += 1,
                    ")" | "]" | "}" | ">" => d -= 1,
                    "," if d == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            out.push(Binding {
                name: tokens[j].text.clone(),
                kind: classify(&tokens[j + 2..end]),
                mutable: true,
                line: tokens[j].line,
                token: j,
            });
            j = end;
            continue;
        }
        j += 1;
    }
}

/// Find `crossbeam::thread::scope(...)` / `thread::scope(...)` calls and the
/// `.spawn(...)` closures inside their closure bodies.
fn index_spawns(tokens: &[Token]) -> Vec<SpawnSite> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("scope") {
            continue;
        }
        // Qualified `thread::scope` (crossbeam or std) only.
        let qualified = i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].is_ident("thread");
        if !qualified || !tokens.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let Some(call_end) = matching_close(tokens, i + 1) else {
            continue;
        };
        // Closure body: first `{` inside the call.
        let Some(body_open) = (i + 2..call_end).find(|&j| tokens[j].is_punct("{")) else {
            continue;
        };
        let Some(body_close) = matching_close(tokens, body_open) else {
            continue;
        };
        // `.spawn(` inside the scope body.
        let mut j = body_open;
        while j + 2 < body_close {
            if tokens[j].is_punct(".")
                && tokens[j + 1].is_ident("spawn")
                && tokens.get(j + 2).is_some_and(|t| t.is_punct("("))
            {
                if let Some(spawn_end) = matching_close(tokens, j + 2) {
                    if let Some(sb_open) = (j + 3..spawn_end).find(|&k| tokens[k].is_punct("{")) {
                        if let Some(sb_close) = matching_close(tokens, sb_open) {
                            out.push(SpawnSite {
                                scope_token: i,
                                line: tokens[j + 1].line,
                                body: (sb_open, sb_close),
                            });
                        }
                    }
                    j = spawn_end;
                    continue;
                }
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn index(text: &str) -> FileIndex {
        FileIndex::build(&SourceFile::parse(PathBuf::from("x.rs"), "demo", text))
    }

    #[test]
    fn fn_name_params_and_body_span() {
        let ix = index("pub fn add(a: u64, mut b: u64) -> u64 {\n    a + b\n}\n");
        assert_eq!(ix.fns.len(), 1);
        let f = &ix.fns[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params, ["a", "b"]);
        assert!(!f.returns_hash);
        let (s, e) = f.body.expect("has body");
        assert!(ix.tokens[s].is_punct("{") && ix.tokens[e].is_punct("}"));
    }

    #[test]
    fn hash_returning_fn_is_recorded_as_cross_fact() {
        let ix = index(
            "use std::collections::HashMap;\n\
             pub fn by_app() -> HashMap<String, f64> { HashMap::new() }\n",
        );
        assert!(ix.fns[0].returns_hash);
        assert_eq!(ix.facts(), ["hash-fn:by_app"]);
        let cross = CrossFacts::from_facts(ix.facts().iter());
        assert!(cross.hash_returning_fns.contains("by_app"));
    }

    #[test]
    fn let_bindings_are_classified() {
        let ix = index(
            "fn f() {\n\
             let m = std::collections::HashMap::<String, f64>::new();\n\
             let s: HashSet<u32> = HashSet::new();\n\
             let flag = AtomicBool::new(false);\n\
             let n = AtomicUsize::new(0);\n\
             let mut v = Vec::new();\n\
             }\n",
        );
        let kind = |name: &str| ix.bindings.iter().find(|b| b.name == name).map(|b| b.kind);
        assert_eq!(
            kind("m"),
            Some(BindKind::HashContainer { float_values: true })
        );
        assert_eq!(
            kind("s"),
            Some(BindKind::HashContainer {
                float_values: false
            })
        );
        assert_eq!(kind("flag"), Some(BindKind::AtomicBool));
        assert_eq!(kind("n"), Some(BindKind::Sync));
        assert_eq!(kind("v"), Some(BindKind::Other));
        assert!(
            ix.bindings
                .iter()
                .find(|b| b.name == "v")
                .expect("v")
                .mutable
        );
    }

    #[test]
    fn struct_fields_are_indexed() {
        let ix = index(
            "pub struct S {\n\
             pub costs: std::collections::HashMap<String, f64>,\n\
             abort: AtomicBool,\n\
             total: f64,\n\
             }\n",
        );
        let kind = |name: &str| ix.bindings.iter().find(|b| b.name == name).map(|b| b.kind);
        assert_eq!(
            kind("costs"),
            Some(BindKind::HashContainer { float_values: true })
        );
        assert_eq!(kind("abort"), Some(BindKind::AtomicBool));
        assert_eq!(kind("total"), Some(BindKind::Other));
    }

    #[test]
    fn tuple_structs_and_unit_structs_do_not_confuse_fields() {
        let ix = index("pub struct A(pub u64);\npub struct B;\nfn f() {}\n");
        assert!(ix.bindings.is_empty());
        assert_eq!(ix.fns.len(), 1);
    }

    #[test]
    fn spawn_sites_inside_thread_scope() {
        let ix = index(
            "fn run() {\n\
             crossbeam::thread::scope(|s| {\n\
             s.spawn(|_| { work(1); });\n\
             s.spawn(|_| { work(2); });\n\
             });\n\
             }\n",
        );
        assert_eq!(ix.spawns.len(), 2);
        assert_eq!(ix.spawns[0].line, 3);
        assert_eq!(ix.spawns[1].line, 4);
        let (s, e) = ix.spawns[0].body;
        assert!(ix.tokens[s].is_punct("{") && ix.tokens[e].is_punct("}"));
    }

    #[test]
    fn unqualified_scope_calls_are_ignored() {
        let ix = index("fn f() { let scope = 1; g(scope); my::scope(|s| {}); }\n");
        assert!(ix.spawns.is_empty());
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let ix = index("fn outer() {\n fn inner() { let x = 1; }\n let y = 2;\n}\n");
        let x_tok = ix
            .tokens
            .iter()
            .position(|t| t.is_ident("x"))
            .expect("x token");
        assert_eq!(ix.enclosing_fn(x_tok).expect("inner").name, "inner");
        let y_tok = ix
            .tokens
            .iter()
            .position(|t| t.is_ident("y"))
            .expect("y token");
        assert_eq!(ix.enclosing_fn(y_tok).expect("outer").name, "outer");
    }

    #[test]
    fn digest_changes_with_facts() {
        let a = CrossFacts::from_facts(["hash-fn:f".to_owned()].iter());
        let b = CrossFacts::from_facts(["hash-fn:g".to_owned()].iter());
        let empty = CrossFacts::default();
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), empty.digest());
        assert_eq!(
            a.digest(),
            CrossFacts::from_facts(["hash-fn:f".to_owned()].iter()).digest()
        );
    }
}

//! `float-reduce-order`: no float reductions over unordered sources.
//!
//! Float addition is not associative: `(a + b) + c != a + (b + c)` in
//! general, so a `sum()`/`fold()` over an iterator whose order is
//! unspecified (hash-container iteration, parallel iterators) yields
//! different bits run-to-run even when the *set* of addends is identical.
//! The engines' cost ledgers are pinned by exact `f64` equality across
//! engines and sessions, so a single unordered reduction quietly breaks the
//! reproduction's core guarantee.
//!
//! The rule fires when a `sum`/`product`/`fold` reduction sits in the same
//! statement as an unordered source — an iteration over an indexed
//! hash-container binding/field, a call of a (workspace-indexed)
//! hash-returning function, or a `par_iter` — and the reduction is
//! float-typed (an `::<f64>`/`::<f32>` turbofish, a float literal `fold`
//! init, or a hash container indexed with float values). Integer
//! reductions commute exactly and are left to `hashmap-iter-order`.

use crate::diagnostics::Diagnostic;
use crate::index::{BindKind, Context, FileIndex, ITER_METHODS};
use crate::lex::{statement_span, Token, TokenKind};
use crate::rules::{Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct FloatReduceOrder;

const REDUCERS: &[&str] = &["sum", "product", "fold"];

/// Does the statement slice contain an unordered source? Returns the
/// evidence: `Some(float_values)` for a hash container (float flag from the
/// index), or `Some(true)` for a parallel iterator (element type unknown,
/// assume the worst).
fn unordered_source(
    ix: &FileIndex,
    ctx: &Context,
    tokens: &[Token],
    s: usize,
    e: usize,
) -> Option<bool> {
    for j in s..e {
        let t = &tokens[j];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "par_iter" || t.text == "into_par_iter" {
            return Some(true);
        }
        let iterated = tokens.get(j + 1).is_some_and(|t| t.is_punct("."))
            && tokens
                .get(j + 2)
                .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()));
        if iterated {
            if let Some(b) = ix.binding(&t.text, j) {
                if let BindKind::HashContainer { float_values } = b.kind {
                    return Some(float_values);
                }
            }
        }
        // A hash-returning function call anywhere in the chain.
        if tokens.get(j + 1).is_some_and(|t| t.is_punct("("))
            && ctx.cross.hash_returning_fns.contains(&t.text)
        {
            return Some(false);
        }
    }
    None
}

/// Is the reduction at token `r` float-typed, given hash-value evidence?
fn float_evidence(tokens: &[Token], r: usize, hash_has_floats: bool) -> bool {
    if hash_has_floats {
        return true;
    }
    // `sum::<f64>()` turbofish.
    if tokens.get(r + 1).is_some_and(|t| t.is_punct("::"))
        && tokens.get(r + 2).is_some_and(|t| t.is_punct("<"))
        && tokens
            .get(r + 3)
            .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"))
    {
        return true;
    }
    // `fold(0.0, …)` float-literal init.
    if tokens[r].is_ident("fold")
        && tokens.get(r + 1).is_some_and(|t| t.is_punct("("))
        && tokens
            .get(r + 2)
            .is_some_and(|t| t.kind == TokenKind::Num && t.text.contains('.'))
    {
        return true;
    }
    // A float-typed let binding annotation in the same statement
    // (`let total: f64 = …sum();`).
    let (s, e) = statement_span(tokens, r);
    tokens[s..e]
        .iter()
        .take_while(|t| !t.is_punct("="))
        .any(|t| t.is_ident("f64") || t.is_ident("f32"))
}

impl Rule for FloatReduceOrder {
    fn name(&self) -> &'static str {
        "float-reduce-order"
    }

    fn description(&self) -> &'static str {
        "no f64 sum/fold over unordered or cross-thread sources — float addition is order-sensitive"
    }

    fn scope(&self) -> Scope {
        Scope::AllCrates
    }

    fn check(&self, file: &SourceFile, ctx: &Context) -> Vec<Diagnostic> {
        let Some(ix) = ctx.index_of(&file.path) else {
            return Vec::new();
        };
        let tokens = &ix.tokens;
        let mut out = Vec::new();
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident || !REDUCERS.contains(&t.text.as_str()) {
                continue;
            }
            // Reductions are method calls: `.sum(`, `.fold(`.
            if !(i > 0
                && tokens[i - 1].is_punct(".")
                && tokens
                    .get(i + 1)
                    .is_some_and(|t| t.is_punct("(") || t.is_punct("::")))
            {
                continue;
            }
            let lineno = t.line;
            if file.in_test[lineno - 1] || file.is_waived(self.name(), lineno) {
                continue;
            }
            let (s, e) = statement_span(tokens, i);
            let Some(hash_has_floats) = unordered_source(ix, ctx, tokens, s, e) else {
                continue;
            };
            if !float_evidence(tokens, i, hash_has_floats) {
                continue;
            }
            out.push(
                Diagnostic::new(
                    file.path.clone(),
                    lineno,
                    "float-reduce-order",
                    format!(
                        "float `{}` over an unordered source — float addition is not \
                         associative, so the result depends on iteration order",
                        t.text
                    ),
                )
                .with_hint("fix the order first (BTreeMap, or collect + sort by key), then reduce"),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), "pulse-core", text);
        let ctx = Context::of(std::slice::from_ref(&f));
        FloatReduceOrder.check(&f, &ctx)
    }

    #[test]
    fn flags_sum_over_float_hashmap_values() {
        let ds = check(
            "fn total() -> f64 {\n\
             let costs: HashMap<String, f64> = HashMap::new();\n\
             costs.values().sum()\n\
             }\n",
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].line, 3);
    }

    #[test]
    fn flags_turbofish_sum_over_hash_set() {
        let ds = check(
            "fn f() -> f64 {\n\
             let s: HashSet<u64> = HashSet::new();\n\
             s.iter().map(cost_of).sum::<f64>()\n\
             }\n",
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
    }

    #[test]
    fn flags_float_fold_over_hash_iteration() {
        let ds = check(
            "fn f() -> f64 {\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             m.values().fold(0.0, |a, b| a + score(b))\n\
             }\n",
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
    }

    #[test]
    fn integer_sum_over_hash_is_left_to_hashmap_rule() {
        let ds = check(
            "fn f() -> u64 {\n\
             let m: HashMap<u32, u64> = HashMap::new();\n\
             m.values().sum()\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn sum_over_vec_is_clean() {
        let ds = check("fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn cross_file_hash_fn_feeding_sum_is_flagged() {
        let def = SourceFile::parse(
            PathBuf::from("a.rs"),
            "pulse-core",
            "pub fn by_app() -> HashMap<String, f64> { todo!() }\n",
        );
        let user = SourceFile::parse(
            PathBuf::from("b.rs"),
            "pulse-core",
            "pub fn total() -> f64 { by_app().into_values().sum::<f64>() }\n",
        );
        let files = vec![def, user];
        let ctx = Context::of(&files);
        let ds = FloatReduceOrder.check(&files[1], &ctx);
        assert_eq!(ds.len(), 1, "{ds:?}");
    }

    #[test]
    fn test_code_and_waiver_exempt() {
        let body = "let m: HashMap<u32, f64> = HashMap::new();\nlet t: f64 = m.values().sum();\n";
        let ds = check(&format!("#[cfg(test)]\nmod t {{ fn f() {{\n{body}}} }}\n"));
        assert!(ds.is_empty());
        let ds = check(
            "fn f() {\nlet m: HashMap<u32, f64> = HashMap::new();\n\
             // audit:allow(float-reduce-order): fixture\nlet t: f64 = m.values().sum();\n}\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }
}

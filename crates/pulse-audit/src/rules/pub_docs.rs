//! `pub-docs`: every `pub fn` in pulse-core carries a doc comment.
//!
//! pulse-core is the contract boundary of the whole reproduction: the
//! simulator, runtime, and experiment harness all call it. A public function
//! whose pre/post-conditions live only in the author's head is how the
//! Algorithm 1/2 invariants rot. `pub(crate)` and test functions are exempt.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct PubDocs;

impl Rule for PubDocs {
    fn name(&self) -> &'static str {
        "pub-docs"
    }

    fn description(&self) -> &'static str {
        "every non-test `pub fn` in pulse-core has a /// doc comment"
    }

    fn scope(&self) -> Scope {
        Scope::Only(&["pulse-core"])
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, line) in file.masked_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] || file.is_waived(self.name(), lineno) {
                continue;
            }
            let Some(name) = pub_fn_name(line) else {
                continue;
            };
            if !documented(file, i) {
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        lineno,
                        "pub-docs",
                        format!("public function `{name}` lacks a doc comment"),
                    )
                    .with_hint(format!(
                        "add `/// ...` above `{name}` stating its contract \
                         (inputs, ranges, what it returns)"
                    )),
                );
            }
        }
        out
    }
}

/// If `line` declares a `pub fn` (not `pub(crate)`/`pub(super)`), return the
/// function name.
fn pub_fn_name(line: &str) -> Option<String> {
    let mut rest = line.trim_start().strip_prefix("pub ")?.trim_start();
    for qualifier in ["const ", "async ", "unsafe "] {
        if let Some(r) = rest.strip_prefix(qualifier) {
            rest = r.trim_start();
        }
    }
    let after_fn = rest.strip_prefix("fn ")?;
    let name: String = after_fn
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Walk upward from the `pub fn` at 0-based line `i`, skipping attribute
/// lines, until a doc comment (documented) or anything else (undocumented).
fn documented(file: &SourceFile, i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let code = file.masked_lines[j].trim();
        let comment = file.comment_lines[j].trim_start();
        if comment.starts_with("///") || comment.starts_with("/**") {
            return true;
        }
        // Attribute lines (possibly the tail of a multi-line attribute) sit
        // between the doc comment and the item.
        if !code.is_empty() && (code.starts_with("#[") || code.ends_with(']')) {
            continue;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), "pulse-core", text);
        PubDocs.check(&f, &Context::default())
    }

    #[test]
    fn undocumented_pub_fn_flagged() {
        let ds = check("pub fn naked(x: u64) -> u64 { x }\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("`naked`"));
    }

    #[test]
    fn documented_pub_fn_passes() {
        let ds =
            check("/// Doubles the minute counter.\npub fn doubled(x: u64) -> u64 { x * 2 }\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn attributes_between_doc_and_fn_are_skipped() {
        let ds = check("/// Documented.\n#[must_use]\n#[inline]\npub fn f() -> u64 { 1 }\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn pub_crate_and_private_are_exempt() {
        let ds = check("pub(crate) fn internal() {}\nfn private() {}\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn qualifiers_are_recognized() {
        let ds = check("pub const fn c() -> u64 { 1 }\npub unsafe fn u() {}\n");
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn test_fns_exempt() {
        let ds = check("#[cfg(test)]\nmod t {\n    pub fn helper() {}\n}\n");
        assert!(ds.is_empty());
    }
}

//! `variant-sentinel`: the raw hole sentinel stays inside the ledger module.
//!
//! Keep-alive plans encode "no container this minute" as the sentinel
//! variant id `usize::MAX` (`pulse_core::schedule::HOLE`). Every consumer is
//! expected to speak the typed `Slot` vocabulary — `Slot::Alive(v)` /
//! `Slot::Hole` — and the `ScheduleLedger` accessors instead of comparing
//! raw ids: a raw sentinel that leaks into arithmetic or a footprint sum
//! silently produces astronomically wrong variants. This rule flags, outside
//! `crates/pulse-core/src/schedule.rs` (the module that owns the encoding):
//!
//! * `usize::MAX` on lines that also mention variants, slots, or holes —
//!   minting a new sentinel value (other `usize::MAX` uses, e.g. the simplex
//!   basis placeholder or saturating index conversions, are fine);
//! * any standalone `HOLE` identifier reference — consuming the sentinel.
//!
//! The one sanctioned exception, `pulse_sim::engine`'s deprecated
//! compatibility re-export, carries a waiver naming this rule.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;
use std::path::Path;

/// See module docs.
pub struct VariantSentinel;

/// The module that owns the sentinel encoding and may spell it freely.
const LEDGER_MODULE: &str = "crates/pulse-core/src/schedule.rs";

/// Tokens that mark a `usize::MAX` line as slot/variant-related.
const SLOT_CONTEXT: &[&str] = &["variant", "Variant", "HOLE", "slot", "Slot", "hole", "Hole"];

impl Rule for VariantSentinel {
    fn name(&self) -> &'static str {
        "variant-sentinel"
    }

    fn description(&self) -> &'static str {
        "no raw usize::MAX variant sentinel or HOLE reference outside pulse-core's ledger module"
    }

    fn scope(&self) -> Scope {
        Scope::AllCrates
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        if file.path == Path::new(LEDGER_MODULE) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, line) in file.masked_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] || file.is_waived(self.name(), lineno) {
                continue;
            }
            if line.contains("usize::MAX") && SLOT_CONTEXT.iter().any(|t| line.contains(t)) {
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        lineno,
                        "variant-sentinel",
                        "raw `usize::MAX` minted as a variant/slot sentinel",
                    )
                    .with_hint(
                        "use pulse_core::schedule::Slot (Alive/Hole) and the ScheduleLedger \
                         accessors; the encoding lives in pulse-core's schedule module only",
                    ),
                );
            }
            for (pos, _) in line.match_indices("HOLE") {
                if standalone_identifier(line, pos, "HOLE") {
                    out.push(
                        Diagnostic::new(
                            file.path.clone(),
                            lineno,
                            "variant-sentinel",
                            "reference to the raw `HOLE` sentinel outside the ledger module",
                        )
                        .with_hint(
                            "match on pulse_core::schedule::Slot instead of comparing against \
                             the sentinel id",
                        ),
                    );
                }
            }
        }
        out
    }
}

/// Is `tok` at byte offset `pos` a standalone identifier (not a fragment of
/// a longer identifier such as `WHOLE` or `HOLE_COUNT`)?
fn standalone_identifier(line: &str, pos: usize, tok: &str) -> bool {
    let before = line[..pos].chars().next_back();
    let after = line[pos + tok.len()..].chars().next();
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    !before.is_some_and(is_ident) && !after.is_some_and(is_ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check_at(path: &str, text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from(path), "pulse-sim", text);
        VariantSentinel.check(&f, &Context::default())
    }

    fn check(text: &str) -> Vec<Diagnostic> {
        check_at("crates/pulse-sim/src/engine.rs", text)
    }

    #[test]
    fn flags_minting_a_variant_sentinel() {
        let ds = check("pub const HOLE: VariantId = usize::MAX;\n");
        // Both faces of the offence on one line: the mint and the reference.
        assert_eq!(ds.len(), 2);
        assert!(ds[0].message.contains("usize::MAX"));
    }

    #[test]
    fn flags_sentinel_comparison() {
        let ds = check("if plan[i] == HOLE { continue; }\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("HOLE"));
    }

    #[test]
    fn unrelated_usize_max_is_fine() {
        // The simplex basis placeholder and saturating index conversions.
        let ds = check("let mut basis = vec![usize::MAX; m];\n");
        assert!(ds.is_empty());
        let ds = check("usize::try_from(gap).unwrap_or(usize::MAX)\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn longer_identifiers_are_not_the_sentinel() {
        let ds = check("let WHOLE = 1; let HOLE_COUNT = 2; let n = WHOLE + HOLE_COUNT;\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn ledger_module_is_exempt() {
        let f = SourceFile::parse(
            PathBuf::from("crates/pulse-core/src/schedule.rs"),
            "pulse-core",
            "pub const HOLE: VariantId = usize::MAX;\nif raw == HOLE {}\n",
        );
        assert!(VariantSentinel.check(&f, &Context::default()).is_empty());
    }

    #[test]
    fn waiver_and_test_code_are_exempt() {
        let ds = check(
            "// audit:allow(variant-sentinel): deprecated compatibility re-export\n\
             pub const HOLE: VariantId = pulse_core::schedule::HOLE;\n\
             #[cfg(test)]\nmod t { fn f() { assert_eq!(HOLE, usize::MAX); } }\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let ds = check(
            "// the HOLE sentinel is documented here\n\
             let note = \"see schedule::HOLE for the encoding\";\n",
        );
        assert!(ds.is_empty());
    }
}

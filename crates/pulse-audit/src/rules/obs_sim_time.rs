//! `obs-sim-time`: the observability crate never reads the wall clock.
//!
//! Every `pulse-obs` event is stamped with *simulated* time — the engines'
//! minute counter or millisecond event clock — so a trace replays
//! bit-identically and two runs of the same seed produce byte-identical
//! JSONL. A single `Instant::now()` or `SystemTime` timestamp would quietly
//! break that, so the whole family of ambient-clock APIs is banned from the
//! crate (stricter than the `wall-clock` rule: `SystemTime` is flagged as a
//! type, not just its `::now()` call).

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct ObsSimTime;

const TOKENS: &[(&str, &str)] = &[
    (
        "Instant::now",
        "ambient clock `Instant::now` in pulse-obs — events carry simulated time only",
    ),
    (
        "SystemTime",
        "wall-clock type `SystemTime` in pulse-obs — events carry simulated time only",
    ),
    (
        "UNIX_EPOCH",
        "wall-clock anchor `UNIX_EPOCH` in pulse-obs — events carry simulated time only",
    ),
    (
        "chrono::",
        "calendar-time dependency in pulse-obs — events carry simulated time only",
    ),
];

impl Rule for ObsSimTime {
    fn name(&self) -> &'static str {
        "obs-sim-time"
    }

    fn description(&self) -> &'static str {
        "pulse-obs never reads the wall clock: no Instant::now/SystemTime/UNIX_EPOCH"
    }

    fn scope(&self) -> Scope {
        Scope::Only(&["pulse-obs"])
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, line) in file.masked_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] || file.is_waived(self.name(), lineno) {
                continue;
            }
            for &(tok, what) in TOKENS {
                if line.contains(tok) {
                    out.push(
                        Diagnostic::new(file.path.clone(), lineno, "obs-sim-time", what).with_hint(
                            "take the simulated minute/millisecond as an explicit event field",
                        ),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(krate: &str, text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), krate, text);
        ObsSimTime.check(&f, &Context::default())
    }

    #[test]
    fn flags_every_clock_token() {
        let ds = check(
            "pulse-obs",
            "let a = std::time::Instant::now();\n\
             let b: std::time::SystemTime = todo!();\n\
             let c = std::time::UNIX_EPOCH;\n",
        );
        // `SystemTime` matches once on line 2; `Instant::now`/`UNIX_EPOCH`
        // once each on their lines.
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| d.rule == "obs-sim-time"));
    }

    #[test]
    fn simulated_time_fields_are_fine() {
        let ds = check(
            "pulse-obs",
            "pub struct Adjust { pub minute: u64 }\nlet at_ms = 42u64;\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn other_crates_out_of_scope() {
        assert!(!ObsSimTime.scope().includes("pulse-experiments"));
        assert!(!ObsSimTime.scope().includes("pulse-sim"));
        assert!(ObsSimTime.scope().includes("pulse-obs"));
    }

    #[test]
    fn test_code_exempt() {
        let ds = check(
            "pulse-obs",
            "#[cfg(test)]\nmod t { fn f() { let t = std::time::Instant::now(); } }\n",
        );
        assert!(ds.is_empty());
    }
}

//! `hashmap-iter-order`: no iteration over unordered hash containers.
//!
//! Every headline assertion in this repo is exact `f64` equality — the
//! batch-vs-stepped session bit-identity, the chaos/overload transparency
//! checks, the cross-engine equivalence proptests. Iterating a
//! `HashMap`/`HashSet` in any path that feeds cost sums, summaries,
//! schedules or obs events makes the result depend on hasher state, which
//! std randomizes per process: the same inputs then produce different
//! float-accumulation orders and the bit-identity silently breaks.
//!
//! The rule fires on any iteration of a hash-container binding, struct
//! field, or the result of a function indexed (workspace-wide) as
//! returning a hash container — whether through `.iter()`-family methods or
//! a `for … in` loop — unless the same statement visibly fixes the order
//! (a `sort*` call or a collect into `BTreeMap`/`BTreeSet`) or reduces
//! order-insensitively (`count`/`len`/`min`/`max`/`any`/`all`). Switch the
//! container to `BTreeMap`/`BTreeSet`, or collect and sort before
//! consuming; waive only where order provably cannot escape.

use crate::diagnostics::Diagnostic;
use crate::index::{BindKind, Context, FileIndex, ITER_METHODS};
use crate::lex::{matching_close, statement_span, Token, TokenKind};
use crate::rules::{Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct HashMapIterOrder;

/// Statement-level escapes: the iteration's order is fixed or irrelevant.
const ORDER_FIXERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "len",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "any",
    "all",
];

fn mitigated(tokens: &[Token], at: usize) -> bool {
    let (s, e) = statement_span(tokens, at);
    tokens[s..e]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && ORDER_FIXERS.contains(&t.text.as_str()))
}

fn is_hash_binding(ix: &FileIndex, name: &str, at: usize) -> bool {
    ix.binding(name, at)
        .is_some_and(|b| matches!(b.kind, BindKind::HashContainer { .. }))
}

impl Rule for HashMapIterOrder {
    fn name(&self) -> &'static str {
        "hashmap-iter-order"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet iteration feeding deterministic paths — use BTreeMap or sort first"
    }

    fn scope(&self) -> Scope {
        Scope::AllCrates
    }

    fn check(&self, file: &SourceFile, ctx: &Context) -> Vec<Diagnostic> {
        let Some(ix) = ctx.index_of(&file.path) else {
            return Vec::new();
        };
        let tokens = &ix.tokens;
        let mut flagged: Vec<usize> = Vec::new();

        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            // `x.iter()` / `x.values()` / … on a hash binding or field.
            if tokens.get(i + 1).is_some_and(|t| t.is_punct("."))
                && tokens
                    .get(i + 2)
                    .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
                && is_hash_binding(ix, &t.text, i)
            {
                flagged.push(i);
                continue;
            }
            // `by_app(...).values()` / `for … in by_app(...)` where `by_app`
            // is indexed (in any workspace file) as returning a hash
            // container.
            if ctx.cross.hash_returning_fns.contains(&t.text)
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
            {
                if let Some(close) = matching_close(tokens, i + 1) {
                    let chained_iter = tokens.get(close + 1).is_some_and(|t| t.is_punct("."))
                        && tokens
                            .get(close + 2)
                            .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()));
                    if chained_iter || in_for_range(tokens, i) {
                        flagged.push(i);
                        continue;
                    }
                }
            }
            // Bare `for x in m` / `for x in &m` (no method call to anchor on).
            if is_hash_binding(ix, &t.text, i)
                && !tokens.get(i + 1).is_some_and(|t| t.is_punct("."))
                && in_for_range(tokens, i)
            {
                flagged.push(i);
            }
        }

        let mut out = Vec::new();
        for i in flagged {
            let lineno = tokens[i].line;
            if file.in_test[lineno - 1]
                || file.is_waived(self.name(), lineno)
                || mitigated(tokens, i)
            {
                continue;
            }
            out.push(
                Diagnostic::new(
                    file.path.clone(),
                    lineno,
                    "hashmap-iter-order",
                    format!(
                        "iteration over unordered hash container `{}` — order depends on \
                         hasher state and breaks bit-identical reproduction",
                        tokens[i].text
                    ),
                )
                .with_hint("use BTreeMap/BTreeSet, or collect and sort before consuming the order"),
            );
        }
        out
    }
}

/// Is token `at` inside the range expression of a `for … in <range> {` head?
fn in_for_range(tokens: &[Token], at: usize) -> bool {
    // Walk back for `in` then `for` before any `{`/`}`/`;` boundary.
    let mut j = at;
    let mut depth = 0i64;
    let mut saw_in = false;
    while j > 0 {
        j -= 1;
        match tokens[j].text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => depth -= 1,
            "{" | "}" | ";" => return false,
            "in" if depth == 0 && tokens[j].kind == TokenKind::Ident => {
                saw_in = true;
            }
            "for" if saw_in && depth == 0 && tokens[j].kind == TokenKind::Ident => {
                return true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), "pulse-sim", text);
        let ctx = Context::of(std::slice::from_ref(&f));
        HashMapIterOrder.check(&f, &ctx)
    }

    #[test]
    fn flags_values_iteration_on_hash_binding() {
        let ds = check(
            "fn cost() -> f64 {\n\
             let m = std::collections::HashMap::<String, f64>::new();\n\
             m.values().sum()\n\
             }\n",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 3);
        assert!(ds[0].message.contains("`m`"));
    }

    #[test]
    fn flags_for_loop_over_hash_binding() {
        let ds = check(
            "fn f() {\n\
             let m: HashMap<u32, f64> = HashMap::new();\n\
             for (k, v) in &m { emit(k, v); }\n\
             }\n",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 3);
    }

    #[test]
    fn btree_map_is_clean() {
        let ds = check(
            "fn f() {\n\
             let m: std::collections::BTreeMap<u32, f64> = BTreeMap::new();\n\
             for (k, v) in &m { emit(k, v); }\n\
             let s: f64 = m.values().sum();\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn sorted_collect_in_same_statement_is_clean() {
        let ds = check(
            "fn f() {\n\
             let m: HashMap<u32, f64> = HashMap::new();\n\
             let ordered: BTreeMap<_, _> = m.iter().collect();\n\
             let n = m.keys().count();\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn cross_file_hash_returning_fn_is_flagged_at_call_site() {
        let def = SourceFile::parse(
            PathBuf::from("a.rs"),
            "pulse-sim",
            "pub fn by_app() -> std::collections::HashMap<String, f64> { todo!() }\n",
        );
        let user = SourceFile::parse(
            PathBuf::from("b.rs"),
            "pulse-sim",
            "pub fn total() -> f64 { by_app().values().sum() }\n\
             pub fn walk() { for (k, v) in by_app() { emit(k, v); } }\n",
        );
        let files = vec![def, user];
        let ctx = Context::of(&files);
        let ds = HashMapIterOrder.check(&files[1], &ctx);
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert_eq!(ds[0].line, 1);
        assert_eq!(ds[1].line, 2);
    }

    #[test]
    fn struct_field_iteration_is_flagged() {
        let ds = check(
            "struct S { costs: HashMap<String, f64> }\n\
             impl S { fn dump(&self) { for c in self.costs.values() { emit(c); } } }\n",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 2);
    }

    #[test]
    fn test_code_and_waivers_are_exempt() {
        let ds = check(
            "#[cfg(test)]\nmod t {\n fn f() {\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             for k in m.keys() { use_it(k); }\n } }\n",
        );
        assert!(ds.is_empty());
        let ds = check(
            "fn f() {\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             // audit:allow(hashmap-iter-order): order-independent counter merge\n\
             for k in m.keys() { use_it(k); }\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn plain_vec_iteration_is_clean() {
        let ds = check("fn f() { let v = vec![1, 2]; let s: u32 = v.iter().sum(); }\n");
        assert!(ds.is_empty());
    }
}

//! `shared-mut-in-scope`: no unsynchronized mutation of captured state
//! inside thread-scope spawns.
//!
//! `crossbeam::thread::scope` / `std::thread::scope` closures borrow from
//! the enclosing stack frame, and the borrow checker stops *aliased* `&mut`
//! captures — but it cannot stop the shapes that sneak shared mutation past
//! it in review: a `Cell`/`RefCell` wrapper, an `unsafe` pointer, or (the
//! common near-miss this rule actually targets) code written as if the
//! capture were shared, which then gets "fixed" by cloning per spawn and
//! silently forking the state. The repo's stance is that anything mutated
//! from inside a spawn closure must be visibly synchronized at the
//! declaration: a `Mutex`/`RwLock`, an atomic, or a channel.
//!
//! Concretely, the rule fires when a spawn-closure body mutates a binding
//! that (a) is declared *before* the scope call in the same file, and
//! (b) is not classified `Sync`/`AtomicBool` by the index. Mutation means
//! assignment (`x = …`, `x += …`), a known mutating method
//! (`push`/`insert`/…), or taking `&mut x`. Bindings declared inside the
//! spawn body itself (per-thread locals) never fire.

use crate::diagnostics::Diagnostic;
use crate::index::{BindKind, Context, FileIndex};
use crate::lex::{Token, TokenKind};
use crate::rules::{Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct SharedMutInScope;

/// Container methods that mutate the receiver.
const MUT_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "remove",
    "extend",
    "append",
    "clear",
    "drain",
    "truncate",
    "pop",
    "retain",
    "sort",
    "sort_by",
    "sort_unstable",
    "swap",
    "fill",
    "resize",
];

/// Is the binding used at token `use_pos` the *outer* one declared at
/// `decl_token`, rather than a shadowing redeclaration inside the spawn?
fn resolves_to_outer(ix: &FileIndex, name: &str, use_pos: usize, decl_token: usize) -> bool {
    ix.binding(name, use_pos)
        .is_some_and(|b| b.token == decl_token)
}

/// How token `i` (an identifier) mutates its binding, if it does.
fn mutation_kind(tokens: &[Token], i: usize) -> Option<&'static str> {
    // `&mut x`
    if i >= 2 && tokens[i - 1].is_ident("mut") && tokens[i - 2].is_punct("&") {
        return Some("`&mut` borrow");
    }
    let next = tokens.get(i + 1)?;
    // `x = …` (not `==`, not `x <= y` etc. — those put a punct before `=`).
    if next.is_punct("=")
        && !tokens.get(i + 2).is_some_and(|t| t.is_punct("="))
        && tokens
            .get(i.wrapping_sub(1))
            .is_none_or(|t| !t.is_ident("let") && !t.is_ident("mut"))
    {
        return Some("assignment");
    }
    // Compound assignment: adjacent punct pair `+=`, `-=`, `*=`, … .
    if ["+", "-", "*", "/", "%", "&", "|", "^"].contains(&next.text.as_str())
        && tokens.get(i + 2).is_some_and(|t| t.is_punct("="))
    {
        return Some("compound assignment");
    }
    // `x.push(…)` and friends.
    if next.is_punct(".")
        && tokens
            .get(i + 2)
            .is_some_and(|t| MUT_METHODS.contains(&t.text.as_str()))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
    {
        return Some("mutating method call");
    }
    None
}

impl Rule for SharedMutInScope {
    fn name(&self) -> &'static str {
        "shared-mut-in-scope"
    }

    fn description(&self) -> &'static str {
        "state mutated inside thread-scope spawns must be synchronized at its declaration"
    }

    fn scope(&self) -> Scope {
        Scope::AllCrates
    }

    fn check(&self, file: &SourceFile, ctx: &Context) -> Vec<Diagnostic> {
        let Some(ix) = ctx.index_of(&file.path) else {
            return Vec::new();
        };
        let tokens = &ix.tokens;
        let mut out = Vec::new();
        for spawn in &ix.spawns {
            let (body_s, body_e) = spawn.body;
            for i in body_s + 1..body_e {
                let t = &tokens[i];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                // The binding must be declared before the scope call (a
                // shared capture, not a per-thread local or shadow) …
                let Some(decl) = ix.binding(&t.text, spawn.scope_token) else {
                    continue;
                };
                if decl.token >= spawn.scope_token || !resolves_to_outer(ix, &t.text, i, decl.token)
                {
                    continue;
                }
                // … unsynchronized …
                if matches!(decl.kind, BindKind::Sync | BindKind::AtomicBool) {
                    continue;
                }
                // … and actually mutated here.
                let Some(how) = mutation_kind(tokens, i) else {
                    continue;
                };
                let lineno = t.line;
                if file.in_test[lineno - 1] || file.is_waived(self.name(), lineno) {
                    continue;
                }
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        lineno,
                        "shared-mut-in-scope",
                        format!(
                            "{how} on `{}` inside a thread-scope spawn, but `{}` is declared \
                             outside the scope without synchronization",
                            t.text, t.text
                        ),
                    )
                    .with_hint(
                        "wrap the shared state in a Mutex/RwLock or an atomic, or send results \
                         over a channel and merge after the scope joins",
                    ),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), "pulse-sim", text);
        let ctx = Context::of(std::slice::from_ref(&f));
        SharedMutInScope.check(&f, &ctx)
    }

    #[test]
    fn flags_assignment_and_push_on_outer_binding() {
        let ds = check(
            "fn run() {\n\
             let mut total = 0u64;\n\
             let mut rows = Vec::new();\n\
             crossbeam::thread::scope(|s| {\n\
             s.spawn(|_| { total = 1; rows.push(2); });\n\
             });\n\
             }\n",
        );
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert!(ds[0].message.contains("assignment"));
        assert!(ds[1].message.contains("mutating method"));
    }

    #[test]
    fn flags_compound_assign_and_mut_borrow() {
        let ds = check(
            "fn run() {\n\
             let mut acc = 0.0f64;\n\
             let mut buf = String::new();\n\
             std::thread::scope(|s| {\n\
             s.spawn(|| { acc += 1.0; fill(&mut buf); });\n\
             });\n\
             }\n",
        );
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert!(ds[0].message.contains("compound assignment"));
        assert!(ds[1].message.contains("`&mut` borrow"));
    }

    #[test]
    fn mutex_and_atomics_are_clean() {
        let ds = check(
            "fn run() {\n\
             let total = Mutex::new(0u64);\n\
             let hits = AtomicUsize::new(0);\n\
             let abort = AtomicBool::new(false);\n\
             crossbeam::thread::scope(|s| {\n\
             s.spawn(|_| {\n\
             *total.lock() += 1;\n\
             hits.fetch_add(1, Ordering::Relaxed);\n\
             abort.store(true, Ordering::Release);\n\
             });\n\
             });\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn per_thread_locals_and_shadows_are_clean() {
        let ds = check(
            "fn run() {\n\
             let mut total = 0u64;\n\
             crossbeam::thread::scope(|s| {\n\
             s.spawn(|_| {\n\
             let mut local = Vec::new();\n\
             local.push(1);\n\
             let mut total = 0u64;\n\
             total = 7;\n\
             });\n\
             });\n\
             report(total);\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn reads_and_comparisons_do_not_fire() {
        let ds = check(
            "fn run(limit: u64) {\n\
             let total = 5u64;\n\
             crossbeam::thread::scope(|s| {\n\
             s.spawn(|_| { if total == limit { stop(); } use_it(total); });\n\
             });\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn mutation_outside_any_spawn_is_clean() {
        let ds = check(
            "fn run() {\n\
             let mut total = 0u64;\n\
             total += 1;\n\
             crossbeam::thread::scope(|s| {\n\
             s.spawn(|_| { read(total); });\n\
             });\n\
             total += 1;\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn test_code_and_waivers_exempt() {
        let ds = check(
            "#[cfg(test)]\nmod t {\nfn run() {\n\
             let mut total = 0u64;\n\
             crossbeam::thread::scope(|s| { s.spawn(|_| { total = 1; }); });\n\
             } }\n",
        );
        assert!(ds.is_empty());
        let ds = check(
            "fn run() {\n\
             let mut total = 0u64;\n\
             crossbeam::thread::scope(|s| {\n\
             // audit:allow(shared-mut-in-scope): single spawn, joined before read\n\
             s.spawn(|_| { total = 1; });\n\
             });\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }
}

//! `unseeded-rng`: RNG construction must route through a seed parameter.
//!
//! Every stochastic path in the reproduction — assignment draws, synthetic
//! traces, fault injection, policy randomness — replays bit-identically
//! because the seed always arrives as data (a config field, a function
//! parameter, `base_seed + run`). Two constructions break that:
//!
//! - **ambient entropy** (`thread_rng()`, `from_entropy()`, `rand::random`)
//!   produces unreproducible runs outright;
//! - **hard-coded literal seeds** (`SmallRng::seed_from_u64(42)` in library
//!   code) look deterministic but cannot be varied per run, and two call
//!   sites sharing a literal silently correlate their streams.
//!
//! The rule fires on both, outside `#[cfg(test)]`. Route the seed in from
//! the caller instead; fixed seeds in tests are exempt by design.

use crate::diagnostics::Diagnostic;
use crate::index::Context;
use crate::lex::{matches_seq, matching_close, TokenKind};
use crate::rules::{Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct UnseededRng;

/// Constructors whose argument list must mention at least one identifier
/// (a parameter, field or expression carrying the seed in from outside).
const SEEDED_CTORS: &[&str] = &["seed_from_u64", "from_seed"];

/// Ambient-entropy constructors: always wrong in library code.
const AMBIENT: &[&str] = &["thread_rng", "from_entropy"];

impl Rule for UnseededRng {
    fn name(&self) -> &'static str {
        "unseeded-rng"
    }

    fn description(&self) -> &'static str {
        "RNG construction routes through a seed parameter: no ambient entropy or literal seeds"
    }

    fn scope(&self) -> Scope {
        Scope::AllCrates
    }

    fn check(&self, file: &SourceFile, ctx: &Context) -> Vec<Diagnostic> {
        let Some(ix) = ctx.index_of(&file.path) else {
            return Vec::new();
        };
        let tokens = &ix.tokens;
        let mut out = Vec::new();
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let lineno = t.line;
            if file.in_test[lineno - 1] || file.is_waived(self.name(), lineno) {
                continue;
            }
            if AMBIENT.contains(&t.text.as_str()) {
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        lineno,
                        "unseeded-rng",
                        format!(
                            "ambient entropy `{}` — runs cannot be replayed bit-identically",
                            t.text
                        ),
                    )
                    .with_hint("construct the RNG from a seed passed in by the caller"),
                );
                continue;
            }
            if matches_seq(tokens, i, &["rand", "::", "random"]) {
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        lineno,
                        "unseeded-rng",
                        "ambient entropy `rand::random` — runs cannot be replayed bit-identically",
                    )
                    .with_hint("draw from a seeded RNG passed in by the caller"),
                );
                continue;
            }
            if SEEDED_CTORS.contains(&t.text.as_str())
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
            {
                let Some(close) = matching_close(tokens, i + 1) else {
                    continue;
                };
                let has_ident = tokens[i + 2..close]
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident);
                if !has_ident && close > i + 2 {
                    out.push(
                        Diagnostic::new(
                            file.path.clone(),
                            lineno,
                            "unseeded-rng",
                            format!(
                                "`{}` called with a hard-coded literal seed — route the seed \
                                 in as a parameter so runs can vary and replay",
                                t.text
                            ),
                        )
                        .with_hint(
                            "take a `seed: u64` parameter (or config field) and pass it through",
                        ),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), "pulse-trace", text);
        let ctx = Context::of(std::slice::from_ref(&f));
        UnseededRng.check(&f, &ctx)
    }

    #[test]
    fn flags_ambient_entropy() {
        let ds = check(
            "fn f() -> f64 {\n\
             let mut rng = rand::thread_rng();\n\
             let r = SmallRng::from_entropy();\n\
             rand::random()\n\
             }\n",
        );
        assert_eq!(ds.len(), 3, "{ds:?}");
        assert_eq!(ds[0].line, 2);
        assert_eq!(ds[1].line, 3);
        assert_eq!(ds[2].line, 4);
    }

    #[test]
    fn flags_literal_seed_in_library_code() {
        let ds = check("fn gen() -> SmallRng { SmallRng::seed_from_u64(42) }\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("hard-coded literal seed"));
    }

    #[test]
    fn seed_routed_through_parameter_is_clean() {
        let ds = check(
            "fn gen(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }\n\
             fn gen2(cfg: &Cfg) -> SmallRng { SmallRng::seed_from_u64(cfg.seed.wrapping_add(1)) }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn literal_seed_in_tests_is_exempt() {
        let ds = check(
            "#[cfg(test)]\nmod t {\n\
             fn rng() -> SmallRng { SmallRng::seed_from_u64(1234) }\n\
             }\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn waiver_suppresses() {
        let ds = check(
            "// audit:allow(unseeded-rng): protocol constant shared with the paper artifact\n\
             fn gen() -> SmallRng { SmallRng::seed_from_u64(2024) }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn idents_containing_the_names_are_not_matched() {
        let ds = check("fn f() { let thread_rng_like = 1; random_assignment(); }\n");
        assert!(ds.is_empty(), "{ds:?}");
    }
}

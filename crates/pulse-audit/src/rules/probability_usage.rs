//! `probability`: probability-bearing modules must use the `Probability`
//! newtype.
//!
//! `interarrival.rs`, `thresholds.rs` and `utility.rs` are the three
//! pulse-core modules whose math is *about* probabilities (gap mass,
//! threshold bands, the Pr term of Equation 2). Each must route its values
//! through `pulse_core::probability::Probability` so the [0, 1] invariant is
//! checked at the boundary instead of being re-derived at every call site.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct ProbabilityUsage;

/// File stems (in pulse-core) that must reference the newtype.
const PROBABILITY_MODULES: &[&str] = &["interarrival.rs", "thresholds.rs", "utility.rs"];

impl Rule for ProbabilityUsage {
    fn name(&self) -> &'static str {
        "probability"
    }

    fn description(&self) -> &'static str {
        "interarrival/thresholds/utility must route values through the Probability newtype"
    }

    fn scope(&self) -> Scope {
        Scope::Only(&["pulse-core"])
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        let file_name = file
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !PROBABILITY_MODULES.contains(&file_name.as_str()) {
            return Vec::new();
        }
        let uses_newtype = file.masked_lines.iter().any(|l| l.contains("Probability"));
        if uses_newtype {
            return Vec::new();
        }
        vec![Diagnostic::new(
            file.path.clone(),
            1,
            "probability",
            format!(
                "`{file_name}` holds probability math but never uses the `Probability` newtype"
            ),
        )
        .with_hint(
            "import `crate::probability::Probability` and carry probabilities as the newtype",
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(name: &str, text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from(name), "pulse-core", text);
        ProbabilityUsage.check(&f, &Context::default())
    }

    #[test]
    fn probability_module_without_newtype_flagged() {
        let ds = check("thresholds.rs", "pub fn t(p: f64) -> f64 { p }\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 1);
    }

    #[test]
    fn probability_module_with_newtype_passes() {
        let ds = check(
            "utility.rs",
            "use crate::probability::Probability;\npub fn u(p: Probability) {}\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn other_modules_not_required() {
        let ds = check("peak.rs", "pub fn detect() {}\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn mention_in_string_does_not_count() {
        // "Probability" appearing only inside a string literal is masked out.
        let ds = check("interarrival.rs", "const NAME: &str = \"Probability\";\n");
        assert_eq!(ds.len(), 1);
    }
}

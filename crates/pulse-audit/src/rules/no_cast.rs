//! `cast`: no raw `as` numeric casts in pulse-core policy math.
//!
//! The policy core mixes minute counters (`u64`), variant indices (`usize`)
//! and probabilities/memory (`f64`); a silent truncating or sign-changing
//! `as` cast in that math is exactly the class of bug the paper's
//! minute-resolution determinism cannot tolerate. Use `From`/`TryFrom`
//! conversions, or waive a provably lossless cast with
//! `// audit:allow(cast): <why lossless>`.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct NoCast;

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

impl Rule for NoCast {
    fn name(&self) -> &'static str {
        "cast"
    }

    fn description(&self) -> &'static str {
        "no raw `as` numeric casts in pulse-core (use From/TryFrom or a justified waiver)"
    }

    fn scope(&self) -> Scope {
        Scope::Only(&["pulse-core"])
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, line) in file.masked_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] || file.is_waived(self.name(), lineno) {
                continue;
            }
            for (pos, _) in line.match_indices(" as ") {
                let Some(target) = cast_target(&line[pos + " as ".len()..]) else {
                    continue;
                };
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        lineno,
                        "cast",
                        format!("raw `as {target}` cast in policy math"),
                    )
                    .with_hint(format!(
                        "use `{target}::from(..)`/`{target}::try_from(..)` or add \
                         `// audit:allow(cast): <why lossless>`"
                    )),
                );
            }
        }
        out
    }
}

/// The numeric type a cast targets, if `rest` (text after `" as "`) starts
/// with one.
fn cast_target(rest: &str) -> Option<&'static str> {
    let tok: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    NUMERIC_TYPES.iter().copied().find(|t| *t == tok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), "pulse-core", text);
        NoCast.check(&f, &Context::default())
    }

    #[test]
    fn flags_numeric_casts() {
        let ds = check("let m = minutes as f64;\nlet i = idx as u32;\n");
        assert_eq!(ds.len(), 2);
        assert!(ds[0].message.contains("as f64"));
        assert!(ds[1].message.contains("as u32"));
    }

    #[test]
    fn ignores_non_numeric_as() {
        let ds = check("use std::fmt as f;\nlet d = x as &dyn Scheme;\nlet s = y as MyType;\n");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn waiver_on_same_line_suppresses() {
        let ds = check("let m = t as f64; // audit:allow(cast): minutes < 2^53, lossless\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn waiver_on_previous_comment_line_suppresses() {
        let ds =
            check("// audit:allow(cast): index bounded by n_variants <= 16\nlet i = v as f64;\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let ds = check("#[cfg(test)]\nmod tests {\n    fn t() { let x = 1u64 as f64; }\n}\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn scoped_to_core() {
        assert!(NoCast.scope().includes("pulse-core"));
        assert!(!NoCast.scope().includes("pulse-trace"));
    }
}

//! `unwrap`: no `.unwrap()` / `.expect(` / `panic!(` in library code.
//!
//! The policy core and simulator are long-running library code driven by
//! untrusted traces; a stray `unwrap` turns a recoverable modelling error
//! into a process abort mid-campaign. `#[cfg(test)]` code is exempt, as are
//! `assert!`/`debug_assert!` (those state invariants, they do not swallow
//! error handling). Waive with `// audit:allow(unwrap): <why infallible>`.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct NoUnwrap;

/// `(needle, what, hint)` triples scanned per line.
const PATTERNS: &[(&str, &str, &str)] = &[
    (
        ".unwrap()",
        "found `.unwrap()` in library code",
        "propagate with `?`, handle the `None`/`Err` arm, or restructure so the value is infallible",
    ),
    (
        ".expect(",
        "found `.expect(...)` in library code",
        "return a typed error instead; if truly unreachable, restructure so the state cannot exist",
    ),
    (
        "panic!(",
        "found `panic!` in library code",
        "return a typed error (e.g. a `Result` constructor) instead of aborting",
    ),
];

impl Rule for NoUnwrap {
    fn name(&self) -> &'static str {
        "unwrap"
    }

    fn description(&self) -> &'static str {
        "no .unwrap()/.expect()/panic! in non-test code of the policy core and simulator"
    }

    fn scope(&self) -> Scope {
        Scope::Only(&["pulse-core", "pulse-sim"])
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, line) in file.masked_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] || file.is_waived(self.name(), lineno) {
                continue;
            }
            for &(needle, what, hint) in PATTERNS {
                for pos in match_indices(line, needle) {
                    // `panic!` must start a token: reject `dont_panic!` and
                    // doc/ident look-alikes (method patterns start with `.`,
                    // which is already a token boundary).
                    if needle.starts_with('p') && !token_start(line, pos) {
                        continue;
                    }
                    out.push(
                        Diagnostic::new(file.path.clone(), lineno, "unwrap", what).with_hint(hint),
                    );
                }
            }
        }
        out
    }
}

/// Byte offsets of every occurrence of `needle` in `line`.
fn match_indices(line: &str, needle: &str) -> Vec<usize> {
    line.match_indices(needle).map(|(p, _)| p).collect()
}

/// True when the character before byte `pos` cannot extend an identifier.
fn token_start(line: &str, pos: usize) -> bool {
    line[..pos]
        .chars()
        .next_back()
        .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(krate: &str, text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), krate, text);
        NoUnwrap.check(&f, &Context::default())
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let ds = check(
            "pulse-core",
            "let a = x.unwrap();\nlet b = y.expect(\"msg\");\npanic!(\"boom\");\n",
        );
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[0].line, 1);
        assert_eq!(ds[2].line, 3);
    }

    #[test]
    fn ignores_unwrap_or_family_and_expect_err() {
        let ds = check(
            "pulse-core",
            "let a = x.unwrap_or(0);\nlet b = x.unwrap_or_else(|| 1);\nlet c = r.expect_err(\"no\");\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn ignores_should_panic_attribute_and_asserts() {
        let ds = check(
            "pulse-core",
            "#[should_panic(expected = \"x\")]\nassert!(a > b);\ndebug_assert!(p <= hi);\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let ds = check(
            "pulse-core",
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let ds = check(
            "pulse-core",
            "let s = \".unwrap()\"; // .expect( in a comment\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn waiver_suppresses_with_justification() {
        let ds = check(
            "pulse-core",
            "// audit:allow(unwrap): validated two lines above\nlet a = x.unwrap();\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn out_of_scope_crate_is_skipped_by_scope() {
        assert!(!NoUnwrap.scope().includes("pulse-experiments"));
        assert!(NoUnwrap.scope().includes("pulse-core"));
    }
}

//! The rule registry: one module per rule.
//!
//! Adding a rule is three steps (see DESIGN.md "Static analysis &
//! invariants"): create a module implementing [`Rule`], add it to
//! [`registry`] (and bump [`RULES_VERSION`] so cached diagnostics are
//! recomputed), and cover it with good/bad fixture tests. Waivers use
//! `// audit:allow(<rule-name>): <justification>` on the offending line or
//! on a comment line directly above it; the framework rejects waivers with
//! an empty justification.
//!
//! Rules come in two families sharing one trait:
//! - **text rules** (v1) scan the masked line view of a single file;
//! - **semantic rules** (v2) consume the token stream and item index in the
//!   [`Context`] — bindings classified by type, function signatures, spawn
//!   sites, and cross-file facts like "which functions return a `HashMap`".

pub mod atomic_ordering;
pub mod float_cmp;
pub mod float_reduce;
pub mod hashmap_iter;
pub mod ledger_sweep;
pub mod no_cast;
pub mod no_unwrap;
pub mod obs_event_coverage;
pub mod obs_sim_time;
pub mod probability_usage;
pub mod pub_docs;
pub mod shared_mut_scope;
pub mod unseeded_rng;
pub mod variant_sentinel;
pub mod wall_clock;

use crate::diagnostics::Diagnostic;
pub use crate::index::Context;
use crate::source::SourceFile;

/// Version of the rule set. Bump whenever a rule is added, removed, or its
/// behavior changes: the incremental cache stores this in its header and
/// discards itself wholesale on mismatch, so stale diagnostics can never
/// survive a rule change.
pub const RULES_VERSION: u32 = 4;

/// Which crates a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every first-party workspace crate.
    AllCrates,
    /// Only the named crates.
    Only(&'static [&'static str]),
}

impl Scope {
    /// Does the scope include `krate`?
    pub fn includes(&self, krate: &str) -> bool {
        match self {
            Scope::AllCrates => true,
            Scope::Only(names) => names.contains(&krate),
        }
    }
}

/// A single static-analysis rule.
pub trait Rule {
    /// Stable rule name, used in diagnostics and waiver comments.
    fn name(&self) -> &'static str;

    /// One-line description for `--list-rules` and the SARIF rule table.
    fn description(&self) -> &'static str;

    /// Crates the rule applies to.
    fn scope(&self) -> Scope;

    /// Scan one file; return all violations. Text rules ignore `ctx`;
    /// semantic rules read the file's token index and the cross-file facts
    /// from it.
    fn check(&self, file: &SourceFile, ctx: &Context) -> Vec<Diagnostic>;
}

/// All registered rules, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_unwrap::NoUnwrap),
        Box::new(no_cast::NoCast),
        Box::new(float_cmp::FloatCmp),
        Box::new(wall_clock::WallClock),
        Box::new(obs_sim_time::ObsSimTime),
        Box::new(obs_event_coverage::ObsEventCoverage),
        Box::new(pub_docs::PubDocs),
        Box::new(probability_usage::ProbabilityUsage),
        Box::new(variant_sentinel::VariantSentinel),
        Box::new(ledger_sweep::LedgerSweep),
        Box::new(hashmap_iter::HashMapIterOrder),
        Box::new(unseeded_rng::UnseededRng),
        Box::new(float_reduce::FloatReduceOrder),
        Box::new(atomic_ordering::AtomicOrdering),
        Box::new(shared_mut_scope::SharedMutInScope),
    ]
}

/// Map a rule name back to its registry `&'static str` (plus the framework
/// `waiver` pseudo-rule). The incremental cache uses this to rehydrate
/// diagnostics; an unknown name means the rule set changed and the entry is
/// dropped.
pub fn static_name(name: &str) -> Option<&'static str> {
    if name == "waiver" {
        return Some("waiver");
    }
    registry()
        .into_iter()
        .map(|r| r.name())
        .find(|n| *n == name)
}

/// Framework-level check shared by all rules: every waiver present in the
/// file must name a registered rule and carry a non-empty justification.
pub fn check_waiver_hygiene(file: &SourceFile, rule_names: &[&str]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for w in file.all_waivers() {
        if !rule_names.contains(&w.rule.as_str()) {
            out.push(Diagnostic::new(
                file.path.clone(),
                w.line,
                "waiver",
                format!("waiver names unknown rule `{}`", w.rule),
            ));
        }
        if w.justification.is_empty() {
            out.push(
                Diagnostic::new(
                    file.path.clone(),
                    w.line,
                    "waiver",
                    format!(
                        "waiver for `{}` has no justification — write \
                         `// audit:allow({}): <why this is sound>`",
                        w.rule, w.rule
                    ),
                )
                .with_hint("append `: <justification>` to the waiver comment".to_owned()),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), "pulse-core", text)
    }

    #[test]
    fn registry_names_are_unique_and_kebab() {
        let rules = registry();
        assert!(rules.len() >= 14, "the audit ships at least 14 rules");
        let mut names: Vec<_> = rules.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate rule names");
        for name in names {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{name} is not kebab-case"
            );
        }
    }

    #[test]
    fn static_name_roundtrips_registry_and_waiver() {
        for rule in registry() {
            assert_eq!(static_name(rule.name()), Some(rule.name()));
        }
        assert_eq!(static_name("waiver"), Some("waiver"));
        assert_eq!(static_name("no-such-rule"), None);
    }

    #[test]
    fn scope_only_filters() {
        let s = Scope::Only(&["pulse-core"]);
        assert!(s.includes("pulse-core"));
        assert!(!s.includes("pulse-sim"));
        assert!(Scope::AllCrates.includes("anything"));
    }

    #[test]
    fn unjustified_waiver_is_flagged() {
        let f = file("// audit:allow(cast)\nlet x = 1u32 as f64;\n");
        let ds = check_waiver_hygiene(&f, &["cast"]);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("no justification"));
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let f = file("// audit:allow(made-up): because\nlet x = 1;\n");
        let ds = check_waiver_hygiene(&f, &["cast"]);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("unknown rule"));
    }

    #[test]
    fn justified_known_waiver_passes() {
        let f =
            file("// audit:allow(cast): bounded by the 10-minute window\nlet x = 1u32 as f64;\n");
        assert!(check_waiver_hygiene(&f, &["cast"]).is_empty());
    }
}

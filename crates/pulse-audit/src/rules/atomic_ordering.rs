//! `atomic-ordering`: no `Ordering::Relaxed` on cross-thread control flags.
//!
//! `Relaxed` guarantees atomicity but no inter-thread ordering: a worker
//! that observes `abort == true` via a relaxed load may still see *earlier*
//! writes (the failure message, partial results) un-published. The
//! many-run harness's sibling-abort `AtomicBool` is exactly this shape —
//! the failing worker stores its diagnostic context and then raises the
//! flag, and siblings must observe both in that order, which takes a
//! `Release` store paired with `Acquire` loads.
//!
//! The rule uses the item index to find bindings, statics and struct fields
//! of type `AtomicBool` (boolean atomics are control flags by construction
//! — there is nothing to "count") and fires on any `load`/`store`/`swap`/
//! `compare_exchange*`/`fetch_*` on them whose argument list names
//! `Ordering::Relaxed` (or a `use`-shortened `Relaxed`). Numeric atomics
//! used as counters (`fetch_add(1, Relaxed)`) are deliberately out of
//! scope: relaxed counting is correct and idiomatic.

use crate::diagnostics::Diagnostic;
use crate::index::{BindKind, Context};
use crate::lex::{matches_seq, matching_close, TokenKind};
use crate::rules::{Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct AtomicOrdering;

/// Atomic methods that take an `Ordering` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
];

impl Rule for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn description(&self) -> &'static str {
        "no Ordering::Relaxed on AtomicBool control flags — use Acquire loads / Release stores"
    }

    fn scope(&self) -> Scope {
        Scope::AllCrates
    }

    fn check(&self, file: &SourceFile, ctx: &Context) -> Vec<Diagnostic> {
        let Some(ix) = ctx.index_of(&file.path) else {
            return Vec::new();
        };
        let tokens = &ix.tokens;
        let mut out = Vec::new();
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            if !(tokens.get(i + 1).is_some_and(|t| t.is_punct("."))
                && tokens
                    .get(i + 2)
                    .is_some_and(|t| ATOMIC_METHODS.contains(&t.text.as_str()))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct("(")))
            {
                continue;
            }
            if !ix
                .binding(&t.text, i)
                .is_some_and(|b| b.kind == BindKind::AtomicBool)
            {
                continue;
            }
            let Some(close) = matching_close(tokens, i + 3) else {
                continue;
            };
            let relaxed = (i + 4..close).any(|j| {
                matches_seq(tokens, j, &["Ordering", "::", "Relaxed"])
                    || (tokens[j].is_ident("Relaxed")
                        && !tokens
                            .get(j.wrapping_sub(1))
                            .is_some_and(|t| t.is_punct("::")))
            });
            if !relaxed {
                continue;
            }
            let lineno = t.line;
            if file.in_test[lineno - 1] || file.is_waived(self.name(), lineno) {
                continue;
            }
            let method = &tokens[i + 2].text;
            out.push(
                Diagnostic::new(
                    file.path.clone(),
                    lineno,
                    "atomic-ordering",
                    format!(
                        "`Ordering::Relaxed` on `{}.{}` — `{}` is an AtomicBool control \
                         flag, and relaxed ordering publishes no prior writes to its observers",
                        t.text, method, t.text
                    ),
                )
                .with_hint(
                    "store with Ordering::Release and load with Ordering::Acquire (or use \
                     AcqRel for read-modify-write)",
                ),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), "pulse-sim", text);
        let ctx = Context::of(std::slice::from_ref(&f));
        AtomicOrdering.check(&f, &ctx)
    }

    #[test]
    fn flags_relaxed_load_and_store_on_atomic_bool() {
        let ds = check(
            "fn f() {\n\
             let abort = AtomicBool::new(false);\n\
             if abort.load(Ordering::Relaxed) { return; }\n\
             abort.store(true, Ordering::Relaxed);\n\
             }\n",
        );
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert_eq!(ds[0].line, 3);
        assert_eq!(ds[1].line, 4);
        assert!(ds[0].message.contains("abort.load"));
    }

    #[test]
    fn acquire_release_is_clean() {
        let ds = check(
            "fn f() {\n\
             let abort = AtomicBool::new(false);\n\
             if abort.load(Ordering::Acquire) { return; }\n\
             abort.store(true, Ordering::Release);\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn relaxed_counter_is_allowed() {
        let ds = check(
            "fn f() {\n\
             let next = AtomicUsize::new(0);\n\
             let r = next.fetch_add(1, Ordering::Relaxed);\n\
             let n = next.load(Ordering::Relaxed);\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn struct_field_flag_is_tracked() {
        let ds = check(
            "struct W { abort: AtomicBool }\n\
             impl W { fn hot(&self) -> bool { self.abort.load(Ordering::Relaxed) } }\n",
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].line, 2);
    }

    #[test]
    fn use_shortened_relaxed_is_caught() {
        let ds = check(
            "fn f() {\n\
             let stop = AtomicBool::new(false);\n\
             stop.store(true, Relaxed);\n\
             }\n",
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
    }

    #[test]
    fn seqcst_relaxed_path_in_other_enums_is_not_confused() {
        // `Other::Relaxed` (a different enum) must not fire: the pattern
        // requires either the `Ordering::` path or a bare `Relaxed`.
        let ds = check(
            "fn f() {\n\
             let stop = AtomicBool::new(false);\n\
             stop.store(true, Ordering::SeqCst);\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn test_code_and_waivers_exempt() {
        let ds = check(
            "#[cfg(test)]\nmod t { fn f() {\n\
             let stop = AtomicBool::new(false);\n\
             stop.store(true, Ordering::Relaxed);\n} }\n",
        );
        assert!(ds.is_empty());
        let ds = check(
            "fn f() {\n\
             let stop = AtomicBool::new(false);\n\
             // audit:allow(atomic-ordering): flag is advisory, no data published\n\
             stop.store(true, Ordering::Relaxed);\n\
             }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }
}

//! `wall-clock`: no ambient time or entropy in deterministic paths.
//!
//! pulse-core and pulse-sim must replay a trace bit-identically given the
//! same seed — that is what makes the paper's 1000-run methodology and the
//! test suite meaningful. Ambient clocks (`Instant::now`, `SystemTime::now`)
//! and ambient entropy (`thread_rng`, `from_entropy`, `rand::random`) break
//! that. Time is the trace's minute counter; randomness is a seeded RNG
//! passed in by the caller.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct WallClock;

const TOKENS: &[(&str, &str)] = &[
    (
        "Instant::now",
        "ambient clock `Instant::now` in a deterministic path",
    ),
    (
        "SystemTime::now",
        "ambient clock `SystemTime::now` in a deterministic path",
    ),
    (
        "thread_rng",
        "ambient entropy `thread_rng` in a deterministic path",
    ),
    (
        "from_entropy",
        "ambient entropy `from_entropy` in a deterministic path",
    ),
    (
        "rand::random",
        "ambient entropy `rand::random` in a deterministic path",
    ),
];

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn description(&self) -> &'static str {
        "no Instant::now/SystemTime::now/thread_rng/from_entropy in pulse-core or pulse-sim"
    }

    fn scope(&self) -> Scope {
        Scope::Only(&["pulse-core", "pulse-sim"])
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, line) in file.masked_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] || file.is_waived(self.name(), lineno) {
                continue;
            }
            for &(tok, what) in TOKENS {
                if line.contains(tok) {
                    out.push(
                        Diagnostic::new(file.path.clone(), lineno, "wall-clock", what).with_hint(
                            "take the minute counter or a seeded RNG as an explicit parameter",
                        ),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(krate: &str, text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), krate, text);
        WallClock.check(&f, &Context::default())
    }

    #[test]
    fn flags_clock_and_entropy_tokens() {
        let ds = check(
            "pulse-sim",
            "let t = std::time::Instant::now();\nlet mut r = rand::thread_rng();\n",
        );
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn seeded_rng_is_fine() {
        let ds = check("pulse-sim", "let mut r = SmallRng::seed_from_u64(seed);\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let ds = check(
            "pulse-core",
            "#[cfg(test)]\nmod t { fn f() { let t = Instant::now(); } }\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn experiments_crate_out_of_scope() {
        assert!(!WallClock.scope().includes("pulse-experiments"));
    }
}

//! `obs-event-coverage`: every `ObsEvent` kind must round-trip the JSON
//! schema.
//!
//! `ObsEvent::to_json` is a match on `self`, so the compiler forces a
//! serializer arm for every variant — but `from_json` dispatches on the
//! kind *string*, which the compiler cannot tie back to the enum. Adding a
//! variant (say, a new fleet lifecycle event) with a `kind()` arm and a
//! serializer but no parser arm compiles cleanly and silently breaks the
//! round-trip contract the JSONL schema check relies on. This rule closes
//! that gap textually: in any file declaring both `kind()` and
//! `from_json`, the set of kind strings returned by `kind()` must exactly
//! match the set of kind strings `from_json` accepts. (The behavioral half
//! — field-level fidelity — is pinned by the exemplar round-trip test in
//! `pulse-obs`.)
//!
//! String literals are masked out of the view ordinary rules see, so this
//! rule scans the raw lines.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct ObsEventCoverage;

/// Extract the string literal starting right after `start` in `line`
/// (which must point at the opening quote's content).
fn quoted(line: &str, after: &str) -> Option<String> {
    let i = line.find(after)? + after.len();
    let rest = &line[i..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

impl Rule for ObsEventCoverage {
    fn name(&self) -> &'static str {
        "obs-event-coverage"
    }

    fn description(&self) -> &'static str {
        "every ObsEvent kind() string has a matching from_json arm (and vice versa)"
    }

    fn scope(&self) -> Scope {
        Scope::Only(&["pulse-obs"])
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        let text = file.raw_lines.join("\n");
        if !(text.contains("fn kind(") && text.contains("fn from_json(")) {
            return Vec::new();
        }

        // Kind strings declared by `kind()`: `ObsEvent::Name { .. } => "kind"`.
        let mut declared: Vec<(String, usize)> = Vec::new();
        // Kind strings `from_json` dispatches on: `"kind" => Ok(ObsEvent::`.
        let mut parsed: Vec<(String, usize)> = Vec::new();
        for (i, line) in file.raw_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] {
                continue;
            }
            let t = line.trim_start();
            if t.starts_with("ObsEvent::") && t.contains("=> \"") {
                if let Some(kind) = quoted(t, "=> \"") {
                    declared.push((kind, lineno));
                }
            } else if t.starts_with('"') && t.contains("=> Ok(ObsEvent::") {
                if let Some(kind) = quoted(t, "\"") {
                    parsed.push((kind, lineno));
                }
            }
        }

        let mut out = Vec::new();
        for (kind, lineno) in &declared {
            if file.is_waived(self.name(), *lineno) {
                continue;
            }
            if !parsed.iter().any(|(k, _)| k == kind) {
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        *lineno,
                        self.name(),
                        format!(
                            "ObsEvent kind \"{kind}\" has no from_json arm — it cannot round-trip"
                        ),
                    )
                    .with_hint("add a parser arm (and an exemplar) for the new event kind"),
                );
            }
        }
        for (kind, lineno) in &parsed {
            if file.is_waived(self.name(), *lineno) {
                continue;
            }
            if !declared.iter().any(|(k, _)| k == kind) {
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        *lineno,
                        self.name(),
                        format!("from_json accepts kind \"{kind}\" that kind() never emits"),
                    )
                    .with_hint("remove the dead parser arm or add the missing kind() arm"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(krate: &str, text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), krate, text);
        ObsEventCoverage.check(&f, &Context::default())
    }

    const BALANCED: &str = r#"
impl ObsEvent {
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::Bill { .. } => "bill",
            ObsEvent::NodeDown { .. } => "node_down",
        }
    }
    pub fn from_json(line: &str) -> Result<Self, ParseError> {
        match fields.str("type")? {
            "bill" => Ok(ObsEvent::Bill { minute: 0 }),
            "node_down" => Ok(ObsEvent::NodeDown { minute: 0 }),
            other => Err(ParseError::unknown(other)),
        }
    }
}
"#;

    #[test]
    fn balanced_schema_is_clean() {
        assert!(check("pulse-obs", BALANCED).is_empty());
    }

    #[test]
    fn missing_parser_arm_is_flagged_at_the_kind_arm() {
        let text = BALANCED.replace("\"node_down\" => Ok(ObsEvent::NodeDown { minute: 0 }),", "");
        let ds = check("pulse-obs", &text);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("\"node_down\""));
        assert!(ds[0].message.contains("no from_json arm"));
    }

    #[test]
    fn dead_parser_arm_is_flagged() {
        let text = BALANCED.replace("ObsEvent::NodeDown { .. } => \"node_down\",", "");
        let ds = check("pulse-obs", &text);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("never emits"));
    }

    #[test]
    fn files_without_the_schema_pair_are_ignored() {
        // A file that merely *uses* events (no kind()/from_json decl).
        let ds = check(
            "pulse-obs",
            "fn f() { let k = ev.kind(); sink.record(&ObsEvent::Bill { minute: 0 }); }\n",
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn other_crates_out_of_scope() {
        assert!(!ObsEventCoverage.scope().includes("pulse-runtime"));
        assert!(ObsEventCoverage.scope().includes("pulse-obs"));
    }
}

//! `ledger-sweep`: no full-function ledger sweeps outside the ledger module.
//!
//! The `ScheduleLedger` maintains its per-minute totals and alive sets
//! incrementally (delta updates plus a dirty-function set); the engines'
//! per-minute stages are expected to consume `fill_minute_footprint` /
//! `patch_minute_footprint` / `metered_kam_mb`, which touch only the
//! functions that changed. A hand-rolled `for f in 0..ledger.n_functions()`
//! (or `0..schedules.len()`) loop reintroduces the `O(n)`-per-minute cost
//! this refactor removed — at fleet scale (tens of thousands of functions)
//! that is the difference between interactive and unusable. This rule flags,
//! outside `crates/pulse-core/src/schedule.rs` (the module that owns the
//! sweep):
//!
//! * `0..` ranges bounded by a ledger's `n_functions()`;
//! * `0..` ranges bounded by `schedules.len()`.
//!
//! Sweeps that are genuinely full-fleet by contract (e.g. the checkpoint
//! codecs, which must serialize every function) carry waivers naming this
//! rule.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;
use std::path::Path;

/// See module docs.
pub struct LedgerSweep;

/// The module that owns the full sweep and may spell it freely.
const LEDGER_MODULE: &str = "crates/pulse-core/src/schedule.rs";

impl Rule for LedgerSweep {
    fn name(&self) -> &'static str {
        "ledger-sweep"
    }

    fn description(&self) -> &'static str {
        "no 0..n_functions()/0..schedules.len() full-ledger sweeps outside pulse-core's ledger module"
    }

    fn scope(&self) -> Scope {
        Scope::AllCrates
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        if file.path == Path::new(LEDGER_MODULE) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, line) in file.masked_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] || file.is_waived(self.name(), lineno) {
                continue;
            }
            if !line.contains("0..") {
                continue;
            }
            let ledger_bound = line.contains(".n_functions()")
                && (line.contains("ledger") || line.contains("Ledger"));
            let schedules_bound = line.contains("schedules.len()");
            if ledger_bound || schedules_bound {
                out.push(
                    Diagnostic::new(
                        file.path.clone(),
                        lineno,
                        "ledger-sweep",
                        "full-function ledger sweep outside the ledger module",
                    )
                    .with_hint(
                        "use the incremental API (fill_minute_footprint / \
                         patch_minute_footprint / metered_kam_mb / dirty_functions) so only \
                         changed functions are touched; waive if the sweep is full-fleet by \
                         contract (e.g. a checkpoint codec)",
                    ),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check_at(path: &str, text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from(path), "pulse-sim", text);
        LedgerSweep.check(&f, &Context::default())
    }

    fn check(text: &str) -> Vec<Diagnostic> {
        check_at("crates/pulse-sim/src/engine.rs", text)
    }

    #[test]
    fn flags_n_functions_sweep() {
        let ds = check("for f in 0..self.ledger.n_functions() {\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("full-function"));
    }

    #[test]
    fn flags_schedules_len_sweep() {
        let ds = check("let totals: Vec<f64> = (0..schedules.len()).map(total_of).collect();\n");
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn non_ledger_ranges_are_fine() {
        // Family/trace/node sweeps are not ledger sweeps.
        let ds = check(
            "for f in 0..self.rt.families.len() {}\n\
             let busier = (0..self.trace.n_functions()).count();\n\
             for k in 0..nodes.len() {}\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn ledger_module_is_exempt() {
        let f = SourceFile::parse(
            PathBuf::from("crates/pulse-core/src/schedule.rs"),
            "pulse-core",
            "for f in 0..self.ledger.n_functions() {}\nfor f in 0..schedules.len() {}\n",
        );
        assert!(LedgerSweep.check(&f, &Context::default()).is_empty());
    }

    #[test]
    fn waiver_and_test_code_are_exempt() {
        let ds = check(
            "// audit:allow(ledger-sweep): checkpoint codec serializes every function\n\
             for f in 0..ledger.n_functions() {\n\
             #[cfg(test)]\nmod t { fn f() { let _ = 0..ledger.n_functions(); } }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let ds = check(
            "// the old loop was `for f in 0..schedules.len()`\n\
             let s = \"0..ledger.n_functions()\";\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }
}

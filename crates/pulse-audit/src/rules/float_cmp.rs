//! `float-cmp`: no `==`/`!=` against float literals in the policy core.
//!
//! Probabilities and memory values are `f64`s produced by chains of
//! arithmetic; exact equality against a literal (`p == 0.0`, `m != 1.0`)
//! silently stops matching once rounding enters the chain. Use a domain
//! predicate (e.g. `Probability::is_zero`), an epsilon comparison, or an
//! ordering test instead. This textual rule catches literal comparisons;
//! the `clippy::float_cmp` workspace lint covers typed ones.

use crate::diagnostics::Diagnostic;
use crate::rules::{Context, Rule, Scope};
use crate::source::SourceFile;

/// See module docs.
pub struct FloatCmp;

impl Rule for FloatCmp {
    fn name(&self) -> &'static str {
        "float-cmp"
    }

    fn description(&self) -> &'static str {
        "no ==/!= against float literals on probability/memory values (core + sim)"
    }

    fn scope(&self) -> Scope {
        Scope::Only(&["pulse-core", "pulse-sim"])
    }

    fn check(&self, file: &SourceFile, _ctx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, line) in file.masked_lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test[i] || file.is_waived(self.name(), lineno) {
                continue;
            }
            for op in ["==", "!="] {
                for (pos, _) in line.match_indices(op) {
                    if !standalone_operator(line, pos, op) {
                        continue;
                    }
                    let lhs = token_before(&line[..pos]);
                    let rhs = token_after(&line[pos + op.len()..]);
                    if is_float_literal(&lhs) || is_float_literal(&rhs) {
                        out.push(
                            Diagnostic::new(
                                file.path.clone(),
                                lineno,
                                "float-cmp",
                                format!("float `{op}` comparison against a literal"),
                            )
                            .with_hint(
                                "use a domain predicate (Probability::is_zero), an epsilon \
                                 comparison, or an ordering test",
                            ),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Reject `==`/`!=` occurrences that are part of `<=`, `>=`, `=>`, `===`-like
/// neighbourhoods or compound-assignment operators.
fn standalone_operator(line: &str, pos: usize, op: &str) -> bool {
    const GLUE: &[char] = &['=', '!', '<', '>', '+', '-', '*', '/', '%', '&', '|', '^'];
    let before_ok = line[..pos]
        .chars()
        .next_back()
        .is_none_or(|c| !GLUE.contains(&c));
    let after_ok = line[pos + op.len()..]
        .chars()
        .next()
        .is_none_or(|c| c != '=');
    before_ok && after_ok
}

/// Last expression-ish token before the operator.
fn token_before(s: &str) -> String {
    s.trim_end()
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.'))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

/// First expression-ish token after the operator.
fn token_after(s: &str) -> String {
    let t = s.trim_start();
    let neg = t.starts_with('-');
    let body: String = t
        .chars()
        .skip(usize::from(neg))
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.'))
        .collect();
    if neg {
        format!("-{body}")
    } else {
        body
    }
}

/// `0.0`, `-1.5`, `2.0f64`, `1.0e-3` — digits with a decimal point, optional
/// sign/suffix/exponent.
fn is_float_literal(tok: &str) -> bool {
    let t = tok.strip_prefix('-').unwrap_or(tok);
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .unwrap_or(t);
    if !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    t.contains('.')
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from("x.rs"), "pulse-core", text);
        FloatCmp.check(&f, &Context::default())
    }

    #[test]
    fn flags_literal_on_either_side() {
        let ds = check("if p == 0.0 { }\nif 1.0 != q { }\nif m == 2.0f64 { }\n");
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn ignores_int_and_ident_comparisons() {
        let ds = check("if n == 0 { }\nif a == b { }\nif v != other.v { }\n");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn ignores_le_ge_and_match_arrows() {
        let ds = check("if p <= 0.0 { }\nif p >= 1.0 { }\nlet f = |x| match x { _ => 0.0 };\n");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn negative_literal_is_caught() {
        let ds = check("if delta == -1.0 { }\n");
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn test_code_and_waivers_exempt() {
        let ds = check(
            "#[cfg(test)]\nmod t { fn f() { assert!(p == 0.0); } }\n\
             // audit:allow(float-cmp): exact-zero is the only invalid divisor\n\
             if baseline == 0.0 { }\n",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }
}

//! A hand-rolled, dependency-free Rust lexer.
//!
//! Tokenizes the *masked* view of a source file (see [`crate::source`]):
//! string/char literal contents and comments are already blanked, so the
//! lexer only has to split identifiers, numbers, lifetimes and punctuation,
//! and every token carries its 1-based source line. The token stream is the
//! foundation the item index ([`crate::index`]) and the semantic rules are
//! built on — unlike the per-line text scans of the v1 rules, token
//! sequences can be matched across line breaks and brace-matched into item
//! spans.
//!
//! The only fused multi-character token is `::` (path separator), because
//! nearly every semantic pattern (`Ordering::Relaxed`,
//! `SmallRng::seed_from_u64`, `HashMap::new`) pivots on it. All other
//! punctuation is a single character; compound operators like `+=` or `==`
//! are matched as adjacent single-character tokens.

use crate::source::SourceFile;

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `seed_from_u64`, ...).
    Ident,
    /// Numeric literal (`0`, `1.5e-3`, `0xff`, `1_000`).
    Num,
    /// Lifetime (`'a`, `'static`) — char literals are blanked by masking,
    /// so a surviving quote always introduces a lifetime.
    Lifetime,
    /// Punctuation: one character, or the fused `::` path separator.
    Punct,
}

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Tokenize the masked lines of `file`.
pub fn tokenize(file: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (i, line) in file.masked_lines.iter().enumerate() {
        lex_line(line, i + 1, &mut out);
    }
    out
}

/// Tokenize one masked line, appending to `out`.
fn lex_line(line: &str, lineno: usize, out: &mut Vec<Token>) {
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line: lineno,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < chars.len() {
                let d = chars[i];
                if d.is_alphanumeric() || d == '_' {
                    i += 1;
                } else if d == '.' {
                    // `0..n` is a range, not a float: stop before `..`.
                    if chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                } else if (d == '+' || d == '-')
                    && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))
                {
                    // Exponent sign inside `1e-3`.
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Token {
                kind: TokenKind::Num,
                text: chars[start..i].iter().collect(),
                line: lineno,
            });
            continue;
        }
        if c == '\'' {
            // Masking blanks char literal contents, so this is a lifetime.
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Lifetime,
                text: chars[start..i].iter().collect(),
                line: lineno,
            });
            continue;
        }
        if c == ':' && chars.get(i + 1) == Some(&':') {
            out.push(Token {
                kind: TokenKind::Punct,
                text: "::".to_owned(),
                line: lineno,
            });
            i += 2;
            continue;
        }
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line: lineno,
        });
        i += 1;
    }
}

/// True when `tokens[at..]` starts with the given texts (kind-agnostic,
/// text-exact) — the workhorse for matching paths like
/// `["Ordering", "::", "Relaxed"]`.
pub fn matches_seq(tokens: &[Token], at: usize, texts: &[&str]) -> bool {
    texts.len() <= tokens.len().saturating_sub(at)
        && texts
            .iter()
            .enumerate()
            .all(|(k, t)| tokens[at + k].text == *t)
}

/// Index of the delimiter matching the opener at `open` (`(`/`)`, `{`/`}`,
/// `[`/`]`), tracking all three delimiter families so nested mixed groups
/// stay balanced. Returns `None` when unbalanced or `open` is no opener.
pub fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let close = match tokens.get(open)?.text.as_str() {
        "(" => ")",
        "{" => "}",
        "[" => "]",
        _ => return None,
    };
    let opener = tokens[open].text.clone();
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        if t.text == opener {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Span `[start, end)` of the statement containing token `at`: walks
/// backwards and forwards to the nearest `;`, `{` or `}` at the same
/// nesting level. Used by rules that reason about "the same statement"
/// (e.g. an iteration and the sort that fixes its order).
pub fn statement_span(tokens: &[Token], at: usize) -> (usize, usize) {
    let mut start = at;
    let mut depth = 0i64;
    while start > 0 {
        let t = &tokens[start - 1];
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" | "{" | "}" if depth == 0 => break,
            _ => {}
        }
        start -= 1;
    }
    let mut end = at;
    let mut depth = 0i64;
    while end < tokens.len() {
        let t = &tokens[end];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" | "{" | "}" if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lex(text: &str) -> Vec<Token> {
        tokenize(&SourceFile::parse(PathBuf::from("x.rs"), "demo", text))
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let ts = lex("let x2 = 1_000 + 0.5e-3;\n");
        let texts: Vec<&str> = ts.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x2", "=", "1_000", "+", "0.5e-3", ";"]);
        assert_eq!(ts[1].kind, TokenKind::Ident);
        assert_eq!(ts[3].kind, TokenKind::Num);
        assert_eq!(ts[5].kind, TokenKind::Num);
    }

    #[test]
    fn path_separator_is_fused() {
        let ts = lex("Ordering::Relaxed\n");
        let texts: Vec<&str> = ts.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["Ordering", "::", "Relaxed"]);
        assert!(ts[1].is_punct("::"));
        assert!(matches_seq(&ts, 0, &["Ordering", "::", "Relaxed"]));
    }

    #[test]
    fn lines_are_tracked_across_breaks() {
        let ts = lex("fn f()\n{ x }\n");
        assert_eq!(ts[0].line, 1);
        let brace = ts.iter().position(|t| t.is_punct("{")).expect("brace");
        assert_eq!(ts[brace].line, 2);
    }

    #[test]
    fn strings_and_comments_produce_no_tokens() {
        let ts = lex("let s = \"HashMap in a string\"; // HashMap in a comment\n");
        assert!(!ts.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let ts = lex("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(ts
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(!ts.iter().any(|t| t.text == "'x'"));
    }

    #[test]
    fn range_is_not_a_float() {
        let ts = lex("for i in 0..n {}\n");
        let texts: Vec<&str> = ts.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["for", "i", "in", "0", ".", ".", "n", "{", "}"]);
    }

    #[test]
    fn matching_close_balances_nested_mixed_delims() {
        let ts = lex("f(a, (b + g[1]), c)\n");
        let open = ts.iter().position(|t| t.is_punct("(")).expect("open");
        let close = matching_close(&ts, open).expect("balanced");
        assert_eq!(close, ts.len() - 1);
        assert_eq!(matching_close(&ts, 0), None, "ident is no opener");
    }

    #[test]
    fn statement_span_stops_at_semicolons_and_braces() {
        let ts = lex("let a = 1; let b = m.values().sum(); let c = 2;\n");
        let sum = ts.iter().position(|t| t.is_ident("sum")).expect("sum");
        let (s, e) = statement_span(&ts, sum);
        let texts: Vec<&str> = ts[s..e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "b", "=", "m", ".", "values", "(", ")", ".", "sum", "(", ")"]
        );
    }

    #[test]
    fn statement_span_ignores_semicolons_inside_parens() {
        let ts = lex("g([0; 4]).iter()\n");
        let it = ts.iter().position(|t| t.is_ident("iter")).expect("iter");
        let (s, _) = statement_span(&ts, it);
        assert_eq!(s, 0, "the `;` inside `[0; 4]` must not split the chain");
    }
}

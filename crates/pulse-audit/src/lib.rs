//! PULSE-specific static analysis.
//!
//! `pulse-audit` walks every first-party `.rs` file in the workspace and
//! enforces the invariant-hygiene rules the PULSE policy core depends on
//! (see `rules` for the registry). It is deliberately dependency-free so it
//! runs in offline CI and can never be broken by the code it checks.
//!
//! Library layout (the pipeline runs top to bottom; see DESIGN.md §13):
//! - [`walk`] — workspace file discovery (raw text, crate attribution);
//! - [`source`] — masked-text model of one file (strings/comments blanked,
//!   `#[cfg(test)]` spans and `audit:allow` waivers resolved);
//! - [`lex`] — token stream over the masked text;
//! - [`index`] — brace-matched item index (functions, typed bindings, spawn
//!   sites) and the cross-file fact table;
//! - [`rules`] — the rule trait, registry and one module per rule;
//! - [`cache`] — incremental per-file diagnostics cache (content
//!   fingerprints, layered invalidation);
//! - [`diagnostics`] / [`output`] — the diagnostic type and its text / JSON
//!   / SARIF renderings;
//! - [`baseline`] — the committed CI ratchet (fail only on NEW findings).

pub mod baseline;
pub mod cache;
pub mod diagnostics;
pub mod index;
pub mod lex;
pub mod output;
pub mod rules;
pub mod source;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use cache::{fnv1a, Cache, CacheEntry};
use diagnostics::Diagnostic;
use index::{Context, CrossFacts, FileIndex};
use source::SourceFile;

/// Result of auditing a set of files.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Files whose diagnostics were served from the incremental cache.
    pub cache_hits: usize,
    /// Files that were (re-)lexed, indexed and rule-checked this run.
    pub cache_misses: usize,
}

impl AuditOutcome {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Tuning knobs for a workspace audit.
#[derive(Debug, Clone, Default)]
pub struct AuditOptions {
    /// Incremental cache file; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Worker threads for parsing and rule runs; `0` picks a default from
    /// the machine's available parallelism.
    pub jobs: usize,
}

/// Check one parsed file against every in-scope rule (plus the framework
/// waiver-hygiene check); diagnostics come back sorted by (line, rule).
fn check_file(file: &SourceFile, ctx: &Context) -> Vec<Diagnostic> {
    let rules = rules::registry();
    let rule_names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
    let mut out = rules::check_waiver_hygiene(file, &rule_names);
    for rule in &rules {
        if rule.scope().includes(&file.krate) {
            out.extend(rule.check(file, ctx));
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Run every registered rule over `files` (in-memory entry point; the CLI
/// and tests share it). No cache is involved: every file counts as a miss.
pub fn audit_files(files: &[SourceFile]) -> AuditOutcome {
    let ctx = Context::of(files);
    let mut diagnostics = Vec::new();
    for file in files {
        diagnostics.extend(check_file(file, &ctx));
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    AuditOutcome {
        files_scanned: files.len(),
        diagnostics,
        cache_hits: 0,
        cache_misses: files.len(),
    }
}

/// Walk the workspace rooted at `root` and audit every in-scope file,
/// without a cache (tests and one-shot callers).
pub fn audit_workspace(root: &Path) -> io::Result<AuditOutcome> {
    audit_workspace_with(root, &AuditOptions::default())
}

/// Walk the workspace rooted at `root` and audit every in-scope file, with
/// incremental caching and parallel parsing per `opts`.
///
/// The run is phased so cached files cost one read + one hash:
///
/// 1. **discover + fingerprint** every file (serial, I/O bound);
/// 2. **parse + index** files whose fingerprint misses the cache (parallel);
///    fingerprint hits contribute their cross-file facts *from the cache*
///    without being parsed;
/// 3. **digest** the workspace-wide facts; a cached entry is valid only if
///    its fingerprint **and** digest both match (editing one file only
///    invalidates others when the cross-file fact set actually changed);
/// 4. **rule-check** invalid files (parallel; fingerprint-hit/digest-miss
///    files get a second parse wave first), reuse cached diagnostics for
///    valid ones;
/// 5. **store** the updated cache.
pub fn audit_workspace_with(root: &Path, opts: &AuditOptions) -> io::Result<AuditOutcome> {
    let raws = walk::discover(root)?;
    let n = raws.len();
    let jobs = effective_jobs(opts.jobs, n);
    let old_cache = match &opts.cache_path {
        Some(p) => Cache::load(p, rules::RULES_VERSION),
        None => Cache::default(),
    };

    // Phase 1: fingerprints.
    let fingerprints: Vec<u64> = raws.iter().map(|r| fnv1a(r.text.as_bytes())).collect();
    let fp_hit: Vec<bool> = (0..n)
        .map(|i| {
            old_cache
                .entries
                .get(&raws[i].path)
                .is_some_and(|e| e.fingerprint == fingerprints[i])
        })
        .collect();

    // Phase 2: parse + index fingerprint misses in parallel.
    let wave1: Vec<usize> = (0..n).filter(|&i| !fp_hit[i]).collect();
    let parsed1 = par_map(wave1, jobs, |i| {
        let file = raws[i].parse();
        let ix = FileIndex::build(&file);
        (i, file, ix)
    });

    // Facts per file: from the fresh index for misses, from the cache for
    // hits (same content ⇒ same facts, no parse needed).
    let mut facts: Vec<Vec<String>> = vec![Vec::new(); n];
    for (i, _, ix) in &parsed1 {
        facts[*i] = ix.facts();
    }
    for i in (0..n).filter(|&i| fp_hit[i]) {
        if let Some(e) = old_cache.entries.get(&raws[i].path) {
            facts[i].clone_from(&e.facts);
        }
    }

    // Phase 3: workspace digest; a cache entry is valid iff fingerprint and
    // digest both match.
    let cross = CrossFacts::from_facts(facts.iter().flatten());
    let digest = cross.digest();
    let valid: Vec<bool> = (0..n)
        .map(|i| {
            fp_hit[i]
                && old_cache
                    .entries
                    .get(&raws[i].path)
                    .is_some_and(|e| e.digest == digest)
        })
        .collect();

    // Second parse wave: content unchanged but the cross-file facts moved
    // under the cached diagnostics, so the file must be re-checked.
    let wave2: Vec<usize> = (0..n).filter(|&i| fp_hit[i] && !valid[i]).collect();
    let parsed2 = par_map(wave2, jobs, |i| {
        let file = raws[i].parse();
        let ix = FileIndex::build(&file);
        (i, file, ix)
    });

    // Phase 4: rule runs for every invalid file, under one shared context.
    let mut to_check: Vec<(usize, SourceFile)> = Vec::new();
    let mut indexes: BTreeMap<PathBuf, FileIndex> = BTreeMap::new();
    for (i, file, ix) in parsed1.into_iter().chain(parsed2) {
        indexes.insert(file.path.clone(), ix);
        to_check.push((i, file));
    }
    let ctx = Context::from_parts(cross, indexes);
    let checked: Vec<(usize, Vec<Diagnostic>)> =
        par_map(to_check, jobs, |(i, file)| (i, check_file(&file, &ctx)));

    let mut per_file: Vec<Vec<Diagnostic>> = vec![Vec::new(); n];
    let mut cache_hits = 0usize;
    for i in (0..n).filter(|&i| valid[i]) {
        if let Some(e) = old_cache.entries.get(&raws[i].path) {
            per_file[i].clone_from(&e.diagnostics);
            cache_hits += 1;
        }
    }
    for (i, ds) in checked {
        per_file[i] = ds;
    }

    // Phase 5: store the refreshed cache.
    if let Some(cache_path) = &opts.cache_path {
        let mut new_cache = Cache::default();
        for i in 0..n {
            new_cache.entries.insert(
                raws[i].path.clone(),
                CacheEntry {
                    fingerprint: fingerprints[i],
                    facts: std::mem::take(&mut facts[i]),
                    digest,
                    diagnostics: per_file[i].clone(),
                },
            );
        }
        // Best-effort: a read-only target dir must not fail the audit.
        let _ = new_cache.store(cache_path, rules::RULES_VERSION);
    }

    let mut diagnostics: Vec<Diagnostic> = per_file.into_iter().flatten().collect();
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(AuditOutcome {
        files_scanned: n,
        diagnostics,
        cache_hits,
        cache_misses: n - cache_hits,
    })
}

/// Resolve the worker-thread count: an explicit `jobs`, else the machine's
/// available parallelism (capped — parsing is cheap, oversubscription only
/// adds spawn overhead), never more than one thread per item.
fn effective_jobs(jobs: usize, items: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let picked = if jobs == 0 { auto.min(8) } else { jobs };
    picked.clamp(1, items.max(1))
}

/// Order-preserving parallel map over owned items using scoped threads:
/// items are split into `jobs` contiguous chunks, each processed on its own
/// thread, and the chunk results are re-concatenated in order. A worker
/// panic is propagated to the caller.
fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(jobs);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(jobs);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(results) => out.extend(results),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn diagnostics_are_sorted() {
        let files = vec![
            SourceFile::parse(PathBuf::from("b.rs"), "pulse-core", "let x = a.unwrap();\n"),
            SourceFile::parse(
                PathBuf::from("a.rs"),
                "pulse-core",
                "let y = b.unwrap();\nlet z = c.unwrap();\n",
            ),
        ];
        let out = audit_files(&files);
        assert_eq!(out.files_scanned, 2);
        let keys: Vec<_> = out
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn clean_file_yields_clean_outcome() {
        let files = vec![SourceFile::parse(
            PathBuf::from("ok.rs"),
            "pulse-core",
            "/// Adds one.\npub fn add_one(x: u64) -> u64 { x + 1 }\n",
        )];
        assert!(audit_files(&files).is_clean());
    }

    #[test]
    fn out_of_scope_crate_not_checked_by_core_rules() {
        let files = vec![SourceFile::parse(
            PathBuf::from("exp.rs"),
            "pulse-experiments",
            "let t = Instant::now();\nlet x = v.unwrap();\n",
        )];
        assert!(audit_files(&files).is_clean());
    }

    #[test]
    fn semantic_rules_see_cross_file_facts_via_audit_files() {
        let files = vec![
            SourceFile::parse(
                PathBuf::from("a.rs"),
                "pulse-core",
                "/// Returns per-app totals.\npub fn by_app() -> HashMap<String, f64> { todo!() }\n",
            ),
            SourceFile::parse(
                PathBuf::from("b.rs"),
                "pulse-core",
                "/// Sums totals.\npub fn total() -> f64 { by_app().into_values().sum::<f64>() }\n",
            ),
        ];
        let out = audit_files(&files);
        assert!(
            out.diagnostics
                .iter()
                .any(|d| d.rule == "float-reduce-order"),
            "{:?}",
            out.diagnostics
        );
    }

    #[test]
    fn par_map_preserves_order_at_any_job_count() {
        let items: Vec<usize> = (0..37).collect();
        for jobs in [1, 2, 5, 64] {
            let doubled = par_map(items.clone(), jobs, |x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        assert!(par_map(Vec::<usize>::new(), 4, |x| x).is_empty());
    }

    #[test]
    fn effective_jobs_bounds() {
        assert_eq!(effective_jobs(3, 100), 3);
        assert_eq!(effective_jobs(16, 2), 2);
        assert_eq!(effective_jobs(0, 0), 1);
        assert!(effective_jobs(0, 100) >= 1);
    }
}

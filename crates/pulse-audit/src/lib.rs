//! PULSE-specific static analysis.
//!
//! `pulse-audit` walks every first-party `.rs` file in the workspace and
//! enforces the invariant-hygiene rules the PULSE policy core depends on
//! (see `rules` for the registry). It is deliberately dependency-free so it
//! runs in offline CI and can never be broken by the code it checks.
//!
//! Library layout:
//! - [`source`] — masked-text model of one file (strings/comments blanked,
//!   `#[cfg(test)]` spans and `audit:allow` waivers resolved);
//! - [`rules`] — the rule trait, registry and one module per rule;
//! - [`walk`] — workspace file discovery;
//! - [`diagnostics`] — the `file:line: [rule] message` diagnostic type.

pub mod diagnostics;
pub mod rules;
pub mod source;
pub mod walk;

use std::io;
use std::path::Path;

use diagnostics::Diagnostic;
use source::SourceFile;

/// Result of auditing a set of files.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditOutcome {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Run every registered rule over `files` (in-memory entry point; the CLI
/// and tests share it).
pub fn audit_files(files: &[SourceFile]) -> AuditOutcome {
    let rules = rules::registry();
    let rule_names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
    let mut diagnostics = Vec::new();
    for file in files {
        diagnostics.extend(rules::check_waiver_hygiene(file, &rule_names));
        for rule in &rules {
            if rule.scope().includes(&file.krate) {
                diagnostics.extend(rule.check(file));
            }
        }
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    AuditOutcome {
        files_scanned: files.len(),
        diagnostics,
    }
}

/// Walk the workspace rooted at `root` and audit every in-scope file.
pub fn audit_workspace(root: &Path) -> io::Result<AuditOutcome> {
    let files = walk::workspace_files(root)?;
    Ok(audit_files(&files))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn diagnostics_are_sorted() {
        let files = vec![
            SourceFile::parse(PathBuf::from("b.rs"), "pulse-core", "let x = a.unwrap();\n"),
            SourceFile::parse(
                PathBuf::from("a.rs"),
                "pulse-core",
                "let y = b.unwrap();\nlet z = c.unwrap();\n",
            ),
        ];
        let out = audit_files(&files);
        assert_eq!(out.files_scanned, 2);
        let keys: Vec<_> = out
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn clean_file_yields_clean_outcome() {
        let files = vec![SourceFile::parse(
            PathBuf::from("ok.rs"),
            "pulse-core",
            "/// Adds one.\npub fn add_one(x: u64) -> u64 { x + 1 }\n",
        )];
        assert!(audit_files(&files).is_clean());
    }

    #[test]
    fn out_of_scope_crate_not_checked_by_core_rules() {
        let files = vec![SourceFile::parse(
            PathBuf::from("exp.rs"),
            "pulse-experiments",
            "let t = Instant::now();\nlet x = v.unwrap();\n",
        )];
        assert!(audit_files(&files).is_clean());
    }
}

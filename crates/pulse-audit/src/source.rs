//! Source-file model shared by all rules.
//!
//! Rules never see raw text: they see a [`SourceFile`] whose lines have been
//! *masked* — string and character literal contents and comments replaced by
//! spaces, with line numbers preserved — plus per-line metadata: whether the
//! line sits inside a `#[cfg(test)]` region, and any `// audit:allow(...)`
//! waiver attached to the line. This keeps every rule a simple, precise
//! text scan that cannot be fooled by patterns inside strings or comments.

use std::path::PathBuf;

/// A parsed waiver comment: `// audit:allow(<rule>): <justification>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Justification text after the colon (may be empty — the framework
    /// reports empty justifications as violations themselves).
    pub justification: String,
    /// 1-based line the waiver comment appears on.
    pub line: usize,
}

/// One workspace source file, pre-processed for rule scanning.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative when walked).
    pub path: PathBuf,
    /// Name of the crate the file belongs to (e.g. `pulse-core`).
    pub krate: String,
    /// Raw text lines (for hints and justification checks).
    pub raw_lines: Vec<String>,
    /// Lines with string/char contents and comments blanked out.
    pub masked_lines: Vec<String>,
    /// Comment text per line (tail `//` comments and block-comment spans).
    pub comment_lines: Vec<String>,
    /// `in_test[i]` is true when line `i+1` is inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Waivers, indexed by the 0-based line they apply to (a waiver covers
    /// its own line and, when it is a comment-only line, the next line).
    waivers: Vec<Vec<Waiver>>,
}

impl SourceFile {
    /// Parse `text` as the contents of `path` inside crate `krate`.
    pub fn parse(path: PathBuf, krate: &str, text: &str) -> Self {
        let raw_lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let (masked_lines, comment_lines) = mask(text, raw_lines.len());
        let in_test = test_regions(&masked_lines);
        let waivers = collect_waivers(&comment_lines, &masked_lines);
        Self {
            path,
            krate: krate.to_owned(),
            raw_lines,
            masked_lines,
            comment_lines,
            in_test,
            waivers,
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.raw_lines.len()
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.raw_lines.is_empty()
    }

    /// True when 1-based `line` carries a waiver for `rule`.
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        self.waivers
            .get(line - 1)
            .is_some_and(|ws| ws.iter().any(|w| w.rule == rule))
    }

    /// All waivers in the file (for justification checking).
    pub fn all_waivers(&self) -> Vec<&Waiver> {
        let mut seen: Vec<&Waiver> = Vec::new();
        for ws in &self.waivers {
            for w in ws {
                if !seen.iter().any(|s| s.line == w.line && s.rule == w.rule) {
                    seen.push(w);
                }
            }
        }
        seen
    }
}

/// Blank out comments and string/char literal contents, preserving line
/// structure. Returns `(masked_lines, comment_lines)`.
fn mask(text: &str, n_lines: usize) -> (Vec<String>, Vec<String>) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }

    let mut masked = vec![String::new(); n_lines.max(1)];
    let mut comments = vec![String::new(); n_lines.max(1)];
    let mut line = 0usize;
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;

    // Push `c` to the masked view, or a space placeholder.
    macro_rules! emit {
        (code $c:expr) => {
            masked[line].push($c)
        };
        (blank) => {
            masked[line].push(' ')
        };
        (comment $c:expr) => {{
            masked[line].push(' ');
            comments[line].push($c);
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    emit!(comment '/');
                    emit!(comment '/');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    emit!(comment '/');
                    emit!(comment '*');
                    i += 2;
                    continue;
                }
                if c == 'r' && matches!(next, Some('"') | Some('#')) {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            emit!(blank);
                        }
                        i = j + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                }
                if c == '"' {
                    emit!(blank);
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal closes with `'`
                    // after one (possibly escaped) character.
                    let is_escape = chars.get(i + 1) == Some(&'\\');
                    let closes = if is_escape {
                        // '\x41' / '\n' / '\u{...}' — find the closing quote
                        // within a small window.
                        (i + 2..(i + 12).min(chars.len())).any(|k| chars[k] == '\'')
                    } else {
                        chars.get(i + 2) == Some(&'\'')
                    };
                    if closes {
                        emit!(blank);
                        state = State::Char;
                        i += 1;
                        continue;
                    }
                    // Lifetime: keep as code.
                    emit!(code c);
                    i += 1;
                    continue;
                }
                emit!(code c);
                i += 1;
            }
            State::LineComment => {
                emit!(comment c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    emit!(comment '*');
                    emit!(comment '/');
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    continue;
                }
                if c == '/' && next == Some('*') {
                    emit!(comment '/');
                    emit!(comment '*');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                emit!(comment c);
                i += 1;
            }
            State::Str => {
                if c == '\\' {
                    emit!(blank);
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        emit!(blank);
                        i += 2;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                if c == '"' {
                    emit!(blank);
                    state = State::Code;
                } else {
                    emit!(blank);
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            emit!(blank);
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                emit!(blank);
                i += 1;
            }
            State::Char => {
                emit!(blank);
                if c == '\'' {
                    state = State::Code;
                } else if c == '\\' && chars.get(i + 1).is_some() {
                    emit!(blank);
                    i += 2;
                    continue;
                }
                i += 1;
            }
        }
    }
    (masked, comments)
}

/// Mark the line span of every `#[cfg(test)]` item (attribute line through
/// the matching close brace, or the terminating `;` for brace-less items).
fn test_regions(masked: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked.len()];
    let mut line = 0usize;
    while line < masked.len() {
        let l = compact(&masked[line]);
        if !l.contains("#[cfg(test)]") {
            line += 1;
            continue;
        }
        // Scan forward from the end of the attribute for the item's span.
        let mut depth = 0i64;
        let mut seen_brace = false;
        let mut end = masked.len() - 1;
        'scan: for (j, scan_line) in masked.iter().enumerate().skip(line) {
            let text: &str = if j == line {
                // Skip past the attribute itself on its own line.
                let idx = scan_line.find("]").map_or(0, |p| p + 1);
                &scan_line[idx.min(scan_line.len())..]
            } else {
                scan_line
            };
            for ch in text.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    '}' => {
                        depth -= 1;
                        if seen_brace && depth == 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    ';' if !seen_brace && depth == 0 => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
        for flag in in_test.iter_mut().take(end + 1).skip(line) {
            *flag = true;
        }
        line = end + 1;
    }
    in_test
}

fn compact(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Parse `audit:allow(<rule>): <justification>` waivers out of comment text
/// and attach each to its own line plus — when the line holds no code — the
/// next line. The rule must be a kebab-case slug, so prose *about* the
/// waiver syntax (placeholders like `<rule>` or `...`) never parses as one.
fn collect_waivers(comments: &[String], masked: &[String]) -> Vec<Vec<Waiver>> {
    let mut out: Vec<Vec<Waiver>> = vec![Vec::new(); comments.len()];
    for (i, comment) in comments.iter().enumerate() {
        let Some(pos) = comment.find("audit:allow(") else {
            continue;
        };
        let rest = &comment[pos + "audit:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_owned();
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justification = after
            .strip_prefix(':')
            .map(|j| j.trim().to_owned())
            .unwrap_or_default();
        let w = Waiver {
            rule,
            justification,
            line: i + 1,
        };
        let line_has_code = !masked[i].trim().is_empty();
        out[i].push(w.clone());
        if !line_has_code && i + 1 < out.len() {
            out[i + 1].push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("lib.rs"), "demo", text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = parse("let x = \"unwrap()\"; // .unwrap() here\nlet y = 1;\n");
        assert!(!f.masked_lines[0].contains("unwrap"));
        assert!(f.comment_lines[0].contains(".unwrap() here"));
        assert!(f.masked_lines[1].contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = parse("let s = r#\"panic!(\"x\")\"#;\nlet t = 2;\n");
        assert!(!f.masked_lines[0].contains("panic"));
        assert!(f.masked_lines[1].contains("let t"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = parse("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        // Lifetime survives, char literal contents blanked.
        assert!(f.masked_lines[0].contains("<'a>"));
        assert!(!f.masked_lines[0].contains("'x'"));
    }

    #[test]
    fn block_comments_nest() {
        let f = parse("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(f.masked_lines[0].contains("let x = 1;"));
        assert!(!f.masked_lines[0].contains("outer"));
    }

    #[test]
    fn cfg_test_region_spans_module() {
        let text = "\
fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(true); }
}

fn more_lib() {}
";
        let f = parse(text);
        assert!(!f.in_test[0]);
        assert!(f.in_test[2]); // attribute line
        assert!(f.in_test[3]);
        assert!(f.in_test[5]);
        assert!(!f.in_test[8]);
    }

    #[test]
    fn cfg_test_on_braceless_item() {
        let f = parse("#[cfg(test)]\nuse foo::bar;\nfn real() {}\n");
        assert!(f.in_test[0]);
        assert!(f.in_test[1]);
        assert!(!f.in_test[2]);
    }

    #[test]
    fn waiver_parses_rule_and_justification() {
        let f = parse("// audit:allow(cast): lossless, minutes < 2^53\nlet x = t as f64;\n");
        assert!(f.is_waived("cast", 1));
        assert!(f.is_waived("cast", 2)); // comment-only line covers the next
        assert!(!f.is_waived("unwrap", 2));
        let ws = f.all_waivers();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].justification, "lossless, minutes < 2^53");
    }

    #[test]
    fn trailing_waiver_covers_only_its_line() {
        let f =
            parse("let x = t as f64; // audit:allow(cast): bounded by window\nlet y = u as f64;\n");
        assert!(f.is_waived("cast", 1));
        assert!(!f.is_waived("cast", 2));
    }

    #[test]
    fn placeholder_rule_names_are_not_waivers() {
        // Docs about the waiver syntax must not themselves parse as waivers.
        let f = parse(
            "// audit:allow(<rule>): placeholder\n// audit:allow(...): dots\n// audit:allow(): empty\n",
        );
        assert!(f.all_waivers().is_empty());
    }

    #[test]
    fn waiver_without_justification_is_recorded_empty() {
        let f = parse("// audit:allow(unwrap)\nfoo.unwrap();\n");
        let ws = f.all_waivers();
        assert_eq!(ws.len(), 1);
        assert!(ws[0].justification.is_empty());
    }
}

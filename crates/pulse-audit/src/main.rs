//! CLI entry point for the workspace audit.
//!
//! Exits 0 when the workspace is clean (or, with `--baseline`, when nothing
//! regressed past the committed ratchet), 1 when findings fail the run, 2 on
//! usage or I/O errors. Reports go to stdout or `--out` in one of three
//! formats: human text (default), machine JSON, or SARIF 2.1.0 for CI
//! artifact upload.

use std::path::PathBuf;
use std::process::ExitCode;

use pulse_audit::baseline::Baseline;
use pulse_audit::{output, rules, AuditOptions};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: PathBuf,
    fix_hints: bool,
    list_rules: bool,
    format: Format,
    out: Option<PathBuf>,
    cache: Option<PathBuf>,
    no_cache: bool,
    jobs: usize,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        fix_hints: false,
        list_rules: false,
        format: Format::Text,
        out: None,
        cache: None,
        no_cache: false,
        jobs: 0,
        baseline: None,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a path")?;
                opts.root = PathBuf::from(v);
            }
            "--format" => {
                let v = args.next().ok_or("--format requires text|json|sarif")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--out" => {
                let v = args.next().ok_or("--out requires a path")?;
                opts.out = Some(PathBuf::from(v));
            }
            "--cache" => {
                let v = args.next().ok_or("--cache requires a path")?;
                opts.cache = Some(PathBuf::from(v));
            }
            "--no-cache" => opts.no_cache = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a number")?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs: `{v}` is not a number"))?;
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline requires a path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--fix-hints" => opts.fix_hints = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "\
pulse-audit — PULSE-specific static analysis

USAGE:
    pulse-audit [OPTIONS]

OPTIONS:
    --root <path>       workspace root to scan (default: current directory)
    --format <fmt>      report format: text (default), json, sarif
    --out <path>        write the report to a file instead of stdout
    --cache <path>      incremental cache file
                        (default: <root>/target/pulse-audit-cache.tsv)
    --no-cache          disable the incremental cache for this run
    --jobs <n>          worker threads for parsing and rule runs (default: auto)
    --baseline <path>   ratchet file: exit 1 only on findings NOT covered by
                        the baseline (new (path, rule) pairs or grown counts)
    --write-baseline    rewrite the baseline file to accept current findings
                        (requires --baseline), then exit by the ratchet
    --fix-hints         print a suggested rewrite under each text diagnostic
    --list-rules        list registered rules with their descriptions and exit

Waive a finding with `// audit:allow(<rule>): <justification>` on the
offending line or on a comment line directly above it. Waivers without a
justification are themselves violations.";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::registry() {
            println!("{:<20} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    if opts.write_baseline && opts.baseline.is_none() {
        eprintln!("error: --write-baseline requires --baseline <path>\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let cache_path = if opts.no_cache {
        None
    } else {
        Some(
            opts.cache
                .clone()
                .unwrap_or_else(|| opts.root.join("target/pulse-audit-cache.tsv")),
        )
    };
    let audit_opts = AuditOptions {
        cache_path,
        jobs: opts.jobs,
    };

    let outcome = match pulse_audit::audit_workspace_with(&opts.root, &audit_opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    // A root with zero source files is a misconfiguration (wrong --root, CI
    // checkout missing), not a clean workspace — fail loudly instead of
    // letting a green "clean (0 files)" hide it.
    if outcome.files_scanned == 0 {
        eprintln!(
            "error: no workspace .rs files found under {}",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let report = match opts.format {
        Format::Text => output::render_text(&outcome, opts.fix_hints),
        Format::Json => output::render_json(&outcome),
        Format::Sarif => output::render_sarif(&outcome),
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("error: failed to write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => print!("{report}"),
    }

    // Ratchet: with a baseline, only regressions beyond it fail the run.
    if let Some(baseline_path) = &opts.baseline {
        if opts.write_baseline {
            let snapshot = Baseline::from_diagnostics(&outcome.diagnostics);
            if let Err(e) = snapshot.store(baseline_path) {
                eprintln!("error: failed to write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "pulse-audit: baseline written to {} ({} accepted finding(s))",
                baseline_path.display(),
                outcome.diagnostics.len()
            );
            return ExitCode::SUCCESS;
        }
        let accepted = match Baseline::load(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: failed to load {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let regressions = accepted.regressions(&outcome.diagnostics);
        if regressions.is_empty() {
            eprintln!(
                "pulse-audit: no regressions past baseline ({} accepted finding(s))",
                outcome.diagnostics.len()
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "pulse-audit: {} finding(s) regress past the baseline:",
            regressions.len()
        );
        for d in regressions {
            eprintln!("  NEW {d}");
        }
        return ExitCode::FAILURE;
    }

    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

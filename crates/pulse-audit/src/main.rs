//! CLI entry point: `cargo run -p pulse-audit [-- --root <path>] [--fix-hints]`.
//!
//! Exits 0 when the workspace is clean, 1 when any rule fired (diagnostics
//! go to stdout as `path:line: [rule] message`), 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use pulse_audit::rules;

struct Options {
    root: PathBuf,
    fix_hints: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        fix_hints: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a path")?;
                opts.root = PathBuf::from(v);
            }
            "--fix-hints" => opts.fix_hints = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "\
pulse-audit — PULSE-specific static analysis

USAGE:
    pulse-audit [--root <workspace-root>] [--fix-hints] [--list-rules]

OPTIONS:
    --root <path>   workspace root to scan (default: current directory)
    --fix-hints     print a suggested rewrite under each diagnostic
    --list-rules    list registered rules with their crate scopes and exit

Waive a finding with `// audit:allow(<rule>): <justification>` on the
offending line or on a comment line directly above it. Waivers without a
justification are themselves violations.";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::registry() {
            println!("{:<14} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let outcome = match pulse_audit::audit_workspace(&opts.root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    // A root with zero source files is a misconfiguration (wrong --root, CI
    // checkout missing), not a clean workspace — fail loudly instead of
    // letting a green "clean (0 files)" hide it.
    if outcome.files_scanned == 0 {
        eprintln!(
            "error: no workspace .rs files found under {}",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    for d in &outcome.diagnostics {
        println!("{d}");
        if opts.fix_hints {
            if let Some(hint) = &d.hint {
                println!("    hint: {hint}");
            }
        }
    }

    if outcome.is_clean() {
        println!(
            "pulse-audit: clean ({} files, {} rules)",
            outcome.files_scanned,
            rules::registry().len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "pulse-audit: {} violation(s) across {} files scanned",
            outcome.diagnostics.len(),
            outcome.files_scanned
        );
        ExitCode::FAILURE
    }
}

//! Regression pins against real workspace source. Memory-ordering bugs
//! cannot be distinguished behaviorally on x86 (its hardware model is
//! stronger than Relaxed), so the fix in `pulse-sim`'s worker-abort path is
//! pinned structurally: the audit's own `atomic-ordering` rule must stay
//! silent on `runner.rs`, and the abort flag's accesses must carry the
//! Acquire/Release pair the failure-context handoff relies on.

// The source-loading helper sits outside `#[test]` fns, where the
// allow-unwrap-in-tests exemption does not reach.
#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};

use pulse_audit::audit_files;
use pulse_audit::source::SourceFile;

fn runner_source() -> (PathBuf, String) {
    // Integration tests run with the crate under test as CWD; the workspace
    // root is two levels up.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../pulse-sim/src/runner.rs")
        .canonicalize()
        .unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    (path, text)
}

#[test]
fn sim_runner_abort_flag_passes_the_atomic_ordering_rule() {
    let (path, text) = runner_source();
    let file = SourceFile::parse(path, "pulse-sim", &text);
    let findings: Vec<String> = audit_files(std::slice::from_ref(&file))
        .diagnostics
        .into_iter()
        .filter(|d| d.rule == "atomic-ordering")
        .map(|d| d.to_string())
        .collect();
    assert!(
        findings.is_empty(),
        "worker-abort flag regressed to a too-weak ordering:\n{findings:?}"
    );
}

#[test]
fn sim_runner_abort_flag_uses_acquire_release_pair() {
    let (_, text) = runner_source();
    // The flag is raised with Release so the failing worker's writes (the
    // failure context) are published, and polled with Acquire so siblings
    // observe them. Both halves must survive refactors.
    assert!(
        text.contains("abort.store(true, Ordering::Release)"),
        "abort raise no longer uses Ordering::Release"
    );
    assert!(
        text.contains("abort.load(Ordering::Acquire)"),
        "abort poll no longer uses Ordering::Acquire"
    );
    assert!(
        !text.contains("abort.load(Ordering::Relaxed)")
            && !text.contains("abort.store(true, Ordering::Relaxed)"),
        "abort flag regressed to Ordering::Relaxed"
    );
}

//! Snapshot tests for the machine-readable reports (JSON, SARIF) and a
//! round-trip test of the baseline ratchet — the shapes CI consumes. The
//! snapshots are intentionally strict: renderer output is part of the
//! tool's contract, so an incidental field reorder should fail here, not in
//! a downstream SARIF viewer.

use std::path::PathBuf;

use pulse_audit::baseline::Baseline;
use pulse_audit::output::{render_json, render_sarif};
use pulse_audit::source::SourceFile;
use pulse_audit::{audit_files, AuditOutcome};

const FIXTURE: &str = "\
use std::collections::HashMap;

pub fn walk(m: &HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for k in m.keys() {
        acc += *k;
    }
    acc
}
";

fn outcome() -> AuditOutcome {
    let file = SourceFile::parse(
        PathBuf::from("crates/demo/src/lib.rs"),
        "pulse-experiments",
        FIXTURE,
    );
    audit_files(std::slice::from_ref(&file))
}

#[test]
fn json_report_snapshot() {
    let out = outcome();
    let expected = "\
{
  \"files_scanned\": 1,
  \"cache_hits\": 0,
  \"cache_misses\": 1,
  \"diagnostics\": [
    {\"path\": \"crates/demo/src/lib.rs\", \"line\": 5, \"rule\": \"hashmap-iter-order\", \
\"message\": \"iteration over unordered hash container `m` — order depends on hasher state \
and breaks bit-identical reproduction\", \
\"hint\": \"use BTreeMap/BTreeSet, or collect and sort before consuming the order\"}
  ]
}
";
    assert_eq!(render_json(&out), expected);
}

#[test]
fn json_report_is_structurally_sound_when_clean() {
    let empty = AuditOutcome {
        files_scanned: 3,
        diagnostics: Vec::new(),
        cache_hits: 3,
        cache_misses: 0,
    };
    let json = render_json(&empty);
    assert!(json.contains("\"files_scanned\": 3"));
    assert!(json.contains("\"diagnostics\": []"));
    // Balanced braces/brackets — cheap well-formedness check without a parser.
    for (open, close) in [('{', '}'), ('[', ']')] {
        let opens = json.matches(open).count();
        let closes = json.matches(close).count();
        assert_eq!(opens, closes, "unbalanced {open}{close} in:\n{json}");
    }
}

#[test]
fn sarif_report_carries_rule_table_and_result_locations() {
    let sarif = render_sarif(&outcome());
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("sarif-schema-2.1.0.json"));
    assert!(sarif.contains("\"name\": \"pulse-audit\""));
    // Every registered rule appears in the driver's rule table.
    for rule in pulse_audit::rules::registry() {
        assert!(
            sarif.contains(&format!("\"id\": \"{}\"", rule.name())),
            "rule {} missing from SARIF driver table",
            rule.name()
        );
    }
    assert!(sarif.contains("\"id\": \"waiver\""));
    // The finding shows up as a result with a physical location.
    assert!(sarif.contains("\"ruleId\": \"hashmap-iter-order\""));
    assert!(sarif.contains("\"uri\": \"crates/demo/src/lib.rs\""));
    assert!(sarif.contains("\"startLine\": 5"));
}

#[test]
fn baseline_ratchet_round_trips_and_flags_only_regressions() {
    let out = outcome();
    let accepted = Baseline::from_diagnostics(&out.diagnostics);

    // Same findings: no regressions.
    assert!(accepted.regressions(&out.diagnostics).is_empty());

    // A second finding of an accepted (path, rule) pair IS a regression:
    // the ratchet compares counts, not mere presence.
    let mut doubled = out.diagnostics.clone();
    doubled.extend(out.diagnostics.iter().cloned());
    let regressed = accepted.regressions(&doubled);
    assert_eq!(regressed.len(), 2, "whole regressed group is reported");

    // Serialized form reloads to the same decisions.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline-roundtrip.tsv");
    accepted.store(&path).unwrap();
    let reloaded = Baseline::load(&path).unwrap();
    assert!(reloaded.regressions(&out.diagnostics).is_empty());
    assert!(!reloaded.regressions(&doubled).is_empty());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn malformed_baseline_is_a_hard_error() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline-malformed.tsv");
    std::fs::write(&path, "not-a-baseline\n").unwrap();
    let err = Baseline::load(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_file(&path).unwrap();
}

//! Fixture tests for the v2 semantic rules: each rule has a `fire.rs`
//! (positive), `clean.rs` (negative) and `waived.rs` (suppressed) fixture
//! under `tests/fixtures/<rule>/`, audited through the public
//! [`pulse_audit::audit_files`] entry point.
//!
//! Fixtures are parsed under the `pulse-experiments` crate name so only the
//! `Scope::AllCrates` semantic rules apply — the crate-scoped text rules
//! (wall-clock, unwrap, …) stay out of the assertion's way. Assertions
//! filter by the rule under test because fixtures may legitimately trip a
//! sibling rule too (a float sum over a HashMap is both a
//! `float-reduce-order` and a `hashmap-iter-order` finding).

use std::path::PathBuf;

use pulse_audit::audit_files;
use pulse_audit::source::SourceFile;

const FIXTURES: &[(&str, &str, &str, &str)] = &[
    (
        "hashmap-iter-order",
        include_str!("fixtures/hashmap-iter-order/fire.rs"),
        include_str!("fixtures/hashmap-iter-order/clean.rs"),
        include_str!("fixtures/hashmap-iter-order/waived.rs"),
    ),
    (
        "unseeded-rng",
        include_str!("fixtures/unseeded-rng/fire.rs"),
        include_str!("fixtures/unseeded-rng/clean.rs"),
        include_str!("fixtures/unseeded-rng/waived.rs"),
    ),
    (
        "float-reduce-order",
        include_str!("fixtures/float-reduce-order/fire.rs"),
        include_str!("fixtures/float-reduce-order/clean.rs"),
        include_str!("fixtures/float-reduce-order/waived.rs"),
    ),
    (
        "atomic-ordering",
        include_str!("fixtures/atomic-ordering/fire.rs"),
        include_str!("fixtures/atomic-ordering/clean.rs"),
        include_str!("fixtures/atomic-ordering/waived.rs"),
    ),
    (
        "shared-mut-in-scope",
        include_str!("fixtures/shared-mut-in-scope/fire.rs"),
        include_str!("fixtures/shared-mut-in-scope/clean.rs"),
        include_str!("fixtures/shared-mut-in-scope/waived.rs"),
    ),
];

fn findings_of(rule: &str, text: &str) -> Vec<String> {
    let file = SourceFile::parse(PathBuf::from("fixture.rs"), "pulse-experiments", text);
    audit_files(std::slice::from_ref(&file))
        .diagnostics
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.to_string())
        .collect()
}

#[test]
fn every_semantic_rule_fires_on_its_positive_fixture() {
    for (rule, fire, _, _) in FIXTURES {
        let found = findings_of(rule, fire);
        assert!(
            found.len() >= 2,
            "{rule} fired {} time(s) on fire.rs (expected >= 2):\n{found:?}",
            found.len()
        );
    }
}

#[test]
fn every_semantic_rule_stays_silent_on_its_negative_fixture() {
    for (rule, _, clean, _) in FIXTURES {
        let found = findings_of(rule, clean);
        assert!(found.is_empty(), "{rule} fired on clean.rs:\n{found:?}");
    }
}

#[test]
fn every_semantic_rule_is_suppressed_by_a_justified_waiver() {
    for (rule, _, _, waived) in FIXTURES {
        let found = findings_of(rule, waived);
        assert!(found.is_empty(), "{rule} fired on waived.rs:\n{found:?}");
        // The waiver itself is well-formed: no waiver-hygiene diagnostics.
        let hygiene = findings_of("waiver", waived);
        assert!(
            hygiene.is_empty(),
            "{rule} waived.rs waiver rejected:\n{hygiene:?}"
        );
    }
}

#[test]
fn waived_fixtures_differ_from_fire_fixtures_only_by_the_waiver() {
    // Guard against a waived fixture accidentally also removing the
    // offending pattern: stripping the waiver comment must re-fire the rule.
    for (rule, _, _, waived) in FIXTURES {
        let stripped: String = waived
            .lines()
            .filter(|l| !l.contains("audit:allow"))
            .map(|l| format!("{l}\n"))
            .collect();
        let found = findings_of(rule, &stripped);
        assert!(
            !found.is_empty(),
            "{rule} waived.rs without its waiver no longer fires — fixture is vacuous"
        );
    }
}

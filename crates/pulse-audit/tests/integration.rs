//! End-to-end tests of the audit pipeline: multi-file, multi-rule fixtures
//! through the public [`pulse_audit::audit_files`] entry point, plus a
//! self-check that the workspace the audit ships in passes its own rules.

use std::path::{Path, PathBuf};

use pulse_audit::source::SourceFile;
use pulse_audit::{audit_files, audit_workspace};

fn file(path: &str, krate: &str, text: &str) -> SourceFile {
    SourceFile::parse(PathBuf::from(path), krate, text)
}

#[test]
fn mixed_fixture_fires_expected_rules_only() {
    let files = vec![
        // unwrap in library code of a scoped crate → fires.
        file(
            "crates/pulse-sim/src/a.rs",
            "pulse-sim",
            "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
        ),
        // Same text inside #[cfg(test)] → exempt.
        file(
            "crates/pulse-sim/src/b.rs",
            "pulse-sim",
            "#[cfg(test)]\nmod tests {\n    fn g(v: Option<u8>) -> u8 { v.unwrap() }\n}\n",
        ),
        // Raw cast in pulse-core policy math → fires; waived line → silent.
        file(
            "crates/pulse-core/src/c.rs",
            "pulse-core",
            concat!(
                "/// Doc.\npub fn h(n: usize) -> f64 {\n",
                "    let bad = n as f64;\n",
                "    // audit:allow(cast): fixture justification\n",
                "    let good = n as f64;\n",
                "    bad + good\n}\n",
            ),
        ),
        // Float equality on a probability-looking value → fires.
        file(
            "crates/pulse-core/src/d.rs",
            "pulse-core",
            "/// Doc.\npub fn z(p: f64) -> bool { p == 0.5 }\n",
        ),
        // Wall-clock in a deterministic crate → fires.
        file(
            "crates/pulse-sim/src/e.rs",
            "pulse-sim",
            "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
        ),
        // Undocumented pub fn in pulse-core → fires.
        file(
            "crates/pulse-core/src/f.rs",
            "pulse-core",
            "pub fn undoc() {}\n",
        ),
    ];
    let out = audit_files(&files);
    assert_eq!(out.files_scanned, 6);
    let fired: Vec<(&str, &str)> = out
        .diagnostics
        .iter()
        .map(|d| (d.path.to_str().unwrap(), d.rule))
        .collect();
    assert!(fired.contains(&("crates/pulse-sim/src/a.rs", "unwrap")));
    assert!(fired.contains(&("crates/pulse-core/src/c.rs", "cast")));
    assert!(fired.contains(&("crates/pulse-core/src/d.rs", "float-cmp")));
    assert!(fired.contains(&("crates/pulse-sim/src/e.rs", "wall-clock")));
    assert!(fired.contains(&("crates/pulse-core/src/f.rs", "pub-docs")));
    // The #[cfg(test)] file and the waived line stay silent.
    assert!(!fired.iter().any(|(p, _)| *p == "crates/pulse-sim/src/b.rs"));
    assert_eq!(
        out.diagnostics
            .iter()
            .filter(|d| d.path.to_str() == Some("crates/pulse-core/src/c.rs"))
            .count(),
        1,
        "only the unwaived cast fires"
    );
}

#[test]
fn waiver_naming_unknown_rule_is_flagged() {
    let files = vec![file(
        "crates/pulse-core/src/w.rs",
        "pulse-core",
        "// audit:allow(no-such-rule): bogus\n/// Doc.\npub fn ok() {}\n",
    )];
    let out = audit_files(&files);
    assert_eq!(out.diagnostics.len(), 1);
    assert_eq!(out.diagnostics[0].rule, "waiver");
}

#[test]
fn workspace_audit_is_self_clean() {
    // CARGO_MANIFEST_DIR = crates/pulse-audit → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists");
    let out = audit_workspace(root).expect("workspace walk succeeds");
    assert!(out.files_scanned > 50, "walk found the workspace sources");
    assert!(
        out.is_clean(),
        "workspace must pass its own audit:\n{}",
        out.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// Fixture: a justified waiver suppresses the finding on its line.
use std::sync::atomic::{AtomicBool, Ordering};

pub fn advisory_poll(hint: &AtomicBool) -> bool {
    // audit:allow(atomic-ordering): advisory hint, no prior writes consumed
    hint.load(Ordering::Relaxed)
}

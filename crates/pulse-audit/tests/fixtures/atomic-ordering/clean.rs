// Fixture: Acquire/Release on the flag and Relaxed counters stay silent.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub fn poll(abort: &AtomicBool) -> bool {
    abort.load(Ordering::Acquire)
}

pub fn raise(abort: &AtomicBool) {
    abort.store(true, Ordering::Release);
}

pub fn claim(next: &AtomicUsize) -> usize {
    next.fetch_add(1, Ordering::Relaxed)
}

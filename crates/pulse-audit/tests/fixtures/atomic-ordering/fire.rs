// Fixture: Ordering::Relaxed on an AtomicBool control flag must fire.
use std::sync::atomic::{AtomicBool, Ordering};

pub fn poll(abort: &AtomicBool) -> bool {
    abort.load(Ordering::Relaxed)
}

pub fn raise() {
    let stop = AtomicBool::new(false);
    stop.store(true, Ordering::Relaxed);
}

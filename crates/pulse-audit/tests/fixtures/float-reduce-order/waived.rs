// Fixture: a justified waiver suppresses the finding on its line.
use std::collections::HashMap;

pub fn diagnostics_only_total() -> f64 {
    let costs: HashMap<String, f64> = HashMap::new();
    // audit:allow(float-reduce-order): debug display only, never asserted on
    costs.values().sum()
}

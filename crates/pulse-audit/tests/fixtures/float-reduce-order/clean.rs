// Fixture: ordered float reductions and integer hash reductions stay silent.
use std::collections::BTreeMap;

pub fn total_cost(costs: &[f64]) -> f64 {
    costs.iter().sum()
}

pub fn ordered_total() -> f64 {
    let costs: BTreeMap<String, f64> = BTreeMap::new();
    costs.values().sum()
}

// Fixture: float reductions over unordered sources must fire.
use std::collections::HashMap;

pub fn total_cost() -> f64 {
    let costs: HashMap<String, f64> = HashMap::new();
    costs.values().sum()
}

pub fn folded() -> f64 {
    let m: HashMap<u32, u32> = HashMap::new();
    m.values().fold(0.0, |acc, v| acc + f64::from(*v))
}

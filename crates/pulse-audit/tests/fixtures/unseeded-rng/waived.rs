// Fixture: a justified waiver suppresses the finding on its line.

pub fn protocol_rng() -> SmallRng {
    // audit:allow(unseeded-rng): protocol constant fixed by the paper artifact
    SmallRng::seed_from_u64(2024)
}

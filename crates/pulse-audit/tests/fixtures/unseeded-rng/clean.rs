// Fixture: seeds routed in from the caller stay silent.

pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

pub fn derived(cfg: &Config, run: u64) -> SmallRng {
    SmallRng::seed_from_u64(cfg.base_seed.wrapping_add(run))
}

// Fixture: ambient entropy and hard-coded literal seeds must fire.

pub fn ambient() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn literal_seed() -> SmallRng {
    SmallRng::seed_from_u64(42)
}

// Fixture: iteration over unordered hash containers must fire.
use std::collections::{HashMap, HashSet};

pub fn emit_all(emit: impl FnMut(&u32)) {
    let m: HashMap<u32, u32> = HashMap::new();
    for k in m.keys() {
        emit(k);
    }
}

pub fn first_seen() -> Vec<u32> {
    let s: HashSet<u32> = HashSet::new();
    s.iter().copied().collect()
}

// Fixture: ordered containers and order-insensitive reductions stay silent.
use std::collections::{BTreeMap, HashMap};

pub fn emit_all(emit: impl FnMut(&u32)) {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    for k in m.keys() {
        emit(k);
    }
}

pub fn count_entries() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    m.keys().count()
}

pub fn sorted_keys() -> Vec<u32> {
    let m: HashMap<u32, u32> = HashMap::new();
    let ordered: BTreeMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
    ordered.into_keys().collect()
}

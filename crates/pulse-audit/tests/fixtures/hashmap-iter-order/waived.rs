// Fixture: a justified waiver suppresses the finding on its line.
use std::collections::HashMap;

pub fn merge_counters(mut total: u64) -> u64 {
    let m: HashMap<u32, u64> = HashMap::new();
    // audit:allow(hashmap-iter-order): order-independent saturating merge
    for v in m.values() {
        total = total.saturating_add(*v);
    }
    total
}

// Fixture: synchronized shared state and per-thread locals stay silent.

pub fn run() {
    let total = Mutex::new(0u64);
    let hits = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        s.spawn(|_| {
            let mut local: Vec<u64> = Vec::new();
            local.push(1);
            *total.lock() += 1;
            hits.fetch_add(1, Ordering::Relaxed);
        });
    });
}

// Fixture: unsynchronized mutation of captured state in spawns must fire.

pub fn run() {
    let mut total = 0u64;
    let mut rows: Vec<u64> = Vec::new();
    crossbeam::thread::scope(|s| {
        s.spawn(|_| {
            total += 1;
            rows.push(total);
        });
    });
}

// Fixture: a justified waiver suppresses the finding on its line.

pub fn run() {
    let mut total = 0u64;
    crossbeam::thread::scope(|s| {
        s.spawn(|_| {
            // audit:allow(shared-mut-in-scope): single spawn, joined before any read
            total += 1;
        });
    });
}

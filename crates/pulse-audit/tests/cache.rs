//! End-to-end tests for the incremental cache: a synthetic workspace is
//! written to a temp directory and audited twice through
//! [`pulse_audit::audit_workspace_with`], asserting hit/miss accounting and
//! — more importantly — that cached and fresh runs report identical
//! diagnostics under every invalidation path (file edit, cross-file fact
//! change, corrupted cache file).

// Scratch-workspace helpers sit outside `#[test]` fns, where the
// allow-unwrap-in-tests exemption does not reach.
#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::{Path, PathBuf};

use pulse_audit::{audit_workspace_with, AuditOptions, AuditOutcome};

/// A scratch workspace under the target dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("cache-{tag}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/pulse-core/src")).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, text: &str) {
        fs::write(self.root.join(rel), text).unwrap();
    }

    fn opts(&self) -> AuditOptions {
        AuditOptions {
            cache_path: Some(self.root.join("audit-cache.tsv")),
            jobs: 2,
        }
    }

    fn audit(&self) -> AuditOutcome {
        audit_workspace_with(&self.root, &self.opts()).unwrap()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const LIB_WITH_VIOLATION: &str = "\
//! Scratch crate.
use std::collections::HashMap;

/// Iterates a hash map: flagged by hashmap-iter-order.
pub fn walk(m: &HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for k in m.keys() {
        acc += *k;
    }
    acc
}
";

const HELPER_CLEAN: &str = "\
//! Scratch helper.

/// Adds.
pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
";

fn keyed(out: &AuditOutcome) -> Vec<String> {
    out.diagnostics.iter().map(ToString::to_string).collect()
}

#[test]
fn second_run_is_all_hits_with_identical_diagnostics() {
    let ws = Scratch::new("warm");
    ws.write("crates/pulse-core/src/lib.rs", LIB_WITH_VIOLATION);
    ws.write("crates/pulse-core/src/helper.rs", HELPER_CLEAN);

    let cold = ws.audit();
    assert_eq!(cold.files_scanned, 2);
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 2));
    assert!(
        keyed(&cold)
            .iter()
            .any(|d| d.contains("hashmap-iter-order")),
        "seeded violation not found: {:?}",
        keyed(&cold)
    );

    let warm = ws.audit();
    assert_eq!((warm.cache_hits, warm.cache_misses), (2, 0));
    assert_eq!(keyed(&warm), keyed(&cold));
}

#[test]
fn editing_one_file_invalidates_only_that_file() {
    let ws = Scratch::new("edit");
    ws.write("crates/pulse-core/src/lib.rs", LIB_WITH_VIOLATION);
    ws.write("crates/pulse-core/src/helper.rs", HELPER_CLEAN);
    let cold = ws.audit();

    // An edit that leaves cross-file facts unchanged: only the edited file
    // should miss.
    ws.write(
        "crates/pulse-core/src/helper.rs",
        &format!("{HELPER_CLEAN}\n/// Subtracts.\npub fn sub(a: u32, b: u32) -> u32 {{ a.wrapping_sub(b) }}\n"),
    );
    let warm = ws.audit();
    assert_eq!((warm.cache_hits, warm.cache_misses), (1, 1));
    assert_eq!(keyed(&warm), keyed(&cold));
}

#[test]
fn cross_file_fact_change_invalidates_everything() {
    let ws = Scratch::new("facts");
    ws.write("crates/pulse-core/src/lib.rs", LIB_WITH_VIOLATION);
    ws.write("crates/pulse-core/src/helper.rs", HELPER_CLEAN);
    ws.audit();

    // Adding a hash-returning fn changes the workspace CrossFacts digest,
    // which must re-run rules on every file — a cached file might call it.
    ws.write(
        "crates/pulse-core/src/helper.rs",
        "\
//! Scratch helper.
use std::collections::HashMap;

/// Builds a map: changes the hash-fn fact set.
pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}
",
    );
    let out = ws.audit();
    assert_eq!(
        (out.cache_hits, out.cache_misses),
        (0, 2),
        "digest change must drop every cached entry"
    );
}

#[test]
fn corrupted_cache_is_ignored_not_fatal() {
    let ws = Scratch::new("corrupt");
    ws.write("crates/pulse-core/src/lib.rs", LIB_WITH_VIOLATION);
    let cold = ws.audit();

    fs::write(ws.root.join("audit-cache.tsv"), "not\ta\tcache\n").unwrap();
    let out = ws.audit();
    assert_eq!((out.cache_hits, out.cache_misses), (0, 1));
    assert_eq!(keyed(&out), keyed(&cold));
}

#[test]
fn uncached_options_never_touch_disk() {
    let ws = Scratch::new("nocache");
    ws.write("crates/pulse-core/src/lib.rs", LIB_WITH_VIOLATION);
    let out = audit_workspace_with(&ws.root, &AuditOptions::default()).unwrap();
    assert_eq!((out.cache_hits, out.cache_misses), (0, 1));
    assert!(!ws.root.join("audit-cache.tsv").exists());
}

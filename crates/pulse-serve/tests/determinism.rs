//! The serving determinism suite: bit-identical load generation across
//! seeds, and the pinned serve-vs-replay equivalence — feeding a generated
//! stream through pulse-serve on the simulated clock must match
//! `Runtime::run_with_cluster` over the binned trace bitwise.

use pulse_core::types::PulseConfig;
use pulse_obs::{MemorySink, ObsEvent};
use pulse_runtime::Runtime;
use pulse_serve::engine::{replay, ServeConfig};
use pulse_serve::loadgen::{ArrivalStream, LoadGenConfig, LoadMode};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};

const MODES: [LoadMode; 3] = [
    LoadMode::Poisson { rate_per_min: 4.0 },
    LoadMode::Bursty {
        quiet_min: 7,
        burst_len_min: 3,
        burst_rate: 5.0,
    },
    LoadMode::SelfExciting {
        base_rate: 0.6,
        excitation: 0.8,
        decay: 0.5,
    },
];

fn cfg(mode: LoadMode, seed: u64) -> LoadGenConfig {
    LoadGenConfig {
        functions: 12,
        minutes: 90,
        mode,
        seed,
    }
}

#[test]
fn same_seed_means_bit_identical_streams() {
    for mode in MODES {
        let a = ArrivalStream::generate(&cfg(mode, 42));
        let b = ArrivalStream::generate(&cfg(mode, 42));
        assert_eq!(a, b, "{} stream not reproducible", mode.label());
    }
}

#[test]
fn different_seeds_mean_different_streams() {
    for mode in MODES {
        let a = ArrivalStream::generate(&cfg(mode, 42));
        let b = ArrivalStream::generate(&cfg(mode, 43));
        assert_ne!(a, b, "{} stream ignores the seed", mode.label());
    }
}

/// The pinned tentpole contract: simulated-clock serving of a generated
/// stream is bitwise-identical to `run_with_cluster` on the binned trace —
/// per-request records, keep-alive cost bits, and the billed memory series.
#[test]
fn replay_matches_run_with_cluster_bitwise() {
    for mode in MODES {
        let stream = ArrivalStream::generate(&cfg(mode, 9));
        let families = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let config = ServeConfig::default().with_max_pending(64);

        let mut serve_policy = PulsePolicy::new(families.clone(), PulseConfig::default());
        let served = replay(&stream, families.clone(), &mut serve_policy, &config, None);

        let rt = Runtime::new(stream.trace().clone(), families.clone(), config.runtime);
        let mut batch_policy = PulsePolicy::new(families.clone(), PulseConfig::default());
        let batch = rt.run_with_cluster(&mut batch_policy, &config.plan, &config.cluster);

        assert_eq!(served.records, batch.records, "{}", mode.label());
        assert_eq!(
            served.keepalive_cost_usd.to_bits(),
            batch.keepalive_cost_usd.to_bits(),
            "{}",
            mode.label()
        );
        assert_eq!(
            served.memory_at_tick_mb,
            batch.memory_at_tick_mb,
            "{}",
            mode.label()
        );
        assert_eq!(
            served.shed_requests,
            batch.shed_requests,
            "{}",
            mode.label()
        );
    }
}

/// The equivalence holds for the fixed-keep-alive baseline policy too — the
/// contract is engine-level, not an artifact of one policy.
#[test]
fn replay_matches_run_with_cluster_for_fixed_policy() {
    let stream = ArrivalStream::generate(&cfg(MODES[2], 17));
    let families = round_robin_assignment(&pulse_models::zoo::standard(), 12);
    let config = ServeConfig::default();

    let mut serve_policy = OpenWhiskFixed::new(&families);
    let served = replay(&stream, families.clone(), &mut serve_policy, &config, None);

    let rt = Runtime::new(stream.trace().clone(), families.clone(), config.runtime);
    let mut batch_policy = OpenWhiskFixed::new(&families);
    let batch = rt.run_with_cluster(&mut batch_policy, &config.plan, &config.cluster);

    assert_eq!(served.records, batch.records);
    assert_eq!(
        served.keepalive_cost_usd.to_bits(),
        batch.keepalive_cost_usd.to_bits()
    );
}

/// Traced replays emit the same engine events a traced batch run does — the
/// serve path adds no telemetry of its own on the simulated clock.
#[test]
fn traced_replay_matches_traced_batch_run() {
    let stream = ArrivalStream::generate(&cfg(MODES[0], 23));
    let families = round_robin_assignment(&pulse_models::zoo::standard(), 12);
    let config = ServeConfig::default().with_max_pending(32);

    let mut serve_sink = MemorySink::new();
    let mut serve_policy = PulsePolicy::new(families.clone(), PulseConfig::default());
    let _ = replay(
        &stream,
        families.clone(),
        &mut serve_policy,
        &config,
        Some(&mut serve_sink),
    );

    let mut batch_sink = MemorySink::new();
    let rt = Runtime::new(stream.trace().clone(), families.clone(), config.runtime);
    let mut batch_policy = PulsePolicy::new(families.clone(), PulseConfig::default());
    let mut session = rt.session_traced(
        &mut batch_policy,
        &config.plan,
        config.cluster,
        &mut batch_sink,
    );
    while session.step().is_some() {}
    let _ = session.finish();

    assert!(!serve_sink.events().is_empty());
    assert_eq!(serve_sink.events(), batch_sink.events());
    assert!(serve_sink
        .events()
        .iter()
        .all(|e| !e.kind().starts_with("serve_")));
    // The engine's arrival events line up with the stream itself.
    let arrivals: Vec<u64> = serve_sink
        .events()
        .iter()
        .filter_map(|e| match e {
            ObsEvent::Arrival { at_ms, .. } => Some(*at_ms),
            _ => None,
        })
        .collect();
    let shed: usize = serve_sink
        .events()
        .iter()
        .filter(|e| matches!(e, ObsEvent::Shed { .. }))
        .count();
    assert_eq!(arrivals.len() + shed, stream.len());
}

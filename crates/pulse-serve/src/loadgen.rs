//! Open-loop load generation for the serving front door.
//!
//! The generator is two-layered, mirroring how the engines consume work:
//! each mode first draws a deterministic *per-minute count series* per
//! function (reusing the pulse-trace archetypes, so the load shapes are the
//! same ones the offline evaluation is calibrated on), then expands the
//! counts to millisecond arrivals with
//! [`pulse_runtime::arrival_times_in_minute`] — the runtime's own
//! trace-to-timestamp expansion. Because binning the expanded stream back
//! to minutes recovers the count series exactly, serving a generated stream
//! in simulated-clock mode is bit-identical to `run_with_cluster` on
//! [`ArrivalStream::trace`] (pinned in this crate's determinism tests).
//!
//! Everything is deterministic given [`LoadGenConfig::seed`]: same seed,
//! same mode → byte-identical stream, across machines and reruns.

use pulse_runtime::arrival_times_in_minute;
use pulse_trace::synth::Archetype;
use pulse_trace::{FunctionTrace, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-minute rate above which [`pulse_trace::synth::poisson`]'s O(λ)
/// sampler (and its safety valve) give way to a normal approximation. At
/// λ = 256 the Gaussian approximation error is far below the run-to-run
/// Poisson noise.
const NORMAL_APPROX_THRESHOLD: f64 = 256.0;

/// The arrival-process families the front door can generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Memoryless arrivals at a fixed per-function rate. The only mode that
    /// scales to demo rates (hundreds of thousands of requests per second):
    /// above `NORMAL_APPROX_THRESHOLD` per minute the per-minute count is
    /// drawn from the matching normal approximation instead of the exact
    /// sampler.
    Poisson {
        /// Rate per function per minute.
        rate_per_min: f64,
    },
    /// Quiet stretches punctuated by dense bursts (the pulse-trace
    /// [`Archetype::Bursty`] on/off shape).
    Bursty {
        /// Quiet gap between bursts, minutes.
        quiet_min: u32,
        /// Burst duration, minutes.
        burst_len_min: u32,
        /// Poisson rate per minute during a burst.
        burst_rate: f64,
    },
    /// Hawkes-like self-exciting arrivals ([`Archetype::SelfExciting`]):
    /// every invocation raises the near-future rate, producing the
    /// clustered bursts that stress gap-probability keep-alive policies
    /// hardest.
    SelfExciting {
        /// Background rate per minute.
        base_rate: f64,
        /// Intensity added per invocation, before decay.
        excitation: f64,
        /// Per-minute geometric memory factor, in `[0, 1)`.
        decay: f64,
    },
}

impl LoadMode {
    /// Short mode label for telemetry and function naming.
    pub fn label(&self) -> &'static str {
        match self {
            LoadMode::Poisson { .. } => "poisson",
            LoadMode::Bursty { .. } => "bursty",
            LoadMode::SelfExciting { .. } => "self-exciting",
        }
    }

    /// Draw one function's per-minute count series.
    fn counts(&self, minutes: usize, rng: &mut SmallRng) -> Vec<u32> {
        match *self {
            LoadMode::Poisson { rate_per_min } => {
                assert!(rate_per_min >= 0.0);
                if rate_per_min <= NORMAL_APPROX_THRESHOLD {
                    Archetype::Poisson { rate: rate_per_min }.generate(minutes, rng)
                } else {
                    (0..minutes)
                        .map(|_| high_rate_poisson(rate_per_min, rng))
                        .collect()
                }
            }
            LoadMode::Bursty {
                quiet_min,
                burst_len_min,
                burst_rate,
            } => Archetype::Bursty {
                quiet_min,
                burst_len_min,
                burst_rate,
            }
            .generate(minutes, rng),
            LoadMode::SelfExciting {
                base_rate,
                excitation,
                decay,
            } => Archetype::SelfExciting {
                base_rate,
                excitation,
                decay,
            }
            .generate(minutes, rng),
        }
    }
}

/// Normal approximation to `Poisson(lambda)` for rates where the exact
/// sampler is impractical: `round(lambda + sqrt(lambda) * z)` clamped at
/// zero, with `z` a Box-Muller standard normal.
fn high_rate_poisson(lambda: f64, rng: &mut SmallRng) -> u32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let count = (lambda + lambda.sqrt() * z).round();
    if count <= 0.0 {
        0
    } else {
        count as u32
    }
}

/// What to generate: shape, scale, and the seed everything derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Functions behind the front door.
    pub functions: usize,
    /// Virtual horizon, minutes.
    pub minutes: usize,
    /// Arrival process.
    pub mode: LoadMode,
    /// RNG seed; the stream is a pure function of this config.
    pub seed: u64,
}

/// One request arrival, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time, ms since run start.
    pub at_ms: u64,
    /// Target function index.
    pub func: usize,
}

/// A fully materialized arrival stream plus the minute-binned [`Trace`] it
/// expands — the replay-equivalence anchor: `run_with_cluster` over
/// [`Self::trace`] processes exactly this stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalStream {
    trace: Trace,
    arrivals: Vec<Arrival>,
}

impl ArrivalStream {
    /// Generate the stream for `cfg`. Arrivals come out in the engines'
    /// canonical `(minute, func, offset)` order, which is nondecreasing in
    /// time within a minute and across minutes.
    pub fn generate(cfg: &LoadGenConfig) -> Self {
        assert!(cfg.functions >= 1, "a stream needs at least one function");
        assert!(cfg.minutes >= 1, "a stream needs a nonzero horizon");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let functions: Vec<FunctionTrace> = (0..cfg.functions)
            .map(|f| {
                FunctionTrace::new(
                    format!("{}-{f}", cfg.mode.label()),
                    cfg.mode.counts(cfg.minutes, &mut rng),
                )
            })
            .collect();
        let trace = Trace::new(functions);
        let mut arrivals = Vec::with_capacity(trace.total_invocations() as usize);
        for m in 0..cfg.minutes as u64 {
            for f in 0..cfg.functions {
                for at_ms in arrival_times_in_minute(m, u64::from(trace.function(f).at(m))) {
                    arrivals.push(Arrival { at_ms, func: f });
                }
            }
        }
        Self { trace, arrivals }
    }

    /// The minute-binned view of the stream.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The arrivals, in `(minute, func, offset)` order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Total arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the stream carries no arrivals at all.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Virtual horizon, minutes.
    pub fn minutes(&self) -> usize {
        self.trace.minutes()
    }

    /// Functions behind the front door.
    pub fn n_functions(&self) -> usize {
        self.trace.n_functions()
    }

    /// Split into the binned trace and the owned arrival vector (the live
    /// engine moves the arrivals into the producer thread).
    pub(crate) fn into_parts(self) -> (Trace, Vec<Arrival>) {
        (self.trace, self.arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: LoadMode) -> LoadGenConfig {
        LoadGenConfig {
            functions: 4,
            minutes: 30,
            mode,
            seed: 7,
        }
    }

    const MODES: [LoadMode; 3] = [
        LoadMode::Poisson { rate_per_min: 3.0 },
        LoadMode::Bursty {
            quiet_min: 5,
            burst_len_min: 2,
            burst_rate: 4.0,
        },
        LoadMode::SelfExciting {
            base_rate: 0.5,
            excitation: 0.8,
            decay: 0.5,
        },
    ];

    #[test]
    fn streams_are_nonempty_and_time_ordered() {
        for mode in MODES {
            let s = ArrivalStream::generate(&cfg(mode));
            assert!(!s.is_empty(), "{} generated nothing", mode.label());
            assert!(
                s.arrivals().windows(2).all(|w| w[0].at_ms <= w[1].at_ms
                    || w[0].at_ms / pulse_runtime::MS_PER_MINUTE
                        == w[1].at_ms / pulse_runtime::MS_PER_MINUTE),
                "{} stream departs from canonical order",
                mode.label()
            );
        }
    }

    #[test]
    fn binning_the_stream_recovers_the_trace() {
        for mode in MODES {
            let s = ArrivalStream::generate(&cfg(mode));
            let mut rebinned = vec![vec![0u32; s.minutes()]; s.n_functions()];
            for a in s.arrivals() {
                rebinned[a.func][(a.at_ms / pulse_runtime::MS_PER_MINUTE) as usize] += 1;
            }
            for (f, counts) in rebinned.iter().enumerate() {
                assert_eq!(
                    counts,
                    &s.trace().function(f).per_minute,
                    "{} function {f}",
                    mode.label()
                );
            }
        }
    }

    #[test]
    fn high_rate_poisson_matches_its_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 2_000;
        let total: u64 = (0..n)
            .map(|_| u64::from(high_rate_poisson(100_000.0, &mut rng)))
            .sum();
        let mean = total as f64 / f64::from(n);
        assert!(
            (mean - 100_000.0).abs() < 500.0,
            "mean={mean} far from λ=100000"
        );
    }

    #[test]
    fn high_rate_path_engages_above_the_threshold() {
        let s = ArrivalStream::generate(&LoadGenConfig {
            functions: 2,
            minutes: 3,
            mode: LoadMode::Poisson {
                rate_per_min: 60_000.0,
            },
            seed: 11,
        });
        // The exact sampler's safety valve caps counts at ~10k per minute;
        // the fast path must sail past it.
        assert!(
            s.trace()
                .functions()
                .iter()
                .any(|f| f.per_minute.iter().any(|&c| c > 20_000)),
            "high-rate counts look capped"
        );
    }
}

//! The online serving engine.
//!
//! Transport and policy logic are strictly split:
//!
//! * the **transport** is a bounded `std::sync::mpsc::sync_channel` between
//!   an open-loop producer (the load generator, or the optional TCP ingress
//!   behind the `tcp` feature) and the single consumer thread that owns the
//!   engine. A full channel means arrivals are *dropped at the front door*
//!   and counted — the producer never blocks and nothing queues unbounded;
//! * the **policy logic** is the untouched [`pulse_runtime::RuntimeSession`]:
//!   every admitted request goes through [`RuntimeSession::admit_at`] into
//!   the exact event machinery the offline engines run, including the
//!   engine-side [`AdmissionControl`] backpressure tier.
//!
//! Two clocks, two modes. [`replay`] drives the session on the *simulated*
//! clock only — no wall time touches any decision, which is what makes it
//! bit-identical to [`Runtime::run_with_cluster`] on the binned trace (the
//! determinism suite pins this). [`serve_live`] maps wall time onto the
//! virtual timeline (optionally scaled), so minute ticks — and therefore
//! keep-alive decisions — happen *online*, while requests race in through
//! the channel. Per-decision wall latency is recorded into a pulse-obs
//! [`Histogram`] around each `step`, but never feeds back into any
//! decision: summaries from a live run remain a pure function of the
//! admitted stream.

use crate::loadgen::{Arrival, ArrivalStream};
use pulse_models::ModelFamily;
use pulse_obs::{emit, Histogram, ObsEvent, TraceSink};
use pulse_runtime::{
    AdmissionControl, ClusterConfig, Event, FaultPlan, Runtime, RuntimeConfig, RuntimeSession,
    RuntimeSummary, MS_PER_MINUTE,
};
use pulse_sim::policy::KeepAlivePolicy;
use pulse_trace::{FunctionTrace, Trace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine-side configuration shared by both serve modes.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Capacity cap and admission bound applied inside the engine.
    pub cluster: ClusterConfig,
    /// Fault plan (usually [`FaultPlan::none`]; a request timeout makes the
    /// front door enforce per-request SLO budgets online).
    pub plan: FaultPlan,
    /// Runtime tunables.
    pub runtime: RuntimeConfig,
}

impl ServeConfig {
    /// Bound the engine's pending queue — the admission-control
    /// backpressure tier.
    #[must_use]
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.cluster.admission = AdmissionControl::bounded(max_pending);
        self
    }
}

/// Transport knobs for [`serve_live`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveOptions {
    /// Bound of the ingress channel. A full channel sheds at the front
    /// door.
    pub channel_capacity: usize,
    /// Virtual milliseconds per wall millisecond. `None` runs open-loop at
    /// maximum rate (the producer pushes as fast as the channel accepts);
    /// `Some(s)` paces the producer so virtual time tracks wall time
    /// scaled by `s` (1.0 = real time).
    pub speedup: Option<f64>,
}

impl Default for LiveOptions {
    fn default() -> Self {
        Self {
            channel_capacity: 4096,
            speedup: None,
        }
    }
}

/// What a live serve run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests admitted into the engine.
    pub admitted: u64,
    /// Arrivals dropped at the front door (channel full).
    pub front_door_dropped: u64,
    /// Arrivals shed by the engine's admission control.
    pub engine_shed: u64,
    /// Wall-clock nanoseconds per arrival decision (`step` over an
    /// `Arrival` event).
    pub decision_ns: Histogram,
    /// Wall-clock nanoseconds per minute-tick pipeline run.
    pub tick_ns: Histogram,
    /// Wall-clock duration of the run, ms.
    pub wall_ms: u64,
    /// Admitted requests per wall second.
    pub rps: f64,
    /// The engine summary — a pure function of the admitted stream.
    pub summary: RuntimeSummary,
}

impl ServeReport {
    /// Median per-decision latency, ns (bucket upper bound; 0 if nothing
    /// was admitted).
    pub fn p50_decision_ns(&self) -> u64 {
        self.decision_ns.approx_percentile(50).unwrap_or(0)
    }

    /// p99 per-decision latency, ns (bucket upper bound; 0 if nothing was
    /// admitted).
    pub fn p99_decision_ns(&self) -> u64 {
        self.decision_ns.approx_percentile(99).unwrap_or(0)
    }
}

/// An all-zero trace with the same shape as `trace`: sessions built over it
/// seed only minute ticks, so every arrival is externally admitted — with
/// sequence numbers identical to a trace-seeded run when the stream is
/// admitted in canonical order.
fn zero_trace_like(trace: &Trace) -> Trace {
    Trace::new(
        trace
            .functions()
            .iter()
            .map(|f| FunctionTrace::new(f.name.clone(), vec![0; f.per_minute.len()]))
            .collect(),
    )
}

/// Serve `stream` on the simulated clock: admit the whole stream up front
/// in canonical order, then drain the session. Bit-identical to
/// [`Runtime::run_with_cluster`] over [`ArrivalStream::trace`] with the
/// same policy and configuration (pinned in the determinism suite). With a
/// sink attached, the *engine* events are traced, exactly as a
/// `session_traced` replay would — no serve telemetry is interleaved.
pub fn replay(
    stream: &ArrivalStream,
    families: Vec<ModelFamily>,
    policy: &mut dyn KeepAlivePolicy,
    config: &ServeConfig,
    sink: Option<&mut dyn TraceSink>,
) -> RuntimeSummary {
    let rt = Runtime::new(zero_trace_like(stream.trace()), families, config.runtime);
    let mut session = match sink {
        Some(s) => rt.session_traced(policy, &config.plan, config.cluster, s),
        None => rt.session(policy, &config.plan, config.cluster),
    };
    for a in stream.arrivals() {
        session.admit_at(a.at_ms, a.func);
    }
    while session.step().is_some() {}
    session.finish()
}

/// One timed engine step: wall-clock the decision, classify it, and emit a
/// [`ObsEvent::ServeTick`] when a virtual minute completes.
#[allow(clippy::too_many_arguments)]
fn timed_step(
    session: &mut RuntimeSession<'_>,
    decision_ns: &mut Histogram,
    tick_ns: &mut Histogram,
    admitted: u64,
    dropped: &AtomicU64,
    sink: &mut Option<&mut dyn TraceSink>,
) -> bool {
    let t0 = Instant::now();
    let stepped = session.step();
    let elapsed = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    match stepped {
        Some((_, Event::Arrival { .. })) => decision_ns.record(elapsed),
        Some((_, Event::MinuteTick { minute })) => {
            tick_ns.record(elapsed);
            let shed = session.shed_so_far() + dropped.load(Ordering::Relaxed);
            let queue_depth = session.pending_events();
            emit(sink, || ObsEvent::ServeTick {
                minute,
                admitted,
                shed,
                queue_depth,
            });
        }
        Some(_) => {}
        None => return false,
    }
    true
}

/// Drain every queued engine event with timestamp ≤ `upto`.
fn drain_through(
    session: &mut RuntimeSession<'_>,
    upto: u64,
    decision_ns: &mut Histogram,
    tick_ns: &mut Histogram,
    admitted: u64,
    dropped: &AtomicU64,
    sink: &mut Option<&mut dyn TraceSink>,
) {
    while session.peek_time().is_some_and(|t| t <= upto)
        && timed_step(session, decision_ns, tick_ns, admitted, dropped, sink)
    {}
}

/// Serve `stream` live: an open-loop producer thread pushes arrivals into
/// a bounded channel while this thread admits them into the engine and
/// steps it, recording per-decision wall latency. `mode_label` tags the
/// [`ObsEvent::ServeStart`] telemetry (e.g. `"demo"`, `"live"`).
///
/// Shedding happens at two independent layers, both reported: the channel
/// (front door, counted in [`ServeReport::front_door_dropped`]) and the
/// engine's admission control ([`ServeReport::engine_shed`]).
pub fn serve_live(
    stream: ArrivalStream,
    families: Vec<ModelFamily>,
    policy: &mut dyn KeepAlivePolicy,
    config: &ServeConfig,
    opts: &LiveOptions,
    mode_label: &str,
    mut sink: Option<&mut dyn TraceSink>,
) -> ServeReport {
    let minutes = stream.minutes() as u64;
    let functions = stream.n_functions();
    emit(&mut sink, || ObsEvent::ServeStart {
        minutes,
        functions,
        mode: mode_label.to_string(),
    });

    let (trace, arrivals) = stream.into_parts();
    let rt = Runtime::new(zero_trace_like(&trace), families, config.runtime);
    let mut session = rt.session(policy, &config.plan, config.cluster);

    let (tx, rx) = std::sync::mpsc::sync_channel::<Arrival>(opts.channel_capacity.max(1));
    let dropped = Arc::new(AtomicU64::new(0));
    let producer = spawn_producer(arrivals, tx, Arc::clone(&dropped), opts.speedup);

    let mut decision_ns = Histogram::new();
    let mut tick_ns = Histogram::new();
    let mut admitted = 0u64;
    let mut cursor = 0u64;
    let start = Instant::now();
    loop {
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(a) => {
                // The virtual clock never runs backwards: a request racing
                // in behind an already-processed timestamp is admitted *now*
                // (at the cursor), not into the past.
                cursor = cursor.max(a.at_ms);
                session.admit_at(cursor, a.func);
                admitted += 1;
                drain_through(
                    &mut session,
                    cursor,
                    &mut decision_ns,
                    &mut tick_ns,
                    admitted,
                    &dropped,
                    &mut sink,
                );
            }
            Err(RecvTimeoutError::Timeout) => {
                // A paced lull still advances the virtual clock, so minute
                // ticks (and keep-alive decisions) keep firing on schedule.
                if let Some(speedup) = opts.speedup {
                    let vnow = (start.elapsed().as_secs_f64() * 1_000.0 * speedup) as u64;
                    cursor = cursor.max(vnow.min(minutes * MS_PER_MINUTE));
                    drain_through(
                        &mut session,
                        cursor,
                        &mut decision_ns,
                        &mut tick_ns,
                        admitted,
                        &dropped,
                        &mut sink,
                    );
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Producer done: run the tail of the virtual timeline out.
    while timed_step(
        &mut session,
        &mut decision_ns,
        &mut tick_ns,
        admitted,
        &dropped,
        &mut sink,
    ) {}
    let _ = producer.join();

    let wall = start.elapsed();
    let wall_ms = u64::try_from(wall.as_millis()).unwrap_or(u64::MAX);
    let front_door_dropped = dropped.load(Ordering::Relaxed);
    if front_door_dropped > 0 {
        emit(&mut sink, || ObsEvent::ServeBackpressure {
            at_ms: minutes * MS_PER_MINUTE,
            dropped: front_door_dropped,
        });
    }
    let summary = session.finish();
    let rps = if wall.as_secs_f64() > 0.0 {
        admitted as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    let report = ServeReport {
        admitted,
        front_door_dropped,
        engine_shed: summary.shed_requests,
        decision_ns,
        tick_ns,
        wall_ms,
        rps,
        summary,
    };
    emit(&mut sink, || ObsEvent::ServeSummary {
        admitted: report.admitted,
        shed: report.front_door_dropped + report.engine_shed,
        p50_decision_ns: report.p50_decision_ns(),
        p99_decision_ns: report.p99_decision_ns(),
        wall_ms: report.wall_ms,
        rps: report.rps,
    });
    report
}

/// The open-loop producer: pushes the stream through the bounded channel,
/// never blocking on the consumer — a full channel drops the arrival and
/// counts it. With pacing, the producer sleeps so each arrival is offered
/// no earlier than its virtual timestamp maps to on the wall clock.
fn spawn_producer(
    arrivals: Vec<Arrival>,
    tx: SyncSender<Arrival>,
    dropped: Arc<AtomicU64>,
    speedup: Option<f64>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let start = Instant::now();
        for a in arrivals {
            if let Some(speedup) = speedup {
                let due = Duration::from_secs_f64(a.at_ms as f64 / 1_000.0 / speedup.max(1e-9));
                let elapsed = start.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            match tx.try_send(a) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    dropped.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        // Dropping `tx` disconnects the channel and ends the serve loop.
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{LoadGenConfig, LoadMode};
    use pulse_core::types::PulseConfig;
    use pulse_obs::MemorySink;
    use pulse_sim::assignment::round_robin_assignment;
    use pulse_sim::policies::PulsePolicy;

    fn small_stream(seed: u64) -> ArrivalStream {
        ArrivalStream::generate(&LoadGenConfig {
            functions: 6,
            minutes: 4,
            mode: LoadMode::Poisson { rate_per_min: 50.0 },
            seed,
        })
    }

    #[test]
    fn live_with_roomy_channel_admits_everything() {
        let stream = small_stream(5);
        let total = stream.len() as u64;
        let families = round_robin_assignment(&pulse_models::zoo::standard(), 6);
        let mut policy = PulsePolicy::new(families.clone(), PulseConfig::default());
        let mut sink = MemorySink::new();
        let report = serve_live(
            stream,
            families,
            &mut policy,
            &ServeConfig::default(),
            &LiveOptions {
                channel_capacity: total as usize + 1,
                speedup: None,
            },
            "test",
            Some(&mut sink),
        );
        assert_eq!(report.front_door_dropped, 0);
        assert_eq!(report.admitted, total);
        assert_eq!(report.summary.requests(), total);
        assert_eq!(report.decision_ns.count(), total);
        // Telemetry shape: start first, summary last, one tick per minute.
        let events = sink.events();
        assert!(matches!(
            events.first(),
            Some(ObsEvent::ServeStart {
                minutes: 4,
                functions: 6,
                ..
            })
        ));
        assert!(matches!(events.last(), Some(ObsEvent::ServeSummary { .. })));
        assert_eq!(
            sink.count(|e| matches!(e, ObsEvent::ServeTick { .. })),
            4,
            "one serve_tick per virtual minute"
        );
    }

    #[test]
    fn live_conserves_arrivals_across_the_front_door() {
        let stream = small_stream(6);
        let total = stream.len() as u64;
        let families = round_robin_assignment(&pulse_models::zoo::standard(), 6);
        let mut policy = PulsePolicy::new(families.clone(), PulseConfig::default());
        let mut sink = MemorySink::new();
        let report = serve_live(
            stream,
            families,
            &mut policy,
            &ServeConfig::default().with_max_pending(8),
            &LiveOptions {
                channel_capacity: 1,
                speedup: None,
            },
            "test",
            Some(&mut sink),
        );
        // Every generated arrival is accounted for exactly once: admitted
        // into the engine or dropped at the front door.
        assert_eq!(report.admitted + report.front_door_dropped, total);
        assert_eq!(report.summary.requests(), report.admitted);
        if report.front_door_dropped > 0 {
            assert_eq!(
                sink.count(|e| matches!(e, ObsEvent::ServeBackpressure { .. })),
                1
            );
        }
    }

    #[test]
    fn paced_live_mode_completes_and_ticks() {
        let stream = ArrivalStream::generate(&LoadGenConfig {
            functions: 2,
            minutes: 2,
            mode: LoadMode::Poisson { rate_per_min: 10.0 },
            seed: 8,
        });
        let families = round_robin_assignment(&pulse_models::zoo::standard(), 2);
        let mut policy = PulsePolicy::new(families.clone(), PulseConfig::default());
        let mut sink = MemorySink::new();
        let report = serve_live(
            stream,
            families,
            &mut policy,
            &ServeConfig::default(),
            &LiveOptions {
                channel_capacity: 1024,
                // 1 wall ms = 2 virtual s: the 2-minute horizon takes ~60 ms.
                speedup: Some(2_000.0),
            },
            "test",
            Some(&mut sink),
        );
        assert_eq!(report.front_door_dropped, 0);
        assert_eq!(sink.count(|e| matches!(e, ObsEvent::ServeTick { .. })), 2);
        assert!(report.wall_ms >= 50, "pacing ran faster than the clock");
    }
}

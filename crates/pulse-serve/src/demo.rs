//! The single-box throughput demo: a self-contained harness wiring the load
//! generator, the bounded-channel front door, and the PULSE policy together,
//! sized so `pulse-exp serve --demo` can claim sustained requests-per-second
//! and µs-scale decision latency on one machine.

use crate::engine::{serve_live, LiveOptions, ServeConfig, ServeReport};
use crate::loadgen::{ArrivalStream, LoadGenConfig, LoadMode};
use pulse_core::types::PulseConfig;
use pulse_obs::TraceSink;
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::PulsePolicy;

/// Demo shape. The defaults are deliberately absent — the caller (the CLI)
/// owns rate, duration, and seed, so no literal seed hides in library code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemoConfig {
    /// Target arrival rate, requests per virtual second.
    pub rps: u64,
    /// Virtual seconds of load to generate (`rps * seconds` total arrivals
    /// in expectation).
    pub seconds: u64,
    /// Functions behind the front door (cycled through the model zoo).
    pub functions: usize,
    /// Load-generator seed.
    pub seed: u64,
    /// Engine admission bound (pending-queue backpressure tier).
    pub max_pending: usize,
    /// Ingress channel bound (front-door backpressure tier).
    pub channel_capacity: usize,
}

impl DemoConfig {
    /// Expected total arrivals.
    pub fn expected_arrivals(&self) -> u64 {
        self.rps * self.seconds
    }
}

/// Run the open-loop demo: Poisson arrivals at `cfg.rps`, unthrottled
/// producer, PULSE keep-alive policy online. Serve telemetry
/// (`serve_start` / `serve_tick` / `serve_backpressure` / `serve_summary`)
/// goes to `sink`.
pub fn run_demo(cfg: &DemoConfig, sink: Option<&mut dyn TraceSink>) -> ServeReport {
    assert!(cfg.functions >= 1 && cfg.rps >= 1 && cfg.seconds >= 1);
    // Spread the target volume over whole virtual minutes so the per-minute
    // rate keeps `rps * seconds` total arrivals in expectation even when
    // `seconds` is not a multiple of 60.
    let minutes = cfg.seconds.div_ceil(60).max(1);
    let rate_per_min = cfg.expected_arrivals() as f64 / minutes as f64 / cfg.functions as f64;
    let stream = ArrivalStream::generate(&LoadGenConfig {
        functions: cfg.functions,
        minutes: minutes as usize,
        mode: LoadMode::Poisson { rate_per_min },
        seed: cfg.seed,
    });
    let families = round_robin_assignment(&pulse_models::zoo::standard(), cfg.functions);
    let mut policy = PulsePolicy::new(families.clone(), PulseConfig::default());
    let config = ServeConfig::default().with_max_pending(cfg.max_pending);
    let opts = LiveOptions {
        channel_capacity: cfg.channel_capacity,
        speedup: None,
    };
    serve_live(stream, families, &mut policy, &config, &opts, "demo", sink)
}

//! Online real-time serving for PULSE.
//!
//! The paper's economics only matter if the keep-alive/downgrade decision
//! loop is fast enough to sit on a live request path. This crate promotes
//! the event-driven engine (`pulse-runtime`) into exactly that: a serving
//! front door that admits a live request stream through a bounded channel,
//! drives [`pulse_runtime::RuntimeSession::step`] online, and applies the
//! engine's own admission control as genuine backpressure — arrivals are
//! shed at the front door or at admission, never queued unbounded.
//!
//! Three layers, three modules:
//!
//! * [`loadgen`] — deterministic open-loop load generation (seeded
//!   Poisson, bursty on/off, and Hawkes-like self-exciting arrivals,
//!   reusing the pulse-trace archetypes), expanded to millisecond arrivals
//!   with the runtime's own trace expansion so replays are bit-exact;
//! * [`engine`] — the transport/policy split: a bounded
//!   `sync_channel` front door feeding a [`pulse_runtime::RuntimeSession`],
//!   with wall-clock decision latency recorded into pulse-obs histograms.
//!   [`engine::replay`] runs the same stream on the simulated clock,
//!   bit-identical to `Runtime::run_with_cluster` on the binned trace;
//! * [`demo`] — the single-box throughput demo behind
//!   `pulse-exp serve --demo`.
//!
//! With the `tcp` feature, the `tcp` module adds a thin length-prefixed
//! framing so
//! out-of-process producers can feed the same channel.

pub mod demo;
pub mod engine;
pub mod loadgen;
#[cfg(feature = "tcp")]
pub mod tcp;

pub use demo::{run_demo, DemoConfig};
pub use engine::{replay, serve_live, LiveOptions, ServeConfig, ServeReport};
pub use loadgen::{Arrival, ArrivalStream, LoadGenConfig, LoadMode};

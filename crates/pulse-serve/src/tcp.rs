//! Thin length-prefixed TCP framing for out-of-process ingress (behind the
//! `tcp` feature; std-only).
//!
//! The wire format is deliberately minimal — this is a framing shim, not a
//! protocol: each frame is a 4-byte little-endian payload length followed
//! by the payload, and the only payload today is an arrival
//! (`func: u32 LE, at_ms: u64 LE`, so length 12). The codec is pure
//! (`encode_arrival` / `decode_arrival` / [`FrameReader`]) and tested
//! without sockets; [`spawn_ingress`] bridges accepted connections onto the
//! same bounded channel the in-process load generator uses, so transport
//! backpressure semantics are identical: a full channel drops the arrival
//! at the front door and counts it.

use crate::loadgen::Arrival;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;

/// Payload length of an arrival frame.
pub const ARRIVAL_PAYLOAD_LEN: usize = 12;
/// Hard cap on accepted payload lengths — anything larger is a corrupt or
/// hostile frame and kills the connection.
pub const MAX_PAYLOAD_LEN: u32 = 64;

/// Encode one arrival as a full frame (length prefix + payload).
pub fn encode_arrival(a: &Arrival) -> [u8; 4 + ARRIVAL_PAYLOAD_LEN] {
    let mut buf = [0u8; 4 + ARRIVAL_PAYLOAD_LEN];
    buf[..4].copy_from_slice(&(ARRIVAL_PAYLOAD_LEN as u32).to_le_bytes());
    buf[4..8].copy_from_slice(&u32::try_from(a.func).unwrap_or(u32::MAX).to_le_bytes());
    buf[8..].copy_from_slice(&a.at_ms.to_le_bytes());
    buf
}

/// Decode one arrival payload (the 12 bytes after the length prefix).
pub fn decode_arrival(payload: &[u8]) -> io::Result<Arrival> {
    if payload.len() != ARRIVAL_PAYLOAD_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "arrival payload must be {ARRIVAL_PAYLOAD_LEN} bytes, got {}",
                payload.len()
            ),
        ));
    }
    let mut func = [0u8; 4];
    func.copy_from_slice(&payload[..4]);
    let mut at_ms = [0u8; 8];
    at_ms.copy_from_slice(&payload[4..]);
    Ok(Arrival {
        at_ms: u64::from_le_bytes(at_ms),
        func: u32::from_le_bytes(func) as usize,
    })
}

/// Incremental frame reader over any byte stream.
pub struct FrameReader<R: Read> {
    inner: R,
    payload: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            payload: Vec::with_capacity(ARRIVAL_PAYLOAD_LEN),
        }
    }

    /// Read the next frame's payload; `Ok(None)` on clean EOF at a frame
    /// boundary.
    pub fn next_frame(&mut self) -> io::Result<Option<&[u8]>> {
        let mut len_buf = [0u8; 4];
        match self.inner.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_PAYLOAD_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_PAYLOAD_LEN}-byte cap"),
            ));
        }
        self.payload.resize(len as usize, 0);
        self.inner.read_exact(&mut self.payload)?;
        Ok(Some(&self.payload))
    }

    /// Read and decode the next arrival; `Ok(None)` on clean EOF.
    pub fn next_arrival(&mut self) -> io::Result<Option<Arrival>> {
        match self.next_frame()? {
            Some(payload) => decode_arrival(payload).map(Some),
            None => Ok(None),
        }
    }
}

/// Write one arrival frame to a byte stream.
pub fn write_arrival<W: Write>(w: &mut W, a: &Arrival) -> io::Result<()> {
    w.write_all(&encode_arrival(a))
}

/// Accept connections on `listener` and feed decoded arrivals into the
/// serving channel. Each connection gets its own thread; a full channel
/// drops the arrival and counts it in `dropped` — exactly the front-door
/// backpressure the in-process producer applies. The accept loop ends when
/// the listener errors (e.g. the socket is closed) or the channel
/// disconnects.
pub fn spawn_ingress(
    listener: TcpListener,
    tx: SyncSender<Arrival>,
    dropped: Arc<AtomicU64>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(sock) = conn else { break };
            let tx = tx.clone();
            let dropped = Arc::clone(&dropped);
            std::thread::spawn(move || {
                let mut reader = FrameReader::new(sock);
                while let Ok(Some(a)) = reader.next_arrival() {
                    match tx.try_send(a) {
                        Ok(()) => {}
                        Err(TrySendError::Full(_)) => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            });
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn codec_round_trips() {
        let a = Arrival {
            at_ms: 1_234_567,
            func: 11,
        };
        let frame = encode_arrival(&a);
        assert_eq!(frame.len(), 16);
        assert_eq!(decode_arrival(&frame[4..]).unwrap(), a);
    }

    #[test]
    fn reader_consumes_a_stream_of_frames() {
        let arrivals = [
            Arrival { at_ms: 1, func: 0 },
            Arrival {
                at_ms: 60_001,
                func: 3,
            },
            Arrival {
                at_ms: u64::MAX,
                func: usize::try_from(u32::MAX).unwrap(),
            },
        ];
        let mut bytes = Vec::new();
        for a in &arrivals {
            write_arrival(&mut bytes, a).unwrap();
        }
        let mut reader = FrameReader::new(Cursor::new(bytes));
        for a in &arrivals {
            assert_eq!(reader.next_arrival().unwrap().unwrap(), *a);
        }
        assert_eq!(reader.next_arrival().unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let a = Arrival { at_ms: 5, func: 1 };
        let mut bytes = encode_arrival(&a).to_vec();
        bytes.truncate(9); // length prefix + partial payload
        let mut reader = FrameReader::new(Cursor::new(bytes));
        assert!(reader.next_arrival().is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 128]);
        let mut reader = FrameReader::new(Cursor::new(bytes));
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn wrong_payload_size_is_rejected() {
        assert!(decode_arrival(&[0u8; 5]).is_err());
    }
}

//! The "intelligent solution" oracle (Tables II/III, row 4).
//!
//! "In the fourth approach, we implemented an intelligent solution wherein
//! functions with a higher number of actual invocations during the 10
//! minutes had high-quality models kept alive, while others utilized
//! low-quality models." It is an *oracle*: it reads the trace's future to
//! rank functions — the motivation-section upper bound PULSE approximates
//! with predictions.

use crate::policy::KeepAlivePolicy;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};
use pulse_trace::Trace;

/// Oracle mixing: the top half of functions by *actual* future invocation
/// volume (over each window) keep their highest variant; the rest keep their
/// lowest.
#[derive(Debug, Clone)]
pub struct IntelligentOracle {
    trace: Trace,
    highest: Vec<VariantId>,
    window: u32,
}

impl IntelligentOracle {
    /// Oracle over the trace it will be simulated against (10-minute window).
    pub fn new(families: &[ModelFamily], trace: Trace) -> Self {
        Self::with_window(families, trace, 10)
    }

    /// As [`Self::new`] with a custom window.
    pub fn with_window(families: &[ModelFamily], trace: Trace, window: u32) -> Self {
        assert!(window >= 1);
        assert_eq!(
            families.len(),
            trace.n_functions(),
            "one family per traced function"
        );
        Self {
            trace,
            highest: crate::policy::highest_ids(families),
            window,
        }
    }

    /// Future invocation volume of `f` in `(t, t + window]`.
    fn future_volume(&self, f: FuncId, t: Minute) -> u64 {
        (1..=self.window as u64)
            .map(|m| self.trace.function(f).at(t + m) as u64)
            .sum()
    }

    /// Whether `f` ranks in the top half by future volume at `t` (ties break
    /// toward high quality, matching the balanced-count construction).
    fn is_high(&self, f: FuncId, t: Minute) -> bool {
        let mine = self.future_volume(f, t);
        let busier = (0..self.trace.n_functions())
            .filter(|&g| {
                let v = self.future_volume(g, t);
                v > mine || (v == mine && g < f)
            })
            .count();
        busier < self.trace.n_functions().div_ceil(2)
    }
}

impl KeepAlivePolicy for IntelligentOracle {
    fn name(&self) -> &str {
        "intelligent-oracle"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        let v = if self.is_high(f, t) {
            self.highest[f]
        } else {
            0
        };
        KeepAliveSchedule::constant(t, v, self.window)
    }

    fn cold_start_variant(&mut self, f: FuncId, t: Minute) -> VariantId {
        if self.is_high(f, t) {
            self.highest[f]
        } else {
            0
        }
    }

    fn checkpoint_state(&self) -> Option<String> {
        Some(String::new()) // stateless after construction
    }

    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(()) // stateless after construction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;
    use pulse_trace::FunctionTrace;

    fn setup() -> (Vec<ModelFamily>, Trace) {
        let fams = vec![zoo::gpt(), zoo::bert(), zoo::densenet(), zoo::yolo()];
        // Function 0 busy, 1 quiet, 2 moderately busy, 3 silent after t=0.
        let trace = Trace::new(vec![
            FunctionTrace::new("busy", vec![1, 5, 5, 5, 5, 5, 0, 0, 0, 0, 0, 0]),
            FunctionTrace::new("quiet", vec![1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0]),
            FunctionTrace::new("mid", vec![1, 2, 0, 2, 0, 2, 0, 0, 0, 0, 0, 0]),
            FunctionTrace::new("silent", vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
        ]);
        (fams, trace)
    }

    #[test]
    fn busiest_functions_get_high_quality() {
        let (fams, trace) = setup();
        let mut p = IntelligentOracle::new(&fams, trace);
        // At t=0, future volumes: busy=25, quiet=1, mid=6, silent=0 → top
        // half = {busy, mid}.
        assert_eq!(p.cold_start_variant(0, 0), 2); // GPT highest
        assert_eq!(p.cold_start_variant(2, 0), 2); // DenseNet highest
        assert_eq!(p.cold_start_variant(1, 0), 0);
        assert_eq!(p.cold_start_variant(3, 0), 0);
    }

    #[test]
    fn schedule_matches_rank() {
        let (fams, trace) = setup();
        let mut p = IntelligentOracle::new(&fams, trace);
        let s_busy = p.schedule_on_invocation(0, 0);
        let s_silent = p.schedule_on_invocation(3, 0);
        assert_eq!(s_busy.variant_at_offset(1), Some(2));
        assert_eq!(s_silent.variant_at_offset(1), Some(0));
    }

    #[test]
    fn rank_changes_over_time() {
        let (fams, trace) = setup();
        let mut p = IntelligentOracle::new(&fams, trace);
        // At t=5 the busy function has no future volume left; quiet and mid
        // tie at 0 with everyone — ties break by index, so 0 and 1 are high.
        assert_eq!(p.cold_start_variant(0, 5), 2);
        assert_eq!(p.cold_start_variant(2, 5), 0);
    }

    #[test]
    fn future_window_clips_at_horizon() {
        let (fams, trace) = setup();
        let p = IntelligentOracle::new(&fams, trace);
        assert_eq!(p.future_volume(0, 100), 0);
    }

    #[test]
    #[should_panic(expected = "one family per traced function")]
    fn mismatched_sizes_rejected() {
        let (mut fams, trace) = setup();
        fams.pop();
        IntelligentOracle::new(&fams, trace);
    }
}

//! The ideal-cost oracle (Figure 6b's reference line).
//!
//! "…the ideal value of keep-alive cost, where the model is only kept alive
//! during the time it is invoked." This oracle reads the trace's future and
//! keeps the highest-quality container alive exactly at the minutes when an
//! invocation will arrive — every start is warm, and no idle minute is ever
//! billed. It is unrealizable in practice (it requires perfect foresight)
//! and serves purely as the denominator of the per-minute cost-error series.

use crate::policy::KeepAlivePolicy;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::schedule::Slot;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};
use pulse_trace::Trace;

/// Keep containers alive only at (future) invocation minutes.
#[derive(Debug, Clone)]
pub struct IdealOracle {
    trace: Trace,
    highest: Vec<VariantId>,
    window: u32,
}

impl IdealOracle {
    /// Oracle over the trace it will be simulated against (10-minute window).
    pub fn new(families: &[ModelFamily], trace: Trace) -> Self {
        Self::with_window(families, trace, 10)
    }

    /// As [`Self::new`] with a custom window.
    pub fn with_window(families: &[ModelFamily], trace: Trace, window: u32) -> Self {
        assert!(window >= 1);
        assert_eq!(families.len(), trace.n_functions());
        Self {
            trace,
            highest: crate::policy::highest_ids(families),
            window,
        }
    }
}

impl KeepAlivePolicy for IdealOracle {
    fn name(&self) -> &str {
        "ideal-oracle"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        // Alive exactly at the future invocation minutes within the window:
        // mark invocation minutes with the highest variant and everything in
        // between as a typed hole, trimming the plan at the last invocation
        // minute (the ledger bills only alive slots, so trailing holes would
        // be equivalent but pointless).
        let last_inv = (1..=self.window as u64).rfind(|&m| self.trace.function(f).at(t + m) > 0);
        match last_inv {
            // No future invocation in the window: keep nothing alive.
            None => KeepAliveSchedule::new(t, Vec::new()),
            Some(last) => KeepAliveSchedule::from_slots(
                t,
                (1..=last).map(|m| {
                    if self.trace.function(f).at(t + m) > 0 {
                        Slot::Alive(self.highest[f])
                    } else {
                        Slot::Hole
                    }
                }),
            ),
        }
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.highest[f]
    }

    fn checkpoint_state(&self) -> Option<String> {
        Some(String::new()) // stateless after construction
    }

    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(()) // stateless after construction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;
    use pulse_trace::FunctionTrace;

    fn setup() -> (Vec<ModelFamily>, Trace) {
        let fams = vec![zoo::gpt()];
        let trace = Trace::new(vec![FunctionTrace::new(
            "f",
            vec![1, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0],
        )]);
        (fams, trace)
    }

    #[test]
    fn alive_only_at_invocation_minutes() {
        let (fams, trace) = setup();
        let mut p = IdealOracle::new(&fams, trace);
        let s = p.schedule_on_invocation(0, 0);
        // Future invocations at minutes 2 and 5 → alive there, holes between.
        assert_eq!(s.slot_at_offset(1), Some(Slot::Hole));
        assert_eq!(s.slot_at_offset(2), Some(Slot::Alive(2)));
        assert_eq!(s.slot_at_offset(3), Some(Slot::Hole));
        assert_eq!(s.slot_at_offset(5), Some(Slot::Alive(2)));
        assert_eq!(s.slot_at_offset(6), None); // plan trimmed
    }

    #[test]
    fn no_future_invocations_keeps_nothing() {
        let (fams, trace) = setup();
        let mut p = IdealOracle::new(&fams, trace);
        let s = p.schedule_on_invocation(0, 5);
        assert_eq!(s.window(), 0);
        assert_eq!(s.variant_at_offset(1), None);
    }
}

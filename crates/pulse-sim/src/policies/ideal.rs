//! The ideal-cost oracle (Figure 6b's reference line).
//!
//! "…the ideal value of keep-alive cost, where the model is only kept alive
//! during the time it is invoked." This oracle reads the trace's future and
//! keeps the highest-quality container alive exactly at the minutes when an
//! invocation will arrive — every start is warm, and no idle minute is ever
//! billed. It is unrealizable in practice (it requires perfect foresight)
//! and serves purely as the denominator of the per-minute cost-error series.

use crate::policy::KeepAlivePolicy;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};
use pulse_trace::Trace;

/// Keep containers alive only at (future) invocation minutes.
#[derive(Debug, Clone)]
pub struct IdealOracle {
    trace: Trace,
    highest: Vec<VariantId>,
    window: u32,
}

impl IdealOracle {
    /// Oracle over the trace it will be simulated against (10-minute window).
    pub fn new(families: &[ModelFamily], trace: Trace) -> Self {
        Self::with_window(families, trace, 10)
    }

    /// As [`Self::new`] with a custom window.
    pub fn with_window(families: &[ModelFamily], trace: Trace, window: u32) -> Self {
        assert!(window >= 1);
        assert_eq!(families.len(), trace.n_functions());
        Self {
            trace,
            highest: crate::policy::highest_ids(families),
            window,
        }
    }
}

impl KeepAlivePolicy for IdealOracle {
    fn name(&self) -> &str {
        "ideal-oracle"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        // Alive exactly at the future invocation minutes within the window.
        // We signal "dead" by an empty plan trick: the schedule stores a
        // variant per minute, so we need a per-minute alive/dead notion.
        // The engine treats a minute as dead when the schedule has expired;
        // within a window we cannot express holes, so the ideal oracle
        // instead emits a schedule covering only the prefix up to (and
        // including) each next invocation: here we cover every minute but
        // the engine bills only alive minutes — therefore we emit the full
        // window only when an invocation exists, trimmed to the last
        // invocation minute... Simpler and exactly equivalent for cost
        // accounting: emit a plan whose length runs to the *last* invocation
        // minute in the window, and rely on `variant_at` for coverage.
        let last_inv = (1..=self.window as u64).rfind(|&m| self.trace.function(f).at(t + m) > 0);
        match last_inv {
            // No future invocation in the window: keep nothing alive.
            None => KeepAliveSchedule::new(t, Vec::new()),
            Some(last) => {
                // Alive only at invocation minutes; the engine has no notion
                // of per-minute holes, so we approximate the ideal by a plan
                // covering minutes 1..=last — then subtract the idle minutes
                // by scheduling the *lowest-footprint expression we have*:
                // the engine bills exactly the minutes in the plan, so we
                // emit a plan marking invocation minutes with the highest
                // variant and non-invocation minutes as dead via the
                // dedicated hole marker.
                let plan = (1..=last)
                    .map(|m| {
                        if self.trace.function(f).at(t + m) > 0 {
                            self.highest[f]
                        } else {
                            crate::engine::HOLE
                        }
                    })
                    .collect();
                KeepAliveSchedule::new(t, plan)
            }
        }
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.highest[f]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HOLE;
    use pulse_models::zoo;
    use pulse_trace::FunctionTrace;

    fn setup() -> (Vec<ModelFamily>, Trace) {
        let fams = vec![zoo::gpt()];
        let trace = Trace::new(vec![FunctionTrace::new(
            "f",
            vec![1, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0],
        )]);
        (fams, trace)
    }

    #[test]
    fn alive_only_at_invocation_minutes() {
        let (fams, trace) = setup();
        let mut p = IdealOracle::new(&fams, trace);
        let s = p.schedule_on_invocation(0, 0);
        // Future invocations at minutes 2 and 5 → alive there, holes between.
        assert_eq!(s.variant_at_offset(1), Some(HOLE));
        assert_eq!(s.variant_at_offset(2), Some(2));
        assert_eq!(s.variant_at_offset(3), Some(HOLE));
        assert_eq!(s.variant_at_offset(5), Some(2));
        assert_eq!(s.variant_at_offset(6), None); // plan trimmed
    }

    #[test]
    fn no_future_invocations_keeps_nothing() {
        let (fams, trace) = setup();
        let mut p = IdealOracle::new(&fams, trace);
        let s = p.schedule_on_invocation(0, 5);
        assert_eq!(s.window(), 0);
        assert_eq!(s.variant_at_offset(1), None);
    }
}

//! Constant-variant strategies: all-high and all-low.
//!
//! These are the endpoints of the paper's quality/cost trade-off space
//! (Tables II/III rows 1–2, the "Highest Quality" / "Lowest Quality" corners
//! of Figure 5): keep the same rung of every function's quality ladder alive
//! for the whole fixed window.

use crate::policy::KeepAlivePolicy;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};

/// Which rung a [`FixedVariant`] policy pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Every function keeps its lowest-accuracy variant.
    Lowest,
    /// Every function keeps its highest-accuracy variant.
    Highest,
}

/// Keep one fixed rung of each function's ladder alive for a fixed window.
#[derive(Debug, Clone)]
pub struct FixedVariant {
    variants: Vec<VariantId>,
    window: u32,
    name: &'static str,
}

impl FixedVariant {
    /// All-low strategy over a family assignment (10-minute window).
    pub fn all_low(families: &[ModelFamily]) -> Self {
        Self::pinned(families, Rung::Lowest, 10)
    }

    /// All-high strategy over a family assignment (10-minute window).
    pub fn all_high(families: &[ModelFamily]) -> Self {
        Self::pinned(families, Rung::Highest, 10)
    }

    /// A pinned strategy with a custom window.
    pub fn pinned(families: &[ModelFamily], rung: Rung, window: u32) -> Self {
        assert!(window >= 1);
        let variants = families
            .iter()
            .map(|f| match rung {
                Rung::Lowest => 0,
                Rung::Highest => f.highest_id(),
            })
            .collect();
        Self {
            variants,
            window,
            name: match rung {
                Rung::Lowest => "all-low-quality",
                Rung::Highest => "all-high-quality",
            },
        }
    }
}

impl KeepAlivePolicy for FixedVariant {
    fn name(&self) -> &str {
        self.name
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        KeepAliveSchedule::constant(t, self.variants[f], self.window)
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.variants[f]
    }

    fn checkpoint_state(&self) -> Option<String> {
        Some(String::new()) // stateless after construction
    }

    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(()) // stateless after construction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    #[test]
    fn all_low_pins_zero() {
        let fams = vec![zoo::gpt(), zoo::bert()];
        let mut p = FixedVariant::all_low(&fams);
        assert_eq!(p.cold_start_variant(0, 0), 0);
        assert_eq!(p.schedule_on_invocation(1, 7).variant_at_offset(3), Some(0));
        assert_eq!(p.name(), "all-low-quality");
    }

    #[test]
    fn all_high_pins_top() {
        let fams = vec![zoo::gpt(), zoo::bert()];
        let mut p = FixedVariant::all_high(&fams);
        assert_eq!(p.cold_start_variant(0, 0), 2);
        assert_eq!(p.cold_start_variant(1, 0), 1);
        assert_eq!(p.name(), "all-high-quality");
    }

    #[test]
    fn custom_window_respected() {
        let fams = vec![zoo::densenet()];
        let mut p = FixedVariant::pinned(&fams, Rung::Highest, 4);
        assert_eq!(p.schedule_on_invocation(0, 0).window(), 4);
    }
}

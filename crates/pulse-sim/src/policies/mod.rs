//! Keep-alive policy implementations.
//!
//! * [`openwhisk::OpenWhiskFixed`] — the provider baseline: highest-quality
//!   variant kept alive for a fixed window after every invocation;
//! * [`fixed::FixedVariant`] — all-high / all-low constant strategies
//!   (Tables II/III rows 1–2, Figure 5 endpoints);
//! * [`random_mix::RandomMix`] — balanced random high/low assignment
//!   (Tables II/III row 3);
//! * [`intelligent::IntelligentOracle`] — future-knowledge mixing: functions
//!   with the most invocations in the lookahead window get high-quality
//!   variants (Tables II/III row 4);
//! * [`ideal::IdealOracle`] — containers alive exactly at invocation minutes
//!   (the Figure 6b "ideal keep-alive cost" reference);
//! * [`pulse::PulsePolicy`] — the full PULSE policy (individual + global
//!   optimization), with a switch to disable the global layer (Figure 4).

pub mod capacity;
pub mod fixed;
pub mod ideal;
pub mod intelligent;
pub mod openwhisk;
pub mod pulse;
pub mod random_mix;

pub use capacity::{CapacityPulse, CapacityRandom};
pub use fixed::FixedVariant;
pub use ideal::IdealOracle;
pub use intelligent::IntelligentOracle;
pub use openwhisk::OpenWhiskFixed;
pub use pulse::PulsePolicy;
pub use random_mix::RandomMix;

//! Balanced random high/low mixing (Tables II/III, row 3).
//!
//! "The third approach introduced the concept of blending models of varying
//! qualities, employing random decisions to determine which functions would
//! have high-quality models kept-alive and which would have low-quality
//! models. While these decisions were randomized, we ensured that the number
//! of functions with high-quality and low-quality models kept-alive was
//! balanced."

use crate::policy::KeepAlivePolicy;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Random, balanced assignment of high/low quality per function, fixed for
/// the run.
#[derive(Debug, Clone)]
pub struct RandomMix {
    variants: Vec<VariantId>,
    window: u32,
}

impl RandomMix {
    /// Assign exactly half the functions (rounded up) their highest variant
    /// and the rest their lowest, uniformly at random.
    pub fn new<R: Rng + ?Sized>(families: &[ModelFamily], rng: &mut R) -> Self {
        Self::with_window(families, 10, rng)
    }

    /// As [`Self::new`] with a custom window length.
    pub fn with_window<R: Rng + ?Sized>(
        families: &[ModelFamily],
        window: u32,
        rng: &mut R,
    ) -> Self {
        assert!(window >= 1);
        let n = families.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut variants = vec![0; n];
        for (rank, &f) in order.iter().enumerate() {
            variants[f] = if rank < n.div_ceil(2) {
                families[f].highest_id()
            } else {
                0
            };
        }
        Self { variants, window }
    }

    /// The per-function choices (testing/inspection).
    pub fn variants(&self) -> &[VariantId] {
        &self.variants
    }
}

impl KeepAlivePolicy for RandomMix {
    fn name(&self) -> &str {
        "random-high-low"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        KeepAliveSchedule::constant(t, self.variants[f], self.window)
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.variants[f]
    }

    fn checkpoint_state(&self) -> Option<String> {
        // The random assignment is fixed at construction; a rebuild with the
        // same seed reproduces it, so no state needs to travel.
        Some(String::new())
    }

    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(()) // stateless after construction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn families(n: usize) -> Vec<ModelFamily> {
        (0..n).map(|i| zoo::standard()[i % 5].clone()).collect()
    }

    #[test]
    fn assignment_is_balanced() {
        let fams = families(12);
        let p = RandomMix::new(&fams, &mut SmallRng::seed_from_u64(3));
        let high = p
            .variants()
            .iter()
            .enumerate()
            .filter(|&(f, &v)| v == fams[f].highest_id())
            .count();
        let low = p.variants().iter().filter(|&&v| v == 0).count();
        assert_eq!(high, 6);
        // BERT's highest is 1 and lowest 0, so `low` counts only true lows.
        assert_eq!(high + low, 12);
    }

    #[test]
    fn odd_count_rounds_up_high() {
        let fams = families(5);
        let p = RandomMix::new(&fams, &mut SmallRng::seed_from_u64(3));
        let high = p
            .variants()
            .iter()
            .enumerate()
            .filter(|&(f, &v)| v == fams[f].highest_id() && v != 0)
            .count();
        assert_eq!(high, 3);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let fams = families(12);
        let a = RandomMix::new(&fams, &mut SmallRng::seed_from_u64(1));
        let b = RandomMix::new(&fams, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a.variants(), b.variants());
        let differs = (0..20).any(|s| {
            RandomMix::new(&fams, &mut SmallRng::seed_from_u64(s)).variants() != a.variants()
        });
        assert!(differs);
    }

    #[test]
    fn schedule_uses_assigned_variant() {
        let fams = families(4);
        let mut p = RandomMix::new(&fams, &mut SmallRng::seed_from_u64(9));
        for f in 0..4 {
            let v = p.variants()[f];
            assert_eq!(p.schedule_on_invocation(f, 0).variant_at_offset(1), Some(v));
            assert_eq!(p.cold_start_variant(f, 0), v);
        }
    }
}

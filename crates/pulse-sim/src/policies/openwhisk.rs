//! The OpenWhisk fixed keep-alive baseline.
//!
//! "The performance of PULSE is compared with OpenWhisk's policy, which keeps
//! the function alive for 10 minutes after invocation … OpenWhisk strategy
//! aligns with those of other major commercial serverless providers like
//! AWS, Google, and Azure Functions." The baseline is model-variant-
//! oblivious: it always keeps (and cold-starts) the highest-quality variant.

use crate::policy::KeepAlivePolicy;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};

/// Fixed `window`-minute keep-alive of the highest-quality variant.
#[derive(Debug, Clone)]
pub struct OpenWhiskFixed {
    highest: Vec<VariantId>,
    window: u32,
}

impl OpenWhiskFixed {
    /// Baseline over the given family assignment with the provider-standard
    /// 10-minute window.
    pub fn new(families: &[ModelFamily]) -> Self {
        Self::with_window(families, 10)
    }

    /// Baseline with a custom window (the paper notes the design generalizes
    /// to other durations).
    pub fn with_window(families: &[ModelFamily], window: u32) -> Self {
        assert!(window >= 1);
        Self {
            highest: crate::policy::highest_ids(families),
            window,
        }
    }
}

impl KeepAlivePolicy for OpenWhiskFixed {
    fn name(&self) -> &str {
        "openwhisk-fixed-10min"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        KeepAliveSchedule::constant(t, self.highest[f], self.window)
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.highest[f]
    }

    fn checkpoint_state(&self) -> Option<String> {
        Some(String::new()) // stateless after construction
    }

    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(()) // stateless after construction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    #[test]
    fn keeps_highest_for_full_window() {
        let fams = vec![zoo::gpt(), zoo::bert()];
        let mut p = OpenWhiskFixed::new(&fams);
        let s = p.schedule_on_invocation(0, 100);
        assert_eq!(s.window(), 10);
        for m in 1..=10u64 {
            assert_eq!(s.variant_at_offset(m), Some(2)); // GPT-Large
        }
        let s = p.schedule_on_invocation(1, 100);
        assert_eq!(s.variant_at_offset(5), Some(1)); // BERT-Large
    }

    #[test]
    fn cold_starts_highest() {
        let fams = vec![zoo::gpt()];
        let mut p = OpenWhiskFixed::new(&fams);
        assert_eq!(p.cold_start_variant(0, 5), 2);
    }

    #[test]
    fn custom_window() {
        let fams = vec![zoo::gpt()];
        let mut p = OpenWhiskFixed::with_window(&fams, 3);
        let s = p.schedule_on_invocation(0, 0);
        assert_eq!(s.window(), 3);
    }
}

//! PULSE as a simulator policy.
//!
//! Thin adapter around [`pulse_core::PulseEngine`]: invocations feed the
//! inter-arrival model and return the individual-optimization schedule; the
//! per-minute adjustment hook runs Algorithm 1 + Algorithm 2. The global
//! layer can be disabled to reproduce Figure 4's "individual optimization
//! only" middle ground.

use crate::policy::KeepAlivePolicy;
use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute, PulseConfig};
use pulse_core::PulseEngine;
use pulse_models::{ModelFamily, VariantId};
use pulse_obs::{Record, RecordBuilder};

/// Serialize a [`PulseEngine`]'s mutable state — per-function arrival
/// histories and the priority counts — as a multi-line flat-record document
/// (shared by every policy that embeds an engine).
pub(crate) fn encode_engine_state(engine: &PulseEngine) -> String {
    let (arrivals, counts) = engine.export_state();
    let mut doc = RecordBuilder::new("engine")
        .usize("functions", arrivals.len())
        .u64_list("priority", &counts)
        .finish();
    for a in &arrivals {
        doc.push('\n');
        doc.push_str(
            &RecordBuilder::new("arrivals")
                .u64_list("minutes", a)
                .finish(),
        );
    }
    doc
}

/// Restore a document written by [`encode_engine_state`] into an engine
/// built with the same families and configuration.
pub(crate) fn decode_engine_state(engine: &mut PulseEngine, state: &str) -> Result<(), String> {
    let mut lines = state.lines();
    let head = lines
        .next()
        .ok_or_else(|| "empty engine state".to_string())?;
    let head = Record::parse(head).map_err(|e| e.to_string())?;
    if head.kind() != "engine" {
        return Err(format!("expected engine state, got {:?}", head.kind()));
    }
    let n = head.usize("functions").map_err(|e| e.to_string())?;
    let counts = head.u64_list("priority").map_err(|e| e.to_string())?;
    let mut arrivals = Vec::with_capacity(n);
    for line in lines {
        let rec = Record::parse(line).map_err(|e| e.to_string())?;
        if rec.kind() != "arrivals" {
            return Err(format!("expected arrivals record, got {:?}", rec.kind()));
        }
        arrivals.push(rec.u64_list("minutes").map_err(|e| e.to_string())?);
    }
    if arrivals.len() != n {
        return Err(format!(
            "engine state declares {n} functions but carries {} histories",
            arrivals.len()
        ));
    }
    engine.import_state(arrivals, counts)
}

/// The PULSE keep-alive policy.
#[derive(Debug, Clone)]
pub struct PulsePolicy {
    engine: PulseEngine,
    global_enabled: bool,
    name: String,
}

impl PulsePolicy {
    /// Full PULSE: individual + cross-function optimization.
    pub fn new(families: Vec<ModelFamily>, config: PulseConfig) -> Self {
        Self {
            engine: PulseEngine::new(families, config),
            global_enabled: true,
            name: "pulse".into(),
        }
    }

    /// Individual optimization only (Figure 4b): no peak flattening.
    pub fn without_global(families: Vec<ModelFamily>, config: PulseConfig) -> Self {
        Self {
            engine: PulseEngine::new(families, config),
            global_enabled: false,
            name: "pulse-individual-only".into(),
        }
    }

    /// Access the underlying engine (inspection/testing).
    pub fn engine(&self) -> &PulseEngine {
        &self.engine
    }
}

impl KeepAlivePolicy for PulsePolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.engine.record_invocation(f, t);
        self.engine.schedule_after_invocation(f, t)
    }

    fn cold_start_variant(&mut self, f: FuncId, t: Minute) -> VariantId {
        // A cold start means the individual optimizer had no container alive;
        // the paper's accounting launches the variant the probability model
        // would pick right now, defaulting to the provider-standard highest
        // when the probability of this very minute was high (it wasn't, or
        // we would be warm) — i.e. the honest choice is the highest variant,
        // matching OpenWhisk semantics so accuracy comparisons are fair.
        let _ = t;
        self.engine.family(f).highest_id()
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        if !self.global_enabled {
            return Vec::new();
        }
        // Fill in the invocation probabilities the individual layer derived.
        for m in alive.iter_mut() {
            m.invocation_probability = self.engine.invocation_probability_at(m.func, t);
        }
        match self.engine.check_and_flatten(
            mem_history,
            first_minute_of_period,
            current_kam_mb,
            alive,
        ) {
            Some(outcome) => outcome.actions,
            None => Vec::new(),
        }
    }

    fn checkpoint_state(&self) -> Option<String> {
        Some(encode_engine_state(&self.engine))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        decode_engine_state(&mut self.engine, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn families() -> Vec<ModelFamily> {
        vec![zoo::gpt(), zoo::bert(), zoo::yolo()]
    }

    #[test]
    fn schedules_reflect_learned_cadence() {
        let mut p = PulsePolicy::new(families(), PulseConfig::default());
        let mut s = None;
        for t in [0u64, 4, 8, 12, 16] {
            s = Some(p.schedule_on_invocation(0, t));
        }
        let s = s.unwrap();
        assert_eq!(s.variant_at_offset(4), Some(2), "cadence-4 → highest at 4");
        assert_eq!(s.variant_at_offset(1), Some(0));
    }

    #[test]
    fn cold_start_uses_highest() {
        let mut p = PulsePolicy::new(families(), PulseConfig::default());
        assert_eq!(p.cold_start_variant(0, 3), 2);
        assert_eq!(p.cold_start_variant(1, 3), 1);
    }

    #[test]
    fn global_layer_flattens_peaks() {
        let mut p = PulsePolicy::new(families(), PulseConfig::default());
        let history = vec![1000.0; 30];
        let mut alive = vec![
            AliveModel {
                func: 0,
                variant: 2,
                invocation_probability: 0.0,
            },
            AliveModel {
                func: 1,
                variant: 1,
                invocation_probability: 0.0,
            },
            AliveModel {
                func: 2,
                variant: 2,
                invocation_probability: 0.0,
            },
        ];
        let actions = p.adjust_minute(30, &history, false, 12_000.0, &mut alive);
        assert!(!actions.is_empty());
    }

    #[test]
    fn disabled_global_layer_never_acts() {
        let mut p = PulsePolicy::without_global(families(), PulseConfig::default());
        let history = vec![100.0; 30];
        let mut alive = vec![AliveModel {
            func: 0,
            variant: 2,
            invocation_probability: 0.0,
        }];
        let actions = p.adjust_minute(30, &history, false, 1e9, &mut alive);
        assert!(actions.is_empty());
        assert_eq!(p.name(), "pulse-individual-only");
    }

    #[test]
    fn adjust_fills_invocation_probabilities() {
        let mut p = PulsePolicy::new(families(), PulseConfig::default());
        for t in [0u64, 5, 10, 15] {
            p.schedule_on_invocation(0, t);
        }
        let history = vec![1000.0; 30];
        let mut alive = vec![AliveModel {
            func: 0,
            variant: 2,
            invocation_probability: 0.0,
        }];
        // t = 20 is 5 minutes after the last invocation; P(gap=5)=1 shields
        // the model, but the point here is that Ip was filled in.
        let _ = p.adjust_minute(20, &history, false, 50_000.0, &mut alive);
        // After flattening the entry may have been downgraded/evicted; if it
        // survives, its Ip must be the engine's estimate.
        if let Some(m) = alive.first() {
            assert!(m.invocation_probability > 0.9);
        }
    }
}

//! Hard memory-capacity enforcement (Section III-A's motivation).
//!
//! "The memory, a finite resource for serverless providers, is shared
//! between actual invocations and keep-alive. … During peak memory
//! consumption when total memory consumption exceeds available resources,
//! random functions/models are downgraded, which may result in models with
//! higher-chance of invocation being downgraded while lower-chance models
//! are kept alive."
//!
//! Two enforcers over a hard capacity:
//!
//! * [`CapacityRandom`] — the provider-baseline behaviour: wraps any
//!   scheduling policy and, when keep-alive demand exceeds the capacity,
//!   downgrades *uniformly random* victims until it fits;
//! * [`CapacityPulse`] — PULSE under the same hard cap: schedules with the
//!   individual optimizer and resolves over-capacity minutes with
//!   Algorithm 2's utility-ordered downgrades (the cap acts as the flatten
//!   target).
//!
//! Comparing the two isolates the value of *unbiased, utility-aware*
//! victim selection — the quantified version of the paper's motivating
//! argument.

use super::pulse::{decode_engine_state, encode_engine_state};
use crate::policy::KeepAlivePolicy;
use pulse_core::global::{flatten_peak, AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::priority::PriorityStructure;
use pulse_core::types::{FuncId, Minute, PulseConfig};
use pulse_core::PulseEngine;
use pulse_models::{ModelFamily, VariantId};
use pulse_obs::{Record, RecordBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random-victim capacity enforcement around an inner scheduling policy.
pub struct CapacityRandom<P> {
    inner: P,
    families: Vec<ModelFamily>,
    capacity_mb: f64,
    rng: SmallRng,
}

impl<P: KeepAlivePolicy> CapacityRandom<P> {
    /// Enforce `capacity_mb` over `inner`'s schedules, choosing victims
    /// uniformly at random (seeded for reproducibility).
    pub fn new(inner: P, families: Vec<ModelFamily>, capacity_mb: f64, seed: u64) -> Self {
        assert!(capacity_mb >= 0.0);
        Self {
            inner,
            families,
            capacity_mb,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl<P: KeepAlivePolicy> KeepAlivePolicy for CapacityRandom<P> {
    fn name(&self) -> &str {
        "capacity-random"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.inner.schedule_on_invocation(f, t)
    }

    fn cold_start_variant(&mut self, f: FuncId, t: Minute) -> VariantId {
        self.inner.cold_start_variant(f, t)
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        let mut actions = self.inner.adjust_minute(
            t,
            mem_history,
            first_minute_of_period,
            current_kam_mb,
            alive,
        );
        let mut kam = current_kam_mb;
        while kam > self.capacity_mb && !alive.is_empty() {
            let idx = self.rng.gen_range(0..alive.len());
            let func = alive[idx].func;
            let from = alive[idx].variant;
            let fam = &self.families[func];
            if from > 0 {
                kam -= fam.variant(from).memory_mb - fam.variant(from - 1).memory_mb;
                alive[idx].variant = from - 1;
                actions.push(DowngradeAction::Downgrade {
                    func,
                    from,
                    to: from - 1,
                });
            } else {
                kam -= fam.variant(0).memory_mb;
                alive.swap_remove(idx);
                actions.push(DowngradeAction::Evict { func, from });
            }
        }
        actions
    }

    fn checkpoint_state(&self) -> Option<String> {
        let inner = self.inner.checkpoint_state()?;
        Some(
            RecordBuilder::new("capacity-random")
                .u64_list("rng", &self.rng.state())
                .str("inner", &inner)
                .finish(),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let rec = Record::parse(state).map_err(|e| e.to_string())?;
        if rec.kind() != "capacity-random" {
            return Err(format!(
                "expected capacity-random state, got {:?}",
                rec.kind()
            ));
        }
        let words = rec.u64_list("rng").map_err(|e| e.to_string())?;
        let words: [u64; 4] = words
            .try_into()
            .map_err(|_| "rng cursor must be 4 words".to_string())?;
        self.inner
            .restore_state(rec.str("inner").map_err(|e| e.to_string())?)?;
        self.rng = SmallRng::from_state(words);
        Ok(())
    }
}

/// PULSE under a hard memory cap: the cap replaces the relative peak
/// detector as the flatten trigger/target. Maintains its own priority
/// structure (the engine's is reserved for the relative detector), so
/// victim selection stays unbiased over time.
pub struct CapacityPulse {
    engine: PulseEngine,
    priority: pulse_core::priority::PriorityStructure,
    capacity_mb: f64,
}

impl CapacityPulse {
    /// PULSE scheduling with utility-ordered enforcement of `capacity_mb`.
    pub fn new(families: Vec<ModelFamily>, config: PulseConfig, capacity_mb: f64) -> Self {
        assert!(capacity_mb >= 0.0);
        let n = families.len();
        Self {
            engine: PulseEngine::new(families, config),
            priority: pulse_core::priority::PriorityStructure::new(n),
            capacity_mb,
        }
    }

    /// The per-function downgrade counts accrued so far.
    pub fn priority(&self) -> &pulse_core::priority::PriorityStructure {
        &self.priority
    }
}

impl KeepAlivePolicy for CapacityPulse {
    fn name(&self) -> &str {
        "capacity-pulse"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.engine.record_invocation(f, t);
        self.engine.schedule_after_invocation(f, t)
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.engine.family(f).highest_id()
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        _mem_history: &[f64],
        _first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        if current_kam_mb <= self.capacity_mb {
            return Vec::new();
        }
        for m in alive.iter_mut() {
            m.invocation_probability = self.engine.invocation_probability_at(m.func, t);
        }
        flatten_peak(
            alive,
            self.engine.families(),
            &mut self.priority,
            current_kam_mb,
            self.capacity_mb,
        )
        .actions
    }

    fn checkpoint_state(&self) -> Option<String> {
        Some(
            RecordBuilder::new("capacity-pulse")
                .u64_list("priority", self.priority.counts())
                .str("engine", &encode_engine_state(&self.engine))
                .finish(),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let rec = Record::parse(state).map_err(|e| e.to_string())?;
        if rec.kind() != "capacity-pulse" {
            return Err(format!(
                "expected capacity-pulse state, got {:?}",
                rec.kind()
            ));
        }
        let counts = rec.u64_list("priority").map_err(|e| e.to_string())?;
        if counts.len() != self.priority.len() {
            return Err(format!(
                "expected {} priority counts, got {}",
                self.priority.len(),
                counts.len()
            ));
        }
        decode_engine_state(
            &mut self.engine,
            rec.str("engine").map_err(|e| e.to_string())?,
        )?;
        self.priority = PriorityStructure::from_counts(counts);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::policies::OpenWhiskFixed;
    use pulse_models::zoo;
    use pulse_trace::synth;

    fn setup(capacity_frac: f64) -> (pulse_trace::Trace, Vec<ModelFamily>, f64) {
        let trace = synth::azure_like_12_with_horizon(31, 1500);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        (trace, fams, all_high * capacity_frac)
    }

    #[test]
    fn both_enforcers_respect_the_cap() {
        let (trace, fams, cap) = setup(0.4);
        let sim = Simulator::new(trace, fams.clone());
        let random = sim.run(&mut CapacityRandom::new(
            OpenWhiskFixed::new(&fams),
            fams.clone(),
            cap,
            7,
        ));
        let pulse = sim.run(&mut CapacityPulse::new(
            fams.clone(),
            PulseConfig::default(),
            cap,
        ));
        for m in [&random, &pulse] {
            assert!(
                m.peak_memory_mb() <= cap + 1e-6,
                "{}: peak {} over cap {cap}",
                m.policy,
                m.peak_memory_mb()
            );
        }
        assert!(random.downgrades > 0);
    }

    #[test]
    fn utility_selection_beats_random_on_warm_accuracy_tradeoff() {
        let (trace, fams, cap) = setup(0.35);
        let sim = Simulator::new(trace, fams.clone());
        let random = sim.run(&mut CapacityRandom::new(
            OpenWhiskFixed::new(&fams),
            fams.clone(),
            cap,
            7,
        ));
        let pulse = sim.run(&mut CapacityPulse::new(
            fams.clone(),
            PulseConfig::default(),
            cap,
        ));
        // The paper's motivating claim: random victim selection downgrades
        // models with a high chance of invocation; utility-aware selection
        // protects them, delivering more warm value per unit of memory.
        // Warm-accuracy product is the combined figure of merit.
        let merit = |m: &crate::metrics::RunMetrics| m.warm_fraction() * m.avg_accuracy_pct();
        assert!(
            merit(&pulse) > merit(&random) * 0.98,
            "pulse merit {} vs random merit {}",
            merit(&pulse),
            merit(&random)
        );
        // And it does so at lower keep-alive cost (variant mixing).
        assert!(pulse.keepalive_cost_usd < random.keepalive_cost_usd);
    }

    #[test]
    fn generous_capacity_never_triggers() {
        let (trace, fams, _) = setup(0.4);
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut CapacityRandom::new(
            OpenWhiskFixed::new(&fams),
            fams.clone(),
            f64::INFINITY,
            7,
        ));
        assert_eq!(m.downgrades, 0);
    }

    #[test]
    fn zero_capacity_keeps_nothing_alive() {
        let (trace, fams, _) = setup(0.4);
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut CapacityPulse::new(fams, PulseConfig::default(), 0.0));
        assert_eq!(m.peak_memory_mb(), 0.0);
        assert_eq!(m.keepalive_cost_usd, 0.0);
        // Warm starts can only come from same-minute container reuse; every
        // distinct invocation minute cold-starts.
        let distinct_minutes: u64 = sim
            .trace()
            .functions()
            .iter()
            .map(|f| f.invocation_minutes().len() as u64)
            .sum();
        assert_eq!(m.cold_starts, distinct_minutes);
    }

    #[test]
    fn capacity_pulse_spreads_downgrades_via_priority() {
        let (trace, fams, cap) = setup(0.3);
        let sim = Simulator::new(trace, fams.clone());
        let mut p = CapacityPulse::new(fams.clone(), PulseConfig::default(), cap);
        let _ = sim.run(&mut p);
        let counts: Vec<u64> = (0..fams.len()).map(|f| p.priority().count(f)).collect();
        let victims = counts.iter().filter(|&&c| c > 0).count();
        // Unbiasedness: pressure spreads over many functions, not one.
        assert!(victims >= fams.len() / 2, "victims {victims}: {counts:?}");
    }
}

//! The minute-resolution simulation loop.
//!
//! See the crate docs for the full semantics. The engine owns the keep-alive
//! schedules (one per function, replaced on every invocation), asks the
//! policy for per-minute adjustments, applies downgrades *persistently* (a
//! downgraded schedule never re-raises above the downgraded rung within the
//! same window; an evicted schedule is gone), serves invocations, and meters
//! keep-alive memory and cost.

use crate::metrics::RunMetrics;
use crate::policy::KeepAlivePolicy;
use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::Minute;
use pulse_models::{CostModel, ModelFamily, VariantId};
use pulse_trace::Trace;

/// Marker for a "dead" minute inside a schedule plan: the container is not
/// alive even though the plan covers the minute. Used by oracle policies
/// that keep containers alive at non-contiguous minutes.
pub const HOLE: VariantId = usize::MAX;

/// Trace-driven serverless platform simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    trace: Trace,
    families: Vec<ModelFamily>,
    cost: CostModel,
}

impl Simulator {
    /// Simulator over `trace` with one model family per function and AWS
    /// Lambda pricing.
    pub fn new(trace: Trace, families: Vec<ModelFamily>) -> Self {
        Self::with_cost(trace, families, CostModel::aws_lambda())
    }

    /// Simulator with a custom cost model.
    pub fn with_cost(trace: Trace, families: Vec<ModelFamily>, cost: CostModel) -> Self {
        assert_eq!(
            trace.n_functions(),
            families.len(),
            "one family per traced function"
        );
        Self {
            trace,
            families,
            cost,
        }
    }

    /// The workload driving this simulator.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The family assignment.
    pub fn families(&self) -> &[ModelFamily] {
        &self.families
    }

    /// Alive variant of function `f` at minute `t` per its schedule (`None`
    /// when expired, absent, or a hole).
    fn alive_variant(
        schedules: &[Option<KeepAliveSchedule>],
        f: usize,
        t: Minute,
    ) -> Option<VariantId> {
        schedules[f]
            .as_ref()
            .and_then(|s| s.variant_at(t))
            .filter(|&v| v != HOLE)
    }

    /// Keep-alive memory (MB) at minute `t` from the schedules.
    fn keepalive_memory(&self, schedules: &[Option<KeepAliveSchedule>], t: Minute) -> f64 {
        (0..self.families.len())
            .filter_map(|f| {
                Self::alive_variant(schedules, f, t).map(|v| self.families[f].variant(v).memory_mb)
            })
            .sum()
    }

    /// Run the policy over the whole trace.
    pub fn run(&self, policy: &mut dyn KeepAlivePolicy) -> RunMetrics {
        let minutes = self.trace.minutes();
        let n = self.families.len();
        let mut metrics = RunMetrics::new(policy.name(), minutes);
        let mut schedules: Vec<Option<KeepAliveSchedule>> = vec![None; n];
        // Two memory series: `demand_history` records what the schedules
        // *asked* to keep alive each minute (pre-adjustment) and drives the
        // policy's peak detection — feeding post-flattening values back into
        // the prior would drag the detector's baseline into a death spiral
        // (every flatten lowers the prior, which makes the next minute a
        // "peak" again). `mem_history` records what was actually kept alive
        // (post-adjustment) and drives billing and the reported series.
        let mut demand_history: Vec<f64> = Vec::with_capacity(minutes);
        let mut mem_history: Vec<f64> = Vec::with_capacity(minutes);
        // Algorithm 1's `t == 1` branch applies at the first minute of a
        // keep-alive period — i.e. the minute right after an invocation
        // started a new period. There the prior keep-alive memory is the
        // local-window average (or the last non-zero level after
        // inactivity), not the previous minute, so routine schedule renewals
        // are judged against the steady level rather than minute-to-minute
        // jitter.
        let mut invoked_last_minute = false;

        for t in 0..minutes as Minute {
            // 1. Cross-function adjustment on the pre-invocation alive set.
            let mut alive: Vec<AliveModel> = (0..n)
                .filter_map(|f| {
                    Self::alive_variant(&schedules, f, t).map(|variant| AliveModel {
                        func: f,
                        variant,
                        invocation_probability: 0.0,
                    })
                })
                .collect();
            let current_kam = self.keepalive_memory(&schedules, t);
            let first_minute = invoked_last_minute
                || (current_kam > 0.0 && demand_history.last().is_none_or(|&m| m <= 0.0));
            let actions =
                policy.adjust_minute(t, &demand_history, first_minute, current_kam, &mut alive);
            demand_history.push(current_kam);
            metrics.downgrades += actions.len() as u64;
            for a in &actions {
                // Algorithm 2 downgrades are decisions for the peak minute
                // `t` ("for every time period t classified as peak"): clamp
                // or clear this minute of the schedule only. If the demand
                // is still peaked at t+1 the detector fires again there.
                match *a {
                    DowngradeAction::Downgrade { func, to, .. } => {
                        if let Some(s) = schedules[func].as_mut() {
                            if let Some(v) = s.variant_at(t) {
                                if v != HOLE && v > to {
                                    s.set_variant_at(t, to);
                                }
                            }
                        }
                    }
                    DowngradeAction::Evict { func, .. } => {
                        if let Some(s) = schedules[func].as_mut() {
                            s.set_variant_at(t, HOLE);
                        }
                    }
                }
            }

            // 2. Meter keep-alive memory for this minute *before* serving:
            // the billed footprint is what the schedules keep alive at `t`
            // (post-adjustment). Schedules produced by invocations at `t`
            // begin at `t + 1`, and cold-start execution memory is in-use,
            // not keep-alive.
            let kam = self.keepalive_memory(&schedules, t);

            // 3. Serve invocations.
            invoked_last_minute = false;
            let mut minute_requests = 0u64;
            let mut minute_cold = 0u64;
            for f in 0..n {
                let count = self.trace.function(f).at(t) as u64;
                if count == 0 {
                    continue;
                }
                invoked_last_minute = true;
                minute_requests += count;
                let fam = &self.families[f];
                match Self::alive_variant(&schedules, f, t) {
                    Some(v) => {
                        let spec = fam.variant(v);
                        metrics.service_time_s += spec.warm_service_time_s * count as f64;
                        metrics.accuracy_sum_pct += spec.accuracy_pct * count as f64;
                        metrics.warm_starts += count;
                    }
                    None => {
                        let v = policy.cold_start_variant(f, t);
                        let spec = fam.variant(v);
                        metrics.service_time_s += spec.cold_service_time_s()
                            + spec.warm_service_time_s * (count - 1) as f64;
                        metrics.accuracy_sum_pct += spec.accuracy_pct * count as f64;
                        metrics.cold_starts += 1;
                        minute_cold += 1;
                        metrics.warm_starts += count - 1;
                    }
                }
                schedules[f] = Some(policy.schedule_on_invocation(f, t));
            }

            // 4. Accrue cost and record series.
            let minute_cost = self.cost.keepalive_cost_usd_per_minutes(kam, 1.0);
            metrics.keepalive_cost_usd += minute_cost;
            metrics.memory_series_mb.push(kam);
            metrics.cost_series_usd.push(minute_cost);
            mem_history.push(kam);

            // 5. Report the completed minute back to the policy (a no-op for
            // plain policies; the watchdog wrapper keys off it). A cold
            // start is this engine's SLO violation.
            policy.observe_minute(&crate::policy::MinuteObservation {
                minute: t,
                requests: minute_requests,
                slo_violations: minute_cold,
                keepalive_mb: kam,
            });
        }
        metrics
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;
    use crate::policies::{FixedVariant, IdealOracle, OpenWhiskFixed, PulsePolicy};
    use pulse_core::types::PulseConfig;
    use pulse_models::zoo;
    use pulse_trace::FunctionTrace;

    fn one_func_trace(counts: &[u32]) -> Trace {
        Trace::new(vec![FunctionTrace::new("f", counts.to_vec())])
    }

    #[test]
    fn single_invocation_openwhisk_costs_ten_minutes_of_highest() {
        let trace = one_func_trace(&[0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::gpt()];
        let sim = Simulator::new(trace, fams.clone());
        let mut p = OpenWhiskFixed::new(&fams);
        let m = sim.run(&mut p);
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.warm_starts, 0);
        let spec = fams[0].highest();
        assert!((m.service_time_s - spec.cold_service_time_s()).abs() < 1e-9);
        // Alive minutes 2..=11 → 10 minutes of GPT-Large memory.
        let expected = CostModel::aws_lambda().keepalive_cost_usd_per_minutes(spec.memory_mb, 10.0);
        assert!((m.keepalive_cost_usd - expected).abs() < 1e-12);
        assert!((m.avg_accuracy_pct() - spec.accuracy_pct).abs() < 1e-9);
    }

    #[test]
    fn second_invocation_within_window_is_warm() {
        let trace = one_func_trace(&[1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::bert()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.warm_starts, 1);
        let spec = fams[0].highest();
        let expected = spec.cold_service_time_s() + spec.warm_service_time_s;
        assert!((m.service_time_s - expected).abs() < 1e-9);
    }

    #[test]
    fn invocation_after_window_expiry_is_cold() {
        let mut counts = vec![0u32; 30];
        counts[0] = 1;
        counts[15] = 1; // 15 > 10-minute window
        let trace = one_func_trace(&counts);
        let fams = vec![zoo::bert()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(m.cold_starts, 2);
    }

    #[test]
    fn same_minute_burst_is_one_cold_plus_warms() {
        let trace = one_func_trace(&[5, 0, 0]);
        let fams = vec![zoo::densenet()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.warm_starts, 4);
        assert_eq!(m.invocations(), 5);
    }

    #[test]
    fn all_low_is_cheaper_and_less_accurate_than_all_high() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(5, 2000);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let high = sim.run(&mut FixedVariant::all_high(&fams));
        let low = sim.run(&mut FixedVariant::all_low(&fams));
        assert!(low.keepalive_cost_usd < high.keepalive_cost_usd);
        assert!(low.avg_accuracy_pct() < high.avg_accuracy_pct());
        assert!(low.service_time_s < high.service_time_s);
        // Equal warm-start opportunity: both keep *something* alive 10 min.
        assert_eq!(low.invocations(), high.invocations());
        assert_eq!(low.cold_starts, high.cold_starts);
    }

    #[test]
    fn ideal_oracle_never_cold_after_first_and_bills_invocation_minutes_only() {
        let trace = one_func_trace(&[1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::gpt()];
        let sim = Simulator::new(trace.clone(), fams.clone());
        let m = sim.run(&mut IdealOracle::new(&fams, trace));
        assert_eq!(m.cold_starts, 1); // only the very first
        assert_eq!(m.warm_starts, 2);
        // Keep-alive billed exactly at the two warm invocation minutes.
        let spec = fams[0].highest();
        let expected = CostModel::aws_lambda().keepalive_cost_usd_per_minutes(spec.memory_mb, 2.0);
        assert!(
            (m.keepalive_cost_usd - expected).abs() < 1e-12,
            "{} vs {expected}",
            m.keepalive_cost_usd
        );
    }

    #[test]
    fn memory_series_tracks_schedule_lifetimes() {
        let trace = one_func_trace(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::bert()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        let mem = fams[0].highest().memory_mb;
        assert_eq!(m.memory_series_mb.len(), 15);
        assert_eq!(m.memory_series_mb[0], 0.0); // invocation minute: schedule starts at 1
        for t in 1..=10 {
            assert!((m.memory_series_mb[t] - mem).abs() < 1e-9, "t={t}");
        }
        assert_eq!(m.memory_series_mb[11], 0.0);
    }

    #[test]
    fn pulse_flattens_a_synchronized_burst() {
        // 12 functions all invoked at minute 0 and from minute 30 in a
        // staggered steady pattern, then all at once at minute 60 (peak).
        let mut fs = Vec::new();
        for i in 0..12 {
            let mut v = vec![0u32; 120];
            for t in (i % 4..55).step_by(4) {
                v[t] = 1;
            }
            v[60] = 3;
            fs.push(FunctionTrace::new(format!("f{i}"), v));
        }
        let trace = Trace::new(fs);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let pulse = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let no_global = sim.run(&mut PulsePolicy::without_global(
            fams.clone(),
            PulseConfig::default(),
        ));
        assert!(pulse.downgrades > 0, "peak must trigger downgrades");
        assert_eq!(no_global.downgrades, 0);
        assert!(pulse.peak_memory_mb() <= no_global.peak_memory_mb());
    }

    #[test]
    fn pulse_cheaper_than_openwhisk_on_mixed_workload() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(9, 4000);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let ow = sim.run(&mut OpenWhiskFixed::new(&fams));
        let pu = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        assert!(
            pu.keepalive_cost_usd < ow.keepalive_cost_usd,
            "pulse {} !< openwhisk {}",
            pu.keepalive_cost_usd,
            ow.keepalive_cost_usd
        );
        // Accuracy within a few percent of the all-high baseline.
        assert!(ow.avg_accuracy_pct() - pu.avg_accuracy_pct() < 5.0);
    }

    #[test]
    fn downgrade_applies_to_the_peak_minute_only() {
        use crate::policy::KeepAlivePolicy;
        use pulse_core::global::DowngradeAction;

        // A policy that downgrades function 0 to rung 0 at minute 3.
        struct OneShotDowngrade {
            inner: OpenWhiskFixed,
            fired: bool,
        }
        impl KeepAlivePolicy for OneShotDowngrade {
            fn name(&self) -> &str {
                "one-shot"
            }
            fn schedule_on_invocation(&mut self, f: usize, t: Minute) -> KeepAliveSchedule {
                self.inner.schedule_on_invocation(f, t)
            }
            fn cold_start_variant(&mut self, f: usize, t: Minute) -> VariantId {
                self.inner.cold_start_variant(f, t)
            }
            fn adjust_minute(
                &mut self,
                t: Minute,
                _h: &[f64],
                _first: bool,
                _kam: f64,
                alive: &mut Vec<AliveModel>,
            ) -> Vec<DowngradeAction> {
                if t == 3 && !self.fired {
                    self.fired = true;
                    if let Some(m) = alive.iter_mut().find(|m| m.func == 0) {
                        let from = m.variant;
                        m.variant = 0;
                        return vec![DowngradeAction::Downgrade {
                            func: 0,
                            from,
                            to: 0,
                        }];
                    }
                }
                Vec::new()
            }
        }

        let trace = one_func_trace(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::gpt()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OneShotDowngrade {
            inner: OpenWhiskFixed::new(&fams),
            fired: false,
        });
        let high = fams[0].highest().memory_mb;
        let low = fams[0].lowest().memory_mb;
        // Only minute 3 (the "peak") is clamped to the low rung; the rest of
        // the window keeps the scheduled high rung.
        assert!((m.memory_series_mb[2] - high).abs() < 1e-9);
        assert!((m.memory_series_mb[3] - low).abs() < 1e-9);
        for t in 4..=10 {
            assert!((m.memory_series_mb[t] - high).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "one family per traced function")]
    fn mismatched_assignment_rejected() {
        Simulator::new(one_func_trace(&[1]), vec![]);
    }
}

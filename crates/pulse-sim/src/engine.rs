//! The minute-resolution simulation loop.
//!
//! See the crate docs for the full semantics. The engine drives a
//! [`pulse_core::schedule::ScheduleLedger`] — the shared substrate that owns
//! keep-alive schedules (one per function, replaced on every invocation),
//! slot typing, downgrade/eviction application and footprint metering — asks
//! the policy for per-minute adjustments, serves invocations, and accounts
//! cost and accuracy.
//!
//! [`Simulator::run`] consumes the whole trace in one call; the same loop is
//! available one minute at a time through [`Simulator::session`] /
//! [`SimSession::step_minute`] for callers that interleave simulation with
//! other work (live dashboards, co-simulation, the cross-engine equivalence
//! tests).

use crate::metrics::RunMetrics;
use crate::policy::KeepAlivePolicy;
use crate::recover::{
    check_fingerprint, decode_ledger_row, decode_metrics, encode_ledger, encode_metrics,
    fingerprint_of, RecoverError, SNAPSHOT_VERSION,
};
use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::schedule::{begins_keepalive_period, MinuteFootprint, ScheduleLedger};
use pulse_core::types::Minute;
use pulse_models::{CostModel, ModelFamily};
use pulse_obs::{emit, ActionSource, ObsEvent, Record, RecordBuilder, TraceSink};
use pulse_trace::Trace;

/// Trace-driven serverless platform simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    trace: Trace,
    families: Vec<ModelFamily>,
    cost: CostModel,
}

impl Simulator {
    /// Simulator over `trace` with one model family per function and AWS
    /// Lambda pricing.
    pub fn new(trace: Trace, families: Vec<ModelFamily>) -> Self {
        Self::with_cost(trace, families, CostModel::aws_lambda())
    }

    /// Simulator with a custom cost model.
    pub fn with_cost(trace: Trace, families: Vec<ModelFamily>, cost: CostModel) -> Self {
        assert_eq!(
            trace.n_functions(),
            families.len(),
            "one family per traced function"
        );
        Self {
            trace,
            families,
            cost,
        }
    }

    /// The workload driving this simulator.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The family assignment.
    pub fn families(&self) -> &[ModelFamily] {
        &self.families
    }

    /// Begin a steppable run of `policy` over the trace. Call
    /// [`SimSession::step_minute`] until it returns `None` (or stop early),
    /// then [`SimSession::finish`] for the metrics; [`Self::run`] is exactly
    /// this loop.
    pub fn session<'a>(&'a self, policy: &'a mut dyn KeepAlivePolicy) -> SimSession<'a> {
        self.session_impl(policy, None)
    }

    /// [`Self::session`] with a [`TraceSink`] attached: every adjust, serve,
    /// bill, downgrade/eviction and watchdog transition is emitted as a
    /// typed [`ObsEvent`]. With a disabled sink (e.g.
    /// [`pulse_obs::NullSink`]) the run is bit-identical to the un-traced
    /// one — sinks observe, they never steer.
    pub fn session_traced<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        sink: &'a mut dyn TraceSink,
    ) -> SimSession<'a> {
        self.session_impl(policy, Some(sink))
    }

    fn session_impl<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> SimSession<'a> {
        let minutes = self.trace.minutes();
        SimSession {
            sim: self,
            metrics: RunMetrics::new(policy.name(), minutes),
            policy,
            ledger: ScheduleLedger::for_families(&self.families),
            fp: MinuteFootprint::default(),
            alive_scratch: Vec::new(),
            demand_history: Vec::with_capacity(minutes),
            invoked_last_minute: false,
            next: 0,
            minutes: minutes as Minute,
            sink,
            prev_fallback: false,
        }
    }

    /// Run the policy over the whole trace.
    pub fn run(&self, policy: &mut dyn KeepAlivePolicy) -> RunMetrics {
        let mut session = self.session(policy);
        while session.step_minute().is_some() {}
        session.finish()
    }

    /// [`Self::run`] with a [`TraceSink`] attached (see
    /// [`Self::session_traced`] for the event contract).
    pub fn run_traced(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        sink: &mut dyn TraceSink,
    ) -> RunMetrics {
        let mut session = self.session_traced(policy, sink);
        while session.step_minute().is_some() {}
        session.finish()
    }

    /// Fingerprint of this simulator's workload identity (trace + families
    /// + cost model) — stamped into snapshots and checked on restore.
    fn workload_fingerprint(&self) -> u64 {
        fingerprint_of(&(&self.trace, &self.families, &self.cost))
    }

    /// Resume a run killed after [`SimSession::snapshot`]: rebuild the
    /// session so that stepping it to completion is bit-identical to the
    /// uninterrupted run. `policy` must be freshly constructed with the same
    /// arguments as the snapshotted one (same seeds/config); its learned
    /// state is re-injected through
    /// [`KeepAlivePolicy::restore_state`]. Fails soft with a typed
    /// [`RecoverError`] on version skew, corruption, or a workload/policy
    /// mismatch.
    pub fn restore_session<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        snapshot: &str,
    ) -> Result<SimSession<'a>, RecoverError> {
        self.restore_session_impl(policy, snapshot, None)
    }

    /// [`Self::restore_session`] with a [`TraceSink`] attached: events
    /// re-emitted by the resumed run continue the stream exactly where the
    /// killed run's journal left off.
    pub fn restore_session_traced<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        snapshot: &str,
        sink: &'a mut dyn TraceSink,
    ) -> Result<SimSession<'a>, RecoverError> {
        self.restore_session_impl(policy, snapshot, Some(sink))
    }

    fn restore_session_impl<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        snapshot: &str,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Result<SimSession<'a>, RecoverError> {
        let c = |e: pulse_obs::ParseError| RecoverError::corrupt(e);
        let mut lines = snapshot.lines().filter(|l| !l.trim().is_empty());
        let head = lines
            .next()
            .ok_or_else(|| RecoverError::corrupt("empty snapshot"))?;
        let head = Record::parse(head).map_err(c)?;
        if head.kind() != "snapshot" {
            return Err(RecoverError::corrupt(format!(
                "expected a snapshot header, got {:?}",
                head.kind()
            )));
        }
        let version = head.u64("version").map_err(c)?;
        if version != SNAPSHOT_VERSION {
            return Err(RecoverError::VersionSkew {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let engine = head.str("engine").map_err(c)?;
        if engine != "sim" {
            return Err(RecoverError::corrupt(format!(
                "snapshot is for the {engine:?} engine, not \"sim\""
            )));
        }
        check_fingerprint(
            "workload",
            head.u64("workload").map_err(c)?,
            self.workload_fingerprint(),
        )?;
        let expected_policy = head.str("policy").map_err(c)?;
        if expected_policy != policy.name() {
            return Err(RecoverError::PolicyMismatch {
                expected: expected_policy.to_string(),
                found: policy.name().to_string(),
            });
        }

        let mut metrics = None;
        let mut demand_history = None;
        let mut ledger = ScheduleLedger::for_families(&self.families);
        let mut policy_state = None;
        for line in lines {
            let rec = Record::parse(line).map_err(c)?;
            match rec.kind() {
                "metrics" => metrics = Some(decode_metrics(&rec)?),
                "demand" => {
                    demand_history = Some(rec.f64_list("history").map_err(c)?);
                }
                "policy" => policy_state = Some(rec.str("state").map_err(c)?.to_string()),
                "sched" => decode_ledger_row(&mut ledger, &rec)?,
                other => {
                    return Err(RecoverError::corrupt(format!(
                        "unknown snapshot row kind {other:?}"
                    )))
                }
            }
        }
        let metrics =
            metrics.ok_or_else(|| RecoverError::corrupt("snapshot lacks a metrics row"))?;
        let demand_history =
            demand_history.ok_or_else(|| RecoverError::corrupt("snapshot lacks a demand row"))?;
        let state =
            policy_state.ok_or_else(|| RecoverError::corrupt("snapshot lacks a policy row"))?;
        policy
            .restore_state(&state)
            .map_err(RecoverError::corrupt)?;

        Ok(SimSession {
            sim: self,
            policy,
            metrics,
            ledger,
            fp: MinuteFootprint::default(),
            alive_scratch: Vec::new(),
            demand_history,
            invoked_last_minute: head.bool("invoked").map_err(c)?,
            next: head.u64("next").map_err(c)?,
            minutes: self.trace.minutes() as Minute,
            sink,
            prev_fallback: head.bool("fallback").map_err(c)?,
        })
    }
}

/// An in-flight minute-engine run: the trace is consumed one minute per
/// [`Self::step_minute`] call, against the shared
/// [`ScheduleLedger`] substrate.
pub struct SimSession<'a> {
    sim: &'a Simulator,
    policy: &'a mut dyn KeepAlivePolicy,
    metrics: RunMetrics,
    ledger: ScheduleLedger,
    /// Session-owned footprint buffer, refilled in place each minute by
    /// [`ScheduleLedger::fill_minute_footprint`] (no per-minute Vec churn).
    fp: MinuteFootprint,
    /// Session-owned copy of the alive set handed to the policy (which may
    /// mutate it arbitrarily while selecting victims).
    alive_scratch: Vec<AliveModel>,
    // `demand_history` records what the schedules *asked* to keep alive each
    // minute (pre-adjustment) and drives the policy's peak detection —
    // feeding post-flattening values back into the prior would drag the
    // detector's baseline into a death spiral (every flatten lowers the
    // prior, which makes the next minute a "peak" again). What was actually
    // kept alive (post-adjustment) drives billing and the reported series.
    demand_history: Vec<f64>,
    invoked_last_minute: bool,
    next: Minute,
    minutes: Minute,
    /// Attached observer, if any. Disabled/absent sinks cost one branch per
    /// emission point and change nothing else (the transparency contract).
    sink: Option<&'a mut dyn TraceSink>,
    /// Watchdog state after the last observation (for transition events).
    prev_fallback: bool,
}

impl SimSession<'_> {
    /// The minute the next [`Self::step_minute`] call will simulate (equals
    /// the horizon once the trace is exhausted).
    pub fn next_minute(&self) -> Minute {
        self.next
    }

    /// The ledger's current schedule state.
    pub fn ledger(&self) -> &ScheduleLedger {
        &self.ledger
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Simulate one minute: cross-function adjustment, then serving, then
    /// billing/observation. Returns the minute processed, or `None` once the
    /// trace is exhausted.
    pub fn step_minute(&mut self) -> Option<Minute> {
        if self.next >= self.minutes {
            return None;
        }
        let t = self.next;
        self.next += 1;

        let kam = self.stage_adjust(t);
        let (requests, cold) = self.stage_serve(t);
        self.stage_bill_and_observe(t, kam, requests, cold);
        // Minute `t` is fully billed: drop its index state so the ledger
        // tracks only the live keep-alive horizon.
        self.ledger.retire_minutes_before(self.next);
        Some(t)
    }

    /// Drive the run to completion and return the metrics ([`Simulator::run`]).
    pub fn finish(self) -> RunMetrics {
        self.metrics
    }

    /// Capture the full resumable state of this run as a versioned snapshot
    /// document. Restoring it with [`Simulator::restore_session`] (same
    /// workload, a fresh same-seeded policy) and stepping to completion is
    /// bit-identical to never having stopped. Fails with
    /// [`RecoverError::NotCheckpointable`] when the policy cannot export its
    /// state.
    pub fn snapshot(&self) -> Result<String, RecoverError> {
        let state =
            self.policy
                .checkpoint_state()
                .ok_or_else(|| RecoverError::NotCheckpointable {
                    policy: self.policy.name().to_string(),
                })?;
        let mut doc = RecordBuilder::new("snapshot")
            .u64("version", SNAPSHOT_VERSION)
            .str("engine", "sim")
            .u64("workload", self.sim.workload_fingerprint())
            .str("policy", self.policy.name())
            .u64("next", self.next)
            .bool("invoked", self.invoked_last_minute)
            .bool("fallback", self.prev_fallback)
            .finish();
        doc.push('\n');
        doc.push_str(&encode_metrics(&self.metrics));
        doc.push('\n');
        doc.push_str(
            &RecordBuilder::new("demand")
                .f64_list("history", &self.demand_history)
                .finish(),
        );
        doc.push('\n');
        doc.push_str(&RecordBuilder::new("policy").str("state", &state).finish());
        encode_ledger(&mut doc, &self.ledger);
        Ok(doc)
    }

    /// Stage 1: cross-function adjustment on the pre-invocation alive set,
    /// then re-meter. Returns the billed keep-alive memory of the minute —
    /// what the schedules keep alive at `t` post-adjustment. (Schedules
    /// produced by invocations at `t` begin at `t + 1`, and cold-start
    /// execution memory is in-use, not keep-alive.)
    fn stage_adjust(&mut self, t: Minute) -> f64 {
        self.ledger
            .fill_minute_footprint(&self.sim.families, t, &mut self.fp);
        self.alive_scratch.clone_from(&self.fp.alive);
        let current_kam = self.fp.total_mb;
        let first_minute =
            begins_keepalive_period(self.invoked_last_minute, current_kam, &self.demand_history);
        let actions = self.policy.adjust_minute(
            t,
            &self.demand_history,
            first_minute,
            current_kam,
            &mut self.alive_scratch,
        );
        self.demand_history.push(current_kam);
        self.metrics.downgrades += actions.len() as u64;
        // Apply action-by-action (the exact loop `apply_actions` runs) so
        // each one's applied/ignored outcome can be reported.
        let mut applied = 0usize;
        for a in &actions {
            let moved = self.ledger.apply_action(t, a);
            applied += usize::from(moved);
            emit(&mut self.sink, || match *a {
                DowngradeAction::Downgrade { func, from, to } => ObsEvent::Downgrade {
                    minute: t,
                    func,
                    from,
                    to,
                    source: ActionSource::Policy,
                    applied: moved,
                },
                DowngradeAction::Evict { func, from } => ObsEvent::Evict {
                    minute: t,
                    func,
                    from,
                    source: ActionSource::Policy,
                    applied: moved,
                },
            });
        }
        emit(&mut self.sink, || ObsEvent::Adjust {
            minute: t,
            requested: actions.len(),
            applied,
            keepalive_mb: current_kam,
        });
        // Post-action re-meter: the incremental pin re-sums only this
        // minute's (mutated) alive set, bit-identical to the legacy
        // `keep_alive_mb_at` full sweep.
        self.ledger.metered_kam_mb(&self.sim.families, t)
    }

    /// Stage 2: serve the minute's invocations; warm starts ride the alive
    /// variant, a cold start launches the policy's choice (same-minute
    /// followers reuse it warm), and every invoked function gets a fresh
    /// schedule. Returns `(requests, cold starts)` for the minute.
    fn stage_serve(&mut self, t: Minute) -> (u64, u64) {
        self.invoked_last_minute = false;
        let mut minute_requests = 0u64;
        let mut minute_cold = 0u64;
        for f in 0..self.sim.families.len() {
            let count = self.sim.trace.function(f).at(t) as u64;
            if count == 0 {
                continue;
            }
            self.invoked_last_minute = true;
            minute_requests += count;
            let fam = &self.sim.families[f];
            let alive = self.ledger.alive_variant_at(f, t);
            match alive {
                Some(v) => {
                    let spec = fam.variant(v);
                    self.metrics.service_time_s += spec.warm_service_time_s * count as f64;
                    self.metrics.accuracy_sum_pct += spec.accuracy_pct * count as f64;
                    self.metrics.warm_starts += count;
                }
                None => {
                    let v = self.policy.cold_start_variant(f, t);
                    let spec = fam.variant(v);
                    self.metrics.service_time_s +=
                        spec.cold_service_time_s() + spec.warm_service_time_s * (count - 1) as f64;
                    self.metrics.accuracy_sum_pct += spec.accuracy_pct * count as f64;
                    self.metrics.cold_starts += 1;
                    minute_cold += 1;
                    self.metrics.warm_starts += count - 1;
                }
            }
            emit(&mut self.sink, || ObsEvent::Serve {
                minute: t,
                func: f,
                requests: count,
                cold_starts: u64::from(alive.is_none()),
            });
            self.ledger
                .replace(f, self.policy.schedule_on_invocation(f, t));
        }
        (minute_requests, minute_cold)
    }

    /// Stage 3: accrue cost, record the per-minute series, and report the
    /// completed minute back to the policy (a no-op for plain policies; the
    /// watchdog wrapper keys off it). A cold start is this engine's SLO
    /// violation.
    fn stage_bill_and_observe(&mut self, t: Minute, kam: f64, requests: u64, cold: u64) {
        let minute_cost = self.sim.cost.keepalive_cost_usd_per_minutes(kam, 1.0);
        self.metrics.keepalive_cost_usd += minute_cost;
        self.metrics.memory_series_mb.push(kam);
        self.metrics.cost_series_usd.push(minute_cost);
        emit(&mut self.sink, || ObsEvent::Bill {
            minute: t,
            keepalive_mb: kam,
            cost_usd: minute_cost,
        });
        self.policy
            .observe_minute(&crate::policy::MinuteObservation {
                minute: t,
                requests,
                slo_violations: cold,
                keepalive_mb: kam,
            });
        let fb = self.policy.in_fallback();
        if fb != self.prev_fallback {
            self.prev_fallback = fb;
            emit(&mut self.sink, || ObsEvent::Watchdog {
                minute: t,
                fallback: fb,
            });
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;
    use crate::policies::{FixedVariant, IdealOracle, OpenWhiskFixed, PulsePolicy};
    use pulse_core::global::AliveModel;
    use pulse_core::individual::KeepAliveSchedule;
    use pulse_core::types::PulseConfig;
    use pulse_models::{zoo, VariantId};
    use pulse_trace::FunctionTrace;

    fn one_func_trace(counts: &[u32]) -> Trace {
        Trace::new(vec![FunctionTrace::new("f", counts.to_vec())])
    }

    #[test]
    fn single_invocation_openwhisk_costs_ten_minutes_of_highest() {
        let trace = one_func_trace(&[0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::gpt()];
        let sim = Simulator::new(trace, fams.clone());
        let mut p = OpenWhiskFixed::new(&fams);
        let m = sim.run(&mut p);
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.warm_starts, 0);
        let spec = fams[0].highest();
        assert!((m.service_time_s - spec.cold_service_time_s()).abs() < 1e-9);
        // Alive minutes 2..=11 → 10 minutes of GPT-Large memory.
        let expected = CostModel::aws_lambda().keepalive_cost_usd_per_minutes(spec.memory_mb, 10.0);
        assert!((m.keepalive_cost_usd - expected).abs() < 1e-12);
        assert!((m.avg_accuracy_pct() - spec.accuracy_pct).abs() < 1e-9);
    }

    #[test]
    fn second_invocation_within_window_is_warm() {
        let trace = one_func_trace(&[1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::bert()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.warm_starts, 1);
        let spec = fams[0].highest();
        let expected = spec.cold_service_time_s() + spec.warm_service_time_s;
        assert!((m.service_time_s - expected).abs() < 1e-9);
    }

    #[test]
    fn invocation_after_window_expiry_is_cold() {
        let mut counts = vec![0u32; 30];
        counts[0] = 1;
        counts[15] = 1; // 15 > 10-minute window
        let trace = one_func_trace(&counts);
        let fams = vec![zoo::bert()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(m.cold_starts, 2);
    }

    #[test]
    fn same_minute_burst_is_one_cold_plus_warms() {
        let trace = one_func_trace(&[5, 0, 0]);
        let fams = vec![zoo::densenet()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.warm_starts, 4);
        assert_eq!(m.invocations(), 5);
    }

    #[test]
    fn all_low_is_cheaper_and_less_accurate_than_all_high() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(5, 2000);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let high = sim.run(&mut FixedVariant::all_high(&fams));
        let low = sim.run(&mut FixedVariant::all_low(&fams));
        assert!(low.keepalive_cost_usd < high.keepalive_cost_usd);
        assert!(low.avg_accuracy_pct() < high.avg_accuracy_pct());
        assert!(low.service_time_s < high.service_time_s);
        // Equal warm-start opportunity: both keep *something* alive 10 min.
        assert_eq!(low.invocations(), high.invocations());
        assert_eq!(low.cold_starts, high.cold_starts);
    }

    #[test]
    fn ideal_oracle_never_cold_after_first_and_bills_invocation_minutes_only() {
        let trace = one_func_trace(&[1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::gpt()];
        let sim = Simulator::new(trace.clone(), fams.clone());
        let m = sim.run(&mut IdealOracle::new(&fams, trace));
        assert_eq!(m.cold_starts, 1); // only the very first
        assert_eq!(m.warm_starts, 2);
        // Keep-alive billed exactly at the two warm invocation minutes.
        let spec = fams[0].highest();
        let expected = CostModel::aws_lambda().keepalive_cost_usd_per_minutes(spec.memory_mb, 2.0);
        assert!(
            (m.keepalive_cost_usd - expected).abs() < 1e-12,
            "{} vs {expected}",
            m.keepalive_cost_usd
        );
    }

    #[test]
    fn memory_series_tracks_schedule_lifetimes() {
        let trace = one_func_trace(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::bert()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        let mem = fams[0].highest().memory_mb;
        assert_eq!(m.memory_series_mb.len(), 15);
        assert_eq!(m.memory_series_mb[0], 0.0); // invocation minute: schedule starts at 1
        for t in 1..=10 {
            assert!((m.memory_series_mb[t] - mem).abs() < 1e-9, "t={t}");
        }
        assert_eq!(m.memory_series_mb[11], 0.0);
    }

    #[test]
    fn pulse_flattens_a_synchronized_burst() {
        // 12 functions all invoked at minute 0 and from minute 30 in a
        // staggered steady pattern, then all at once at minute 60 (peak).
        let mut fs = Vec::new();
        for i in 0..12 {
            let mut v = vec![0u32; 120];
            for t in (i % 4..55).step_by(4) {
                v[t] = 1;
            }
            v[60] = 3;
            fs.push(FunctionTrace::new(format!("f{i}"), v));
        }
        let trace = Trace::new(fs);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let pulse = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let no_global = sim.run(&mut PulsePolicy::without_global(
            fams.clone(),
            PulseConfig::default(),
        ));
        assert!(pulse.downgrades > 0, "peak must trigger downgrades");
        assert_eq!(no_global.downgrades, 0);
        assert!(pulse.peak_memory_mb() <= no_global.peak_memory_mb());
    }

    #[test]
    fn pulse_cheaper_than_openwhisk_on_mixed_workload() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(9, 4000);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let ow = sim.run(&mut OpenWhiskFixed::new(&fams));
        let pu = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        assert!(
            pu.keepalive_cost_usd < ow.keepalive_cost_usd,
            "pulse {} !< openwhisk {}",
            pu.keepalive_cost_usd,
            ow.keepalive_cost_usd
        );
        // Accuracy within a few percent of the all-high baseline.
        assert!(ow.avg_accuracy_pct() - pu.avg_accuracy_pct() < 5.0);
    }

    #[test]
    fn downgrade_applies_to_the_peak_minute_only() {
        use crate::policy::KeepAlivePolicy;
        use pulse_core::global::DowngradeAction;

        // A policy that downgrades function 0 to rung 0 at minute 3.
        struct OneShotDowngrade {
            inner: OpenWhiskFixed,
            fired: bool,
        }
        impl KeepAlivePolicy for OneShotDowngrade {
            fn name(&self) -> &str {
                "one-shot"
            }
            fn schedule_on_invocation(&mut self, f: usize, t: Minute) -> KeepAliveSchedule {
                self.inner.schedule_on_invocation(f, t)
            }
            fn cold_start_variant(&mut self, f: usize, t: Minute) -> VariantId {
                self.inner.cold_start_variant(f, t)
            }
            fn adjust_minute(
                &mut self,
                t: Minute,
                _h: &[f64],
                _first: bool,
                _kam: f64,
                alive: &mut Vec<AliveModel>,
            ) -> Vec<DowngradeAction> {
                if t == 3 && !self.fired {
                    self.fired = true;
                    if let Some(m) = alive.iter_mut().find(|m| m.func == 0) {
                        let from = m.variant;
                        m.variant = 0;
                        return vec![DowngradeAction::Downgrade {
                            func: 0,
                            from,
                            to: 0,
                        }];
                    }
                }
                Vec::new()
            }
        }

        let trace = one_func_trace(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let fams = vec![zoo::gpt()];
        let sim = Simulator::new(trace, fams.clone());
        let m = sim.run(&mut OneShotDowngrade {
            inner: OpenWhiskFixed::new(&fams),
            fired: false,
        });
        let high = fams[0].highest().memory_mb;
        let low = fams[0].lowest().memory_mb;
        // Only minute 3 (the "peak") is clamped to the low rung; the rest of
        // the window keeps the scheduled high rung.
        assert!((m.memory_series_mb[2] - high).abs() < 1e-9);
        assert!((m.memory_series_mb[3] - low).abs() < 1e-9);
        for t in 4..=10 {
            assert!((m.memory_series_mb[t] - high).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn stepped_session_matches_run_exactly() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(11, 500);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let whole = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));

        let mut policy = PulsePolicy::new(fams.clone(), PulseConfig::default());
        let mut session = sim.session(&mut policy);
        let mut seen = 0u64;
        while let Some(t) = session.step_minute() {
            assert_eq!(t, seen);
            seen += 1;
        }
        assert_eq!(session.next_minute(), seen);
        let stepped = session.finish();
        assert_eq!(
            stepped.keepalive_cost_usd.to_bits(),
            whole.keepalive_cost_usd.to_bits()
        );
        assert_eq!(stepped.cold_starts, whole.cold_starts);
        assert_eq!(stepped.warm_starts, whole.warm_starts);
        assert_eq!(stepped.downgrades, whole.downgrades);
        assert_eq!(stepped.memory_series_mb, whole.memory_series_mb);
    }

    #[test]
    fn session_exposes_ledger_state() {
        let trace = one_func_trace(&[1, 0, 0, 0]);
        let fams = vec![zoo::bert()];
        let sim = Simulator::new(trace, fams.clone());
        let mut policy = OpenWhiskFixed::new(&fams);
        let mut session = sim.session(&mut policy);
        assert!(session.ledger().schedule(0).is_none());
        session.step_minute();
        // The invocation at minute 0 installed a schedule covering 1..=10.
        assert_eq!(session.ledger().alive_variant_at(0, 1), Some(1));
        assert_eq!(session.metrics().cold_starts, 1);
    }

    #[test]
    #[should_panic(expected = "one family per traced function")]
    fn mismatched_assignment_rejected() {
        Simulator::new(one_func_trace(&[1]), vec![]);
    }

    #[test]
    fn traced_run_event_stream_is_consistent_with_metrics() {
        use pulse_obs::MemorySink;
        let trace = pulse_trace::synth::azure_like_12_with_horizon(9, 400);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let mut mem = MemorySink::new();
        let m = sim.run_traced(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &mut mem,
        );
        // Per-type event counts reconcile exactly with the run's metrics.
        let actions =
            mem.count(|e| matches!(e, ObsEvent::Downgrade { .. } | ObsEvent::Evict { .. }));
        assert_eq!(actions as u64, m.downgrades);
        let (mut requests, mut colds) = (0u64, 0u64);
        let mut bills = 0usize;
        let mut billed_usd = 0.0f64;
        for ev in mem.events() {
            match *ev {
                ObsEvent::Serve {
                    requests: r,
                    cold_starts: c,
                    ..
                } => {
                    requests += r;
                    colds += c;
                }
                ObsEvent::Bill { cost_usd, .. } => {
                    bills += 1;
                    billed_usd += cost_usd;
                }
                _ => {}
            }
        }
        assert_eq!(requests, m.invocations());
        assert_eq!(colds, m.cold_starts);
        assert_eq!(bills, m.memory_series_mb.len());
        assert!((billed_usd - m.keepalive_cost_usd).abs() < 1e-9);
        // Adjust fires once per simulated minute.
        assert_eq!(
            mem.count(|e| matches!(e, ObsEvent::Adjust { .. })),
            m.memory_series_mb.len()
        );
        // Every line of the stream survives the JSONL round trip.
        for ev in mem.events() {
            assert_eq!(&ObsEvent::from_json(&ev.to_json()).unwrap(), ev);
        }
    }

    #[test]
    fn snapshot_restore_resume_is_bit_identical() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(23, 800);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let whole = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));

        let mut killed = PulsePolicy::new(fams.clone(), PulseConfig::default());
        let mut session = sim.session(&mut killed);
        for _ in 0..317 {
            session.step_minute();
        }
        let snap = session.snapshot().unwrap();
        drop(session); // the "kill"

        let mut fresh = PulsePolicy::new(fams.clone(), PulseConfig::default());
        let mut resumed = sim.restore_session(&mut fresh, &snap).unwrap();
        assert_eq!(resumed.next_minute(), 317);
        while resumed.step_minute().is_some() {}
        let m = resumed.finish();
        assert_eq!(
            m.keepalive_cost_usd.to_bits(),
            whole.keepalive_cost_usd.to_bits()
        );
        assert_eq!(m.service_time_s.to_bits(), whole.service_time_s.to_bits());
        assert_eq!(
            m.accuracy_sum_pct.to_bits(),
            whole.accuracy_sum_pct.to_bits()
        );
        assert_eq!(m.cold_starts, whole.cold_starts);
        assert_eq!(m.warm_starts, whole.warm_starts);
        assert_eq!(m.downgrades, whole.downgrades);
        assert_eq!(m.memory_series_mb, whole.memory_series_mb);
        assert_eq!(m.cost_series_usd, whole.cost_series_usd);
    }

    #[test]
    fn restore_fails_soft_on_skew_mismatch_and_garbage() {
        use crate::recover::RecoverError;
        let trace = pulse_trace::synth::azure_like_12_with_horizon(5, 120);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let mut p = PulsePolicy::new(fams.clone(), PulseConfig::default());
        let mut session = sim.session(&mut p);
        for _ in 0..40 {
            session.step_minute();
        }
        let snap = session.snapshot().unwrap();
        drop(session);

        // Version skew is detected before anything else is trusted.
        let skewed = snap.replacen("\"version\":1", "\"version\":9", 1);
        let mut q = PulsePolicy::new(fams.clone(), PulseConfig::default());
        assert!(matches!(
            sim.restore_session(&mut q, &skewed),
            Err(RecoverError::VersionSkew { found: 9, .. })
        ));
        // The wrong policy is a typed mismatch.
        let mut ow = OpenWhiskFixed::new(&fams);
        assert!(matches!(
            sim.restore_session(&mut ow, &snap),
            Err(RecoverError::PolicyMismatch { .. })
        ));
        // A different workload is a fingerprint mismatch.
        let other = Simulator::new(
            pulse_trace::synth::azure_like_12_with_horizon(6, 120),
            fams.clone(),
        );
        let mut q = PulsePolicy::new(fams.clone(), PulseConfig::default());
        assert!(matches!(
            other.restore_session(&mut q, &snap),
            Err(RecoverError::ConfigMismatch {
                what: "workload",
                ..
            })
        ));
        // Garbage never panics.
        let mut q = PulsePolicy::new(fams.clone(), PulseConfig::default());
        assert!(sim.restore_session(&mut q, "").is_err());
        assert!(sim.restore_session(&mut q, "not json").is_err());
        assert!(sim
            .restore_session(&mut q, "{\"type\":\"snapshot\",\"version\":1}")
            .is_err());
    }

    #[test]
    fn null_sink_run_is_bit_identical_to_plain_run() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(17, 600);
        let fams: Vec<ModelFamily> = (0..12).map(|i| zoo::standard()[i % 5].clone()).collect();
        let sim = Simulator::new(trace, fams.clone());
        let plain = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let mut null = pulse_obs::NullSink;
        let traced = sim.run_traced(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &mut null,
        );
        assert_eq!(
            plain.keepalive_cost_usd.to_bits(),
            traced.keepalive_cost_usd.to_bits()
        );
        assert_eq!(plain.memory_series_mb, traced.memory_series_mb);
        assert_eq!(plain.cold_starts, traced.cold_starts);
        assert_eq!(plain.warm_starts, traced.warm_starts);
        assert_eq!(plain.downgrades, traced.downgrades);
    }
}

//! Parallel many-run harness.
//!
//! The paper's headline numbers average 1000 simulation runs, each with a
//! fresh random model-to-function assignment. Runs are embarrassingly
//! parallel; this module fans them out over crossbeam scoped threads with a
//! lock-free work counter, keeping one metrics accumulator per worker and
//! merging at the end (no shared mutable state on the hot path).

use crate::assignment::random_assignment;
use crate::engine::Simulator;
use crate::metrics::{Aggregate, RunMetrics};
use crate::policy::KeepAlivePolicy;
use parking_lot::Mutex;
use pulse_models::ModelFamily;
use pulse_obs::{CounterRegistry, HistogramRegistry};
use pulse_trace::Trace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Configuration of a multi-run campaign.
#[derive(Debug, Clone, Copy)]
pub struct MultiRunConfig {
    /// Number of runs (the paper uses 1000).
    pub n_runs: usize,
    /// Base seed; run `r` uses `base_seed + r` for its assignment (and for
    /// any policy randomness).
    pub base_seed: u64,
    /// Worker threads; `None` = all available cores.
    pub threads: Option<usize>,
}

impl Default for MultiRunConfig {
    fn default() -> Self {
        Self {
            n_runs: 1000,
            base_seed: 0,
            threads: None,
        }
    }
}

/// Builds a policy for one run, given the run's family assignment and seed.
pub type PolicyFactory<'a> = dyn Fn(&[ModelFamily], u64) -> Box<dyn KeepAlivePolicy> + Sync + 'a;

/// Campaign-level observability: counters and histograms accumulated
/// per-worker during [`run_many_observed`] and merged after the workers
/// join. Because registry merging is commutative and associative, the
/// totals are independent of worker scheduling.
///
/// Counters: `runs`, `invocations`, `cold_starts`, `warm_starts`,
/// `downgrades`. Histograms (one sample per run): `run_cost_uusd`
/// (keep-alive cost in micro-USD), `run_cold_starts`, `run_downgrades`.
#[derive(Debug, Clone, Default)]
pub struct CampaignObs {
    /// Number of per-worker registries merged into the totals.
    pub workers: usize,
    /// Campaign-wide counters.
    pub counters: CounterRegistry,
    /// Campaign-wide per-run distribution histograms.
    pub histograms: HistogramRegistry,
}

/// Keep-alive cost in micro-USD for histogram bucketing (costs are tiny
/// fractions of a dollar, so whole USD would collapse every run into
/// bucket 0).
fn usd_to_micro(usd: f64) -> u64 {
    let micro = (usd * 1e6).round();
    if micro.is_finite() && micro > 0.0 {
        // Guarded: non-negative, finite, and clamped below u64::MAX.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        if micro >= 1.8e19 {
            u64::MAX
        } else {
            micro as u64
        }
    } else {
        0
    }
}

/// Run the campaign: for each run, draw a random assignment from `zoo`,
/// build a policy via `factory`, simulate the whole trace, and return the
/// per-run metrics (ordered by run index, per-minute series dropped to keep
/// memory bounded).
pub fn run_many(
    trace: &Trace,
    zoo: &[ModelFamily],
    cfg: &MultiRunConfig,
    factory: &PolicyFactory<'_>,
) -> Vec<RunMetrics> {
    run_many_observed(trace, zoo, cfg, factory).0
}

/// [`run_many`] plus campaign observability: each worker keeps a private
/// [`CounterRegistry`]/[`HistogramRegistry`] (no shared mutable state on
/// the hot path) and the registries are merged once after the scope joins.
pub fn run_many_observed(
    trace: &Trace,
    zoo: &[ModelFamily],
    cfg: &MultiRunConfig,
    factory: &PolicyFactory<'_>,
) -> (Vec<RunMetrics>, CampaignObs) {
    let threads = cfg
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(cfg.n_runs.max(1));
    let next = AtomicUsize::new(0);
    // Raised by the first failing worker so siblings stop claiming new runs
    // instead of grinding through the rest of a doomed campaign.
    let abort = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, RunMetrics)>> = Mutex::new(Vec::with_capacity(cfg.n_runs));
    let obs_parts: Mutex<Vec<(CounterRegistry, HistogramRegistry)>> =
        Mutex::new(Vec::with_capacity(threads));
    // First failed run's diagnostic context (run index, seed, assignment),
    // so a 1000-run campaign that dies names the exact run to replay.
    let failure: Mutex<Option<String>> = Mutex::new(None);

    let scope_result = crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                let mut local: Vec<(usize, RunMetrics)> = Vec::new();
                let mut counters = CounterRegistry::new();
                let c_runs = counters.counter("runs");
                let c_invocations = counters.counter("invocations");
                let c_cold = counters.counter("cold_starts");
                let c_warm = counters.counter("warm_starts");
                let c_downgrades = counters.counter("downgrades");
                let mut histograms = HistogramRegistry::new();
                let h_cost = histograms.histogram("run_cost_uusd");
                let h_cold = histograms.histogram("run_cold_starts");
                let h_downgrades = histograms.histogram("run_downgrades");
                loop {
                    // Acquire pairs with the failing worker's Release store:
                    // a sibling that observes the flag also observes every
                    // write the failing worker published before raising it
                    // (in particular the failure-context message).
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    let r = next.fetch_add(1, Ordering::Relaxed);
                    if r >= cfg.n_runs {
                        break;
                    }
                    // Wrapping keeps seeds well-defined for campaigns whose
                    // base seed sits near u64::MAX (run r uses base + r mod 2⁶⁴).
                    let seed = cfg.base_seed.wrapping_add(r as u64);
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let assignment = random_assignment(zoo, trace.n_functions(), &mut rng);
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let sim = Simulator::new(trace.clone(), assignment.clone());
                        let mut policy = factory(&assignment, seed);
                        sim.run(policy.as_mut())
                    }));
                    match run {
                        Ok(mut m) => {
                            counters.inc(c_runs);
                            counters.add(c_invocations, m.invocations());
                            counters.add(c_cold, m.cold_starts);
                            counters.add(c_warm, m.warm_starts);
                            counters.add(c_downgrades, m.downgrades);
                            histograms.record(h_cost, usd_to_micro(m.keepalive_cost_usd));
                            histograms.record(h_cold, m.cold_starts);
                            histograms.record(h_downgrades, m.downgrades);
                            // Series are per-minute × n_runs — drop to bound
                            // memory.
                            m.memory_series_mb = Vec::new();
                            m.cost_series_usd = Vec::new();
                            local.push((r, m));
                        }
                        Err(payload) => {
                            abort.store(true, Ordering::Release);
                            let cause = panic_message(payload.as_ref());
                            let zoo_idx: Vec<String> = assignment
                                .iter()
                                .map(|f| {
                                    zoo.iter()
                                        .position(|z| z.name == f.name)
                                        .map_or_else(|| "?".to_string(), |i| i.to_string())
                                })
                                .collect();
                            let msg = format!(
                                "run {r} (seed {seed}, zoo assignment [{}]) panicked: {cause}",
                                zoo_idx.join(",")
                            );
                            let mut slot = failure.lock();
                            if slot.is_none() {
                                *slot = Some(msg);
                            }
                            break;
                        }
                    }
                }
                results.lock().extend(local);
                obs_parts.lock().push((counters, histograms));
            });
        }
    });
    if let Some(msg) = failure.into_inner() {
        // Re-raise the worker's panic enriched with the failing run's
        // replay coordinates (the bare payload rarely identifies the run).
        std::panic::resume_unwind(Box::new(msg));
    }
    if let Err(panic) = scope_result {
        // A worker panicked outside a simulated run: surface the original
        // panic to the caller instead of wrapping it in a less informative
        // one.
        std::panic::resume_unwind(panic);
    }

    let mut runs = results.into_inner();
    runs.sort_by_key(|&(r, _)| r);
    debug_assert_eq!(runs.len(), cfg.n_runs, "every run produces one result");

    let parts = obs_parts.into_inner();
    let mut obs = CampaignObs {
        workers: parts.len(),
        ..CampaignObs::default()
    };
    for (counters, histograms) in &parts {
        obs.counters.merge(counters);
        obs.histograms.merge(histograms);
    }
    (runs.into_iter().map(|(_, m)| m).collect(), obs)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fold per-run metrics into a streaming aggregate.
pub fn aggregate(name: &str, runs: &[RunMetrics]) -> Aggregate {
    let mut agg = Aggregate::new(name);
    for m in runs {
        agg.push(m);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{OpenWhiskFixed, PulsePolicy};
    use pulse_core::types::PulseConfig;
    use pulse_models::zoo;
    use pulse_trace::synth;

    fn small_cfg(n: usize) -> MultiRunConfig {
        MultiRunConfig {
            n_runs: n,
            base_seed: 7,
            threads: Some(4),
        }
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let trace = synth::azure_like_12_with_horizon(3, 600);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let a = run_many(&trace, &z, &small_cfg(6), factory.as_ref());
        let b = run_many(&trace, &z, &small_cfg(6), factory.as_ref());
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn different_assignments_per_run() {
        let trace = synth::azure_like_12_with_horizon(3, 600);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let runs = run_many(&trace, &z, &small_cfg(8), factory.as_ref());
        // Different assignments ⇒ different costs (with overwhelming
        // probability over 8 runs of 12 draws from 5 families).
        let first = runs[0].keepalive_cost_usd;
        assert!(runs
            .iter()
            .any(|m| (m.keepalive_cost_usd - first).abs() > 1e-12));
    }

    #[test]
    fn aggregate_counts_match() {
        let trace = synth::azure_like_12_with_horizon(3, 400);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(PulsePolicy::new(fams.to_vec(), PulseConfig::default())));
        let runs = run_many(&trace, &z, &small_cfg(5), factory.as_ref());
        let agg = aggregate("pulse", &runs);
        assert_eq!(agg.runs(), 5);
        assert!(agg.keepalive_cost_usd.mean() > 0.0);
        assert!(agg.accuracy_pct.mean() > 50.0);
    }

    #[test]
    fn series_are_dropped() {
        let trace = synth::azure_like_12_with_horizon(3, 300);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let runs = run_many(&trace, &z, &small_cfg(2), factory.as_ref());
        assert!(runs.iter().all(|m| m.memory_series_mb.is_empty()));
    }

    #[test]
    fn worker_panic_carries_run_seed_and_assignment() {
        let trace = synth::azure_like_12_with_horizon(3, 100);
        let z = zoo::standard();
        // The factory blows up on one specific run; the re-raised panic must
        // name that run's replay coordinates.
        let factory: Box<PolicyFactory<'_>> = Box::new(|fams, seed| {
            assert_ne!(seed, 9, "injected factory failure");
            Box::new(OpenWhiskFixed::new(fams))
        });
        let cfg = small_cfg(4); // seeds 7..=10 — seed 9 is run 2
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_many(&trace, &z, &cfg, factory.as_ref())
        }))
        .expect_err("run 2 must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("enriched payload is a String");
        assert!(msg.contains("run 2"), "missing run index: {msg}");
        assert!(msg.contains("seed 9"), "missing seed: {msg}");
        assert!(
            msg.contains("zoo assignment ["),
            "missing assignment: {msg}"
        );
        assert!(
            msg.contains("injected factory failure"),
            "missing cause: {msg}"
        );
        // The assignment list has one zoo index per function.
        let idx = msg
            .split("zoo assignment [")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .expect("bracketed list");
        assert_eq!(idx.split(',').count(), trace.n_functions());
    }

    #[test]
    fn seed_sum_wraps_at_u64_max() {
        // base + r overflows u64 on run 2; wrapping keeps the campaign
        // well-defined (and deterministic) instead of panicking in debug.
        let trace = synth::azure_like_12_with_horizon(3, 200);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let cfg = MultiRunConfig {
            n_runs: 4,
            base_seed: u64::MAX - 1,
            threads: Some(2),
        };
        let a = run_many(&trace, &z, &cfg, factory.as_ref());
        let b = run_many(&trace, &z, &cfg, factory.as_ref());
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        // Pin the wrapped seed sequence itself: MAX-1, MAX, 0, 1.
        let seen: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let recording: Box<PolicyFactory<'_>> = Box::new(|fams, seed| {
            seen.lock().push(seed);
            Box::new(OpenWhiskFixed::new(fams))
        });
        run_many(&trace, &z, &cfg, recording.as_ref());
        drop(recording);
        let mut seen = seen.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn early_failure_aborts_remaining_runs() {
        let trace = synth::azure_like_12_with_horizon(3, 300);
        let z = zoo::standard();
        let cfg = MultiRunConfig {
            n_runs: 200,
            base_seed: 7,
            threads: Some(4),
        };
        let started = AtomicUsize::new(0);
        // Run 0 (seed 7) fails immediately; the abort flag must stop the
        // sibling workers from claiming the remaining ~200 runs.
        let factory: Box<PolicyFactory<'_>> = Box::new(|fams, seed| {
            started.fetch_add(1, Ordering::Relaxed);
            assert_ne!(seed, 7, "injected early failure");
            Box::new(OpenWhiskFixed::new(fams))
        });
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_many(&trace, &z, &cfg, factory.as_ref())
        }))
        .expect_err("run 0 must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("enriched payload is a String");
        assert!(msg.contains("run 0"), "missing run index: {msg}");
        let n = started.load(Ordering::Relaxed);
        assert!(
            n < cfg.n_runs / 2,
            "abort flag should leave most runs unexecuted, but {n} of {} started",
            cfg.n_runs
        );
    }

    #[test]
    fn observed_campaign_counters_match_metrics_and_scheduling() {
        let trace = synth::azure_like_12_with_horizon(3, 400);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(PulsePolicy::new(fams.to_vec(), PulseConfig::default())));
        let (runs, obs) = run_many_observed(&trace, &z, &small_cfg(6), factory.as_ref());
        // Counters reconcile exactly with the per-run metrics.
        assert_eq!(obs.counters.get("runs"), 6);
        let invocations: u64 = runs.iter().map(RunMetrics::invocations).sum();
        assert_eq!(obs.counters.get("invocations"), invocations);
        assert_eq!(
            obs.counters.get("cold_starts"),
            runs.iter().map(|m| m.cold_starts).sum::<u64>()
        );
        assert_eq!(
            obs.counters.get("warm_starts"),
            runs.iter().map(|m| m.warm_starts).sum::<u64>()
        );
        assert_eq!(
            obs.counters.get("downgrades"),
            runs.iter().map(|m| m.downgrades).sum::<u64>()
        );
        // Histograms carry one sample per run.
        for name in ["run_cost_uusd", "run_cold_starts", "run_downgrades"] {
            assert_eq!(obs.histograms.get(name).expect(name).count(), 6, "{name}");
        }
        assert!(obs.histograms.get("run_cost_uusd").unwrap().sum() > 0);
        // Merged totals are independent of worker scheduling.
        let seq_cfg = MultiRunConfig {
            threads: Some(1),
            ..small_cfg(6)
        };
        let (seq_runs, seq_obs) = run_many_observed(&trace, &z, &seq_cfg, factory.as_ref());
        assert_eq!(runs, seq_runs);
        assert_eq!(seq_obs.workers, 1);
        assert_eq!(obs.counters, seq_obs.counters);
        let pairs: Vec<_> = obs.histograms.iter().collect();
        let seq_pairs: Vec<_> = seq_obs.histograms.iter().collect();
        assert_eq!(pairs, seq_pairs);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let trace = synth::azure_like_12_with_horizon(3, 500);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let par = run_many(&trace, &z, &small_cfg(4), factory.as_ref());
        let seq_cfg = MultiRunConfig {
            threads: Some(1),
            ..small_cfg(4)
        };
        let seq = run_many(&trace, &z, &seq_cfg, factory.as_ref());
        assert_eq!(par, seq);
    }
}

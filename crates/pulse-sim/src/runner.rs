//! Parallel many-run harness.
//!
//! The paper's headline numbers average 1000 simulation runs, each with a
//! fresh random model-to-function assignment. Runs are embarrassingly
//! parallel; this module fans them out over crossbeam scoped threads with a
//! lock-free work counter, keeping one metrics accumulator per worker and
//! merging at the end (no shared mutable state on the hot path).

use crate::assignment::random_assignment;
use crate::engine::Simulator;
use crate::metrics::{Aggregate, RunMetrics};
use crate::policy::KeepAlivePolicy;
use parking_lot::Mutex;
use pulse_models::ModelFamily;
use pulse_trace::Trace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of a multi-run campaign.
#[derive(Debug, Clone, Copy)]
pub struct MultiRunConfig {
    /// Number of runs (the paper uses 1000).
    pub n_runs: usize,
    /// Base seed; run `r` uses `base_seed + r` for its assignment (and for
    /// any policy randomness).
    pub base_seed: u64,
    /// Worker threads; `None` = all available cores.
    pub threads: Option<usize>,
}

impl Default for MultiRunConfig {
    fn default() -> Self {
        Self {
            n_runs: 1000,
            base_seed: 0,
            threads: None,
        }
    }
}

/// Builds a policy for one run, given the run's family assignment and seed.
pub type PolicyFactory<'a> = dyn Fn(&[ModelFamily], u64) -> Box<dyn KeepAlivePolicy> + Sync + 'a;

/// Run the campaign: for each run, draw a random assignment from `zoo`,
/// build a policy via `factory`, simulate the whole trace, and return the
/// per-run metrics (ordered by run index, per-minute series dropped to keep
/// memory bounded).
pub fn run_many(
    trace: &Trace,
    zoo: &[ModelFamily],
    cfg: &MultiRunConfig,
    factory: &PolicyFactory<'_>,
) -> Vec<RunMetrics> {
    let threads = cfg
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(cfg.n_runs.max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, RunMetrics)>> = Mutex::new(Vec::with_capacity(cfg.n_runs));
    // First failed run's diagnostic context (run index, seed, assignment),
    // so a 1000-run campaign that dies names the exact run to replay.
    let failure: Mutex<Option<String>> = Mutex::new(None);

    let scope_result = crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                let mut local: Vec<(usize, RunMetrics)> = Vec::new();
                loop {
                    let r = next.fetch_add(1, Ordering::Relaxed);
                    if r >= cfg.n_runs {
                        break;
                    }
                    let seed = cfg.base_seed + r as u64;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let assignment = random_assignment(zoo, trace.n_functions(), &mut rng);
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let sim = Simulator::new(trace.clone(), assignment.clone());
                        let mut policy = factory(&assignment, seed);
                        sim.run(policy.as_mut())
                    }));
                    match run {
                        Ok(mut m) => {
                            // Series are per-minute × n_runs — drop to bound
                            // memory.
                            m.memory_series_mb = Vec::new();
                            m.cost_series_usd = Vec::new();
                            local.push((r, m));
                        }
                        Err(payload) => {
                            let cause = panic_message(payload.as_ref());
                            let zoo_idx: Vec<String> = assignment
                                .iter()
                                .map(|f| {
                                    zoo.iter()
                                        .position(|z| z.name == f.name)
                                        .map_or_else(|| "?".to_string(), |i| i.to_string())
                                })
                                .collect();
                            let msg = format!(
                                "run {r} (seed {seed}, zoo assignment [{}]) panicked: {cause}",
                                zoo_idx.join(",")
                            );
                            let mut slot = failure.lock();
                            if slot.is_none() {
                                *slot = Some(msg);
                            }
                            break;
                        }
                    }
                }
                results.lock().extend(local);
            });
        }
    });
    if let Some(msg) = failure.into_inner() {
        // Re-raise the worker's panic enriched with the failing run's
        // replay coordinates (the bare payload rarely identifies the run).
        std::panic::resume_unwind(Box::new(msg));
    }
    if let Err(panic) = scope_result {
        // A worker panicked outside a simulated run: surface the original
        // panic to the caller instead of wrapping it in a less informative
        // one.
        std::panic::resume_unwind(panic);
    }

    let mut runs = results.into_inner();
    runs.sort_by_key(|&(r, _)| r);
    debug_assert_eq!(runs.len(), cfg.n_runs, "every run produces one result");
    runs.into_iter().map(|(_, m)| m).collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fold per-run metrics into a streaming aggregate.
pub fn aggregate(name: &str, runs: &[RunMetrics]) -> Aggregate {
    let mut agg = Aggregate::new(name);
    for m in runs {
        agg.push(m);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{OpenWhiskFixed, PulsePolicy};
    use pulse_core::types::PulseConfig;
    use pulse_models::zoo;
    use pulse_trace::synth;

    fn small_cfg(n: usize) -> MultiRunConfig {
        MultiRunConfig {
            n_runs: n,
            base_seed: 7,
            threads: Some(4),
        }
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let trace = synth::azure_like_12_with_horizon(3, 600);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let a = run_many(&trace, &z, &small_cfg(6), factory.as_ref());
        let b = run_many(&trace, &z, &small_cfg(6), factory.as_ref());
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn different_assignments_per_run() {
        let trace = synth::azure_like_12_with_horizon(3, 600);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let runs = run_many(&trace, &z, &small_cfg(8), factory.as_ref());
        // Different assignments ⇒ different costs (with overwhelming
        // probability over 8 runs of 12 draws from 5 families).
        let first = runs[0].keepalive_cost_usd;
        assert!(runs
            .iter()
            .any(|m| (m.keepalive_cost_usd - first).abs() > 1e-12));
    }

    #[test]
    fn aggregate_counts_match() {
        let trace = synth::azure_like_12_with_horizon(3, 400);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(PulsePolicy::new(fams.to_vec(), PulseConfig::default())));
        let runs = run_many(&trace, &z, &small_cfg(5), factory.as_ref());
        let agg = aggregate("pulse", &runs);
        assert_eq!(agg.runs(), 5);
        assert!(agg.keepalive_cost_usd.mean() > 0.0);
        assert!(agg.accuracy_pct.mean() > 50.0);
    }

    #[test]
    fn series_are_dropped() {
        let trace = synth::azure_like_12_with_horizon(3, 300);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let runs = run_many(&trace, &z, &small_cfg(2), factory.as_ref());
        assert!(runs.iter().all(|m| m.memory_series_mb.is_empty()));
    }

    #[test]
    fn worker_panic_carries_run_seed_and_assignment() {
        let trace = synth::azure_like_12_with_horizon(3, 100);
        let z = zoo::standard();
        // The factory blows up on one specific run; the re-raised panic must
        // name that run's replay coordinates.
        let factory: Box<PolicyFactory<'_>> = Box::new(|fams, seed| {
            assert_ne!(seed, 9, "injected factory failure");
            Box::new(OpenWhiskFixed::new(fams))
        });
        let cfg = small_cfg(4); // seeds 7..=10 — seed 9 is run 2
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_many(&trace, &z, &cfg, factory.as_ref())
        }))
        .expect_err("run 2 must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("enriched payload is a String");
        assert!(msg.contains("run 2"), "missing run index: {msg}");
        assert!(msg.contains("seed 9"), "missing seed: {msg}");
        assert!(
            msg.contains("zoo assignment ["),
            "missing assignment: {msg}"
        );
        assert!(
            msg.contains("injected factory failure"),
            "missing cause: {msg}"
        );
        // The assignment list has one zoo index per function.
        let idx = msg
            .split("zoo assignment [")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .expect("bracketed list");
        assert_eq!(idx.split(',').count(), trace.n_functions());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let trace = synth::azure_like_12_with_horizon(3, 500);
        let z = zoo::standard();
        let factory: Box<PolicyFactory<'_>> =
            Box::new(|fams, _| Box::new(OpenWhiskFixed::new(fams)));
        let par = run_many(&trace, &z, &small_cfg(4), factory.as_ref());
        let seq_cfg = MultiRunConfig {
            threads: Some(1),
            ..small_cfg(4)
        };
        let seq = run_many(&trace, &z, &seq_cfg, factory.as_ref());
        assert_eq!(par, seq);
    }
}

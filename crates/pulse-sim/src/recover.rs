//! Crash-consistent recovery support shared by both engines.
//!
//! A **snapshot** is a versioned multi-line document of flat records (the
//! [`pulse_obs::RecordBuilder`] wire shape): one header line carrying the
//! format version and configuration fingerprints, followed by typed state
//! rows. Restoring checks the version and fingerprints first and fails with
//! a typed [`RecoverError`] — never a panic — on skew, corruption, or a
//! mismatched workload/policy, so a stale or foreign snapshot can always be
//! rejected softly.
//!
//! This module owns the pieces both engines share: the error type, the
//! configuration fingerprint, and the codecs for the
//! [`ScheduleLedger`] and
//! [`RunMetrics`] state rows. The engine-specific capture/restore entry
//! points live next to each engine ([`crate::SimSession::snapshot`] and the
//! runtime crate's equivalent).

use crate::metrics::RunMetrics;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::schedule::{ScheduleLedger, Slot};
use pulse_obs::{Record, RecordBuilder};

/// Version stamped into every snapshot header; restore rejects any other
/// value with [`RecoverError::VersionSkew`].
pub const SNAPSHOT_VERSION: u64 = 1;

/// Why a snapshot could not be restored. Every failure mode is typed and
/// soft: restore never panics on foreign input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The snapshot was written by a different format version.
    VersionSkew {
        /// Version found in the header.
        found: u64,
        /// Version this build understands.
        supported: u64,
    },
    /// The snapshot text is malformed or internally inconsistent.
    Corrupt {
        /// What failed to parse or validate.
        message: String,
    },
    /// The snapshot was captured under a different policy.
    PolicyMismatch {
        /// Policy name recorded in the snapshot.
        expected: String,
        /// Policy name offered at restore.
        found: String,
    },
    /// The snapshot was captured against a different workload, fault plan,
    /// fleet, or runtime configuration.
    ConfigMismatch {
        /// Which configuration fingerprint disagreed.
        what: &'static str,
        /// Fingerprint recorded in the snapshot.
        expected: u64,
        /// Fingerprint of the configuration offered at restore.
        found: u64,
    },
    /// The policy cannot produce (or accept) checkpoint state.
    NotCheckpointable {
        /// The offending policy's name.
        policy: String,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VersionSkew { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads {supported})"
                )
            }
            Self::Corrupt { message } => write!(f, "corrupt snapshot: {message}"),
            Self::PolicyMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot was taken under policy {expected:?}, not {found:?}"
                )
            }
            Self::ConfigMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "snapshot {what} fingerprint {expected:#018x} does not match {found:#018x}"
            ),
            Self::NotCheckpointable { policy } => {
                write!(f, "policy {policy:?} does not support checkpointing")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl RecoverError {
    /// Wrap any displayable parse/validation failure as
    /// [`RecoverError::Corrupt`].
    pub fn corrupt(message: impl std::fmt::Display) -> Self {
        Self::Corrupt {
            message: message.to_string(),
        }
    }
}

/// FNV-1a fingerprint of an arbitrary string — the configuration-identity
/// check both engines stamp into snapshot headers (the `Debug` form of the
/// trace, families, fault plan and fleet is hashed, not serialized, so the
/// header stays one line).
pub fn fingerprint(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a `Debug`-printable configuration value.
pub fn fingerprint_of(value: &impl std::fmt::Debug) -> u64 {
    fingerprint(&format!("{value:?}"))
}

/// Check one fingerprint from a snapshot header against the live
/// configuration.
pub fn check_fingerprint(
    what: &'static str,
    expected: u64,
    found: u64,
) -> Result<(), RecoverError> {
    if expected == found {
        Ok(())
    } else {
        Err(RecoverError::ConfigMismatch {
            what,
            expected,
            found,
        })
    }
}

/// In-plan encoding of [`Slot::Hole`] inside a packed slot list (variants
/// are small ladder indices, so the sentinel can never collide).
const HOLE_SLOT: u64 = u64::MAX;

/// Append one `"sched"` row per installed schedule of `ledger` to `doc`
/// (functions without a schedule are omitted; restore starts from an empty
/// ledger of the same width).
pub fn encode_ledger(doc: &mut String, ledger: &ScheduleLedger) {
    // audit:allow(ledger-sweep): checkpoint codec serializes every function
    for f in 0..ledger.n_functions() {
        let Some(s) = ledger.schedule(f) else {
            continue;
        };
        let slots: Vec<u64> = (1..=u64::from(s.window()))
            .map(|m| match s.slot_at_offset(m) {
                Some(Slot::Alive(v)) => v as u64,
                _ => HOLE_SLOT,
            })
            .collect();
        doc.push('\n');
        doc.push_str(
            &RecordBuilder::new("sched")
                .usize("func", f)
                .u64("at", s.invoked_at)
                .u64_list("slots", &slots)
                .finish(),
        );
    }
}

/// Apply one `"sched"` row to `ledger`.
#[allow(clippy::cast_possible_truncation)] // variant ids are small zoo indices
pub fn decode_ledger_row(ledger: &mut ScheduleLedger, rec: &Record) -> Result<(), RecoverError> {
    let f = rec.usize("func").map_err(RecoverError::corrupt)?;
    if f >= ledger.n_functions() {
        return Err(RecoverError::corrupt(format!(
            "sched row targets function {f} of {}",
            ledger.n_functions()
        )));
    }
    let at = rec.u64("at").map_err(RecoverError::corrupt)?;
    let slots = rec.u64_list("slots").map_err(RecoverError::corrupt)?;
    ledger.replace(
        f,
        KeepAliveSchedule::from_slots(
            at,
            slots.into_iter().map(|v| {
                if v == HOLE_SLOT {
                    Slot::Hole
                } else {
                    Slot::Alive(v as usize)
                }
            }),
        ),
    );
    Ok(())
}

/// Encode accumulated [`RunMetrics`] as one `"metrics"` row (bit-exact f64
/// series via the shortest-round-trip packing).
pub fn encode_metrics(m: &RunMetrics) -> String {
    RecordBuilder::new("metrics")
        .str("policy", &m.policy)
        .f64("service_time_s", m.service_time_s)
        .f64("keepalive_cost_usd", m.keepalive_cost_usd)
        .f64("accuracy_sum_pct", m.accuracy_sum_pct)
        .u64("warm_starts", m.warm_starts)
        .u64("cold_starts", m.cold_starts)
        .u64("downgrades", m.downgrades)
        .f64_list("memory_series_mb", &m.memory_series_mb)
        .f64_list("cost_series_usd", &m.cost_series_usd)
        .finish()
}

/// Decode a `"metrics"` row written by [`encode_metrics`].
pub fn decode_metrics(rec: &Record) -> Result<RunMetrics, RecoverError> {
    let c = RecoverError::corrupt;
    Ok(RunMetrics {
        policy: rec.str("policy").map_err(c)?.to_string(),
        service_time_s: rec.f64("service_time_s").map_err(c)?,
        keepalive_cost_usd: rec.f64("keepalive_cost_usd").map_err(c)?,
        accuracy_sum_pct: rec.f64("accuracy_sum_pct").map_err(c)?,
        warm_starts: rec.u64("warm_starts").map_err(c)?,
        cold_starts: rec.u64("cold_starts").map_err(c)?,
        downgrades: rec.u64("downgrades").map_err(c)?,
        memory_series_mb: rec.f64_list("memory_series_mb").map_err(c)?,
        cost_series_usd: rec.f64_list("cost_series_usd").map_err(c)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert!(check_fingerprint("plan", 1, 1).is_ok());
        assert!(matches!(
            check_fingerprint("plan", 1, 2),
            Err(RecoverError::ConfigMismatch { what: "plan", .. })
        ));
    }

    #[test]
    fn ledger_round_trips_including_holes() {
        let mut ledger = ScheduleLedger::new(3);
        ledger.replace(0, KeepAliveSchedule::constant(5, 2, 10));
        ledger.replace(2, KeepAliveSchedule::constant(1, 0, 4));
        ledger.apply_eviction(0, 8);
        ledger.apply_downgrade(0, 7, 1);

        let mut doc = String::new();
        encode_ledger(&mut doc, &ledger);
        let mut back = ScheduleLedger::new(3);
        for line in doc.lines().filter(|l| !l.is_empty()) {
            let rec = Record::parse(line).map_err(RecoverError::corrupt).unwrap();
            assert_eq!(rec.kind(), "sched");
            decode_ledger_row(&mut back, &rec).unwrap();
        }
        for f in 0..3 {
            for t in 0..20 {
                assert_eq!(ledger.slot_at(f, t), back.slot_at(f, t), "f={f} t={t}");
            }
        }
        assert!(back.schedule(1).is_none());
    }

    #[test]
    fn ledger_row_out_of_range_is_typed() {
        let rec =
            Record::parse("{\"type\":\"sched\",\"func\":9,\"at\":0,\"slots\":\"1\"}").unwrap();
        let mut ledger = ScheduleLedger::new(2);
        assert!(matches!(
            decode_ledger_row(&mut ledger, &rec),
            Err(RecoverError::Corrupt { .. })
        ));
    }

    #[test]
    fn metrics_round_trip_is_bit_exact() {
        let mut m = RunMetrics::new("probe", 3);
        m.service_time_s = 0.1 + 0.2;
        m.keepalive_cost_usd = 1.0 / 3.0;
        m.accuracy_sum_pct = 3.0 * 80.1; // non-terminating binary fraction
        m.warm_starts = 7;
        m.cold_starts = 2;
        m.downgrades = 5;
        m.memory_series_mb = vec![0.0, 1536.5, 2.0f64.powi(-40)];
        m.cost_series_usd = vec![0.0, 1e-9];
        let rec = Record::parse(&encode_metrics(&m)).unwrap();
        let back = decode_metrics(&rec).unwrap();
        assert_eq!(back.policy, m.policy);
        assert_eq!(back.service_time_s.to_bits(), m.service_time_s.to_bits());
        assert_eq!(
            back.keepalive_cost_usd.to_bits(),
            m.keepalive_cost_usd.to_bits()
        );
        assert_eq!(back.memory_series_mb.len(), 3);
        for (a, b) in back.memory_series_mb.iter().zip(m.memory_series_mb.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.warm_starts, 7);
    }

    #[test]
    fn errors_render_useful_messages() {
        let e = RecoverError::VersionSkew {
            found: 9,
            supported: SNAPSHOT_VERSION,
        };
        assert!(e.to_string().contains("version 9"));
        let e = RecoverError::PolicyMismatch {
            expected: "pulse".into(),
            found: "openwhisk-fixed".into(),
        };
        assert!(e.to_string().contains("pulse"));
        let e = RecoverError::NotCheckpointable {
            policy: "mystery".into(),
        };
        assert!(e.to_string().contains("mystery"));
        assert!(RecoverError::corrupt("bad row")
            .to_string()
            .contains("bad row"));
    }
}

//! A policy watchdog with a safe fallback.
//!
//! PULSE's optimizations are model-driven: when the invocation-probability
//! model goes bad (a workload shift, a pathological trace, a mis-tuned
//! threshold scheme) the policy can bleed cold starts or hold far more
//! keep-alive memory than it saves. SPES-style systems answer this with a
//! guarded fallback to the provider default; [`Watchdog`] is that guard for
//! any [`KeepAlivePolicy`].
//!
//! The wrapper tracks a rolling window of per-minute observations (requests,
//! SLO violations, billed keep-alive memory — fed by both engines through
//! [`KeepAlivePolicy::observe_minute`]) and compares two rolling statistics
//! against guardrails:
//!
//! * the **SLO-violation rate** (violations ÷ requests over the window);
//! * the **keep-alive overspend** (mean billed MB over the window).
//!
//! A minute that breaches either guardrail feeds an *enter* streak; a clean
//! minute feeds an *exit* streak. Only [`WatchdogConfig::enter_after`]
//! consecutive breached minutes switch the wrapper to the fixed 10-minute
//! OpenWhisk baseline, and only [`WatchdogConfig::exit_after`] consecutive
//! healthy minutes switch it back — the enter/exit hysteresis that keeps a
//! single transient spike from flapping the policy.
//!
//! With [`WatchdogConfig::disabled`] the wrapper is a pure pass-through: it
//! never evaluates the guardrails, never falls back, and adds no events —
//! runs are bit-identical to driving the inner policy directly.

use crate::policies::OpenWhiskFixed;
use crate::policy::{KeepAlivePolicy, MinuteObservation};
use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};
use pulse_obs::{Record, RecordBuilder};
use std::collections::VecDeque;

/// Guardrails and hysteresis for [`Watchdog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Master switch. When false the wrapper is a pure pass-through.
    pub enabled: bool,
    /// Rolling-window length, minutes.
    pub window: usize,
    /// Breach when the window's SLO-violation rate exceeds this fraction.
    pub max_violation_rate: f64,
    /// Breach when the window's mean keep-alive memory exceeds this, MB
    /// (`f64::INFINITY` disables the overspend guardrail).
    pub max_keepalive_mb: f64,
    /// Consecutive breached minutes before falling back.
    pub enter_after: u32,
    /// Consecutive healthy minutes before recovering.
    pub exit_after: u32,
}

impl WatchdogConfig {
    /// A disabled watchdog: pure pass-through, never falls back.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

impl Default for WatchdogConfig {
    /// Enabled, 30-minute window, 50% violation rate, no memory guardrail,
    /// enter after 3 breached minutes, exit after 10 healthy ones.
    fn default() -> Self {
        Self {
            enabled: true,
            window: 30,
            max_violation_rate: 0.5,
            max_keepalive_mb: f64::INFINITY,
            enter_after: 3,
            exit_after: 10,
        }
    }
}

/// One state transition taken by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogTransition {
    /// The minute whose observation triggered the switch.
    pub minute: Minute,
    /// True when the switch entered fallback, false when it recovered.
    pub to_fallback: bool,
}

/// A [`KeepAlivePolicy`] wrapper that falls back to the fixed 10-minute
/// OpenWhisk baseline when the inner policy breaches its guardrails, with
/// enter/exit hysteresis. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct Watchdog<P> {
    inner: P,
    fallback: OpenWhiskFixed,
    cfg: WatchdogConfig,
    name: String,
    /// Rolling window of (requests, violations, keepalive_mb).
    window: VecDeque<(u64, u64, f64)>,
    sum_requests: u64,
    sum_violations: u64,
    sum_keepalive_mb: f64,
    streak_breached: u32,
    streak_healthy: u32,
    in_fallback: bool,
    transitions: Vec<WatchdogTransition>,
    fallback_minutes: u64,
}

impl<P: KeepAlivePolicy> Watchdog<P> {
    /// Wrap `inner`, using the fixed 10-minute baseline over `families` as
    /// the safe fallback.
    pub fn new(inner: P, families: &[ModelFamily], cfg: WatchdogConfig) -> Self {
        let name = format!("watchdog({})", inner.name());
        Self {
            inner,
            fallback: OpenWhiskFixed::new(families),
            cfg,
            name,
            window: VecDeque::new(),
            sum_requests: 0,
            sum_violations: 0,
            sum_keepalive_mb: 0.0,
            streak_breached: 0,
            streak_healthy: 0,
            in_fallback: false,
            transitions: Vec::new(),
            fallback_minutes: 0,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// State transitions taken so far, in order.
    pub fn transitions(&self) -> &[WatchdogTransition] {
        &self.transitions
    }

    /// Minutes spent in fallback so far.
    pub fn fallback_minutes(&self) -> u64 {
        self.fallback_minutes
    }

    /// Whether the rolling window currently breaches a guardrail.
    fn window_breached(&self) -> bool {
        if self.window.is_empty() {
            return false;
        }
        let rate = if self.sum_requests == 0 {
            0.0
        } else {
            self.sum_violations as f64 / self.sum_requests as f64
        };
        let mean_mb = self.sum_keepalive_mb / self.window.len() as f64;
        rate > self.cfg.max_violation_rate || mean_mb > self.cfg.max_keepalive_mb
    }
}

impl<P: KeepAlivePolicy> KeepAlivePolicy for Watchdog<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        // The inner policy keeps observing invocations even while benched —
        // its interarrival statistics must stay fresh for recovery.
        let inner_schedule = self.inner.schedule_on_invocation(f, t);
        if self.in_fallback {
            self.fallback.schedule_on_invocation(f, t)
        } else {
            inner_schedule
        }
    }

    fn cold_start_variant(&mut self, f: FuncId, t: Minute) -> VariantId {
        let inner_choice = self.inner.cold_start_variant(f, t);
        if self.in_fallback {
            self.fallback.cold_start_variant(f, t)
        } else {
            inner_choice
        }
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        // In fallback the fixed baseline governs: it has no global layer, so
        // no cross-function actions are taken (the inner policy is not
        // consulted — its actions would mutate `alive` inconsistently with
        // the schedules the fallback produced).
        if self.in_fallback {
            return Vec::new();
        }
        self.inner.adjust_minute(
            t,
            mem_history,
            first_minute_of_period,
            current_kam_mb,
            alive,
        )
    }

    fn observe_minute(&mut self, obs: &MinuteObservation) {
        self.inner.observe_minute(obs);
        if !self.cfg.enabled {
            return;
        }
        self.window
            .push_back((obs.requests, obs.slo_violations, obs.keepalive_mb));
        self.sum_requests += obs.requests;
        self.sum_violations += obs.slo_violations;
        self.sum_keepalive_mb += obs.keepalive_mb;
        while self.window.len() > self.cfg.window.max(1) {
            if let Some((r, v, mb)) = self.window.pop_front() {
                self.sum_requests -= r;
                self.sum_violations -= v;
                self.sum_keepalive_mb -= mb;
            }
        }

        if self.window_breached() {
            self.streak_breached += 1;
            self.streak_healthy = 0;
        } else {
            self.streak_healthy += 1;
            self.streak_breached = 0;
        }

        if !self.in_fallback && self.streak_breached >= self.cfg.enter_after.max(1) {
            self.in_fallback = true;
            self.transitions.push(WatchdogTransition {
                minute: obs.minute,
                to_fallback: true,
            });
        } else if self.in_fallback && self.streak_healthy >= self.cfg.exit_after.max(1) {
            self.in_fallback = false;
            self.transitions.push(WatchdogTransition {
                minute: obs.minute,
                to_fallback: false,
            });
        }
        if self.in_fallback {
            self.fallback_minutes += 1;
        }
    }

    fn in_fallback(&self) -> bool {
        self.in_fallback
    }

    fn checkpoint_state(&self) -> Option<String> {
        let inner = self.inner.checkpoint_state()?;
        let mut win_requests = Vec::with_capacity(self.window.len());
        let mut win_violations = Vec::with_capacity(self.window.len());
        let mut win_keepalive = Vec::with_capacity(self.window.len());
        for &(r, v, mb) in &self.window {
            win_requests.push(r);
            win_violations.push(v);
            win_keepalive.push(mb);
        }
        let tr_minutes: Vec<u64> = self.transitions.iter().map(|t| t.minute).collect();
        let tr_fallback: Vec<u64> = self
            .transitions
            .iter()
            .map(|t| u64::from(t.to_fallback))
            .collect();
        Some(
            RecordBuilder::new("watchdog")
                .u64_list("win_requests", &win_requests)
                .u64_list("win_violations", &win_violations)
                .f64_list("win_keepalive_mb", &win_keepalive)
                .u64("sum_requests", self.sum_requests)
                .u64("sum_violations", self.sum_violations)
                .f64("sum_keepalive_mb", self.sum_keepalive_mb)
                .u64("streak_breached", u64::from(self.streak_breached))
                .u64("streak_healthy", u64::from(self.streak_healthy))
                .bool("in_fallback", self.in_fallback)
                .u64("fallback_minutes", self.fallback_minutes)
                .u64_list("transition_minutes", &tr_minutes)
                .u64_list("transition_to_fallback", &tr_fallback)
                .str("inner", &inner)
                .finish(),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let rec = Record::parse(state).map_err(|e| e.to_string())?;
        if rec.kind() != "watchdog" {
            return Err(format!("expected watchdog state, got {:?}", rec.kind()));
        }
        let err = |e: pulse_obs::ParseError| e.to_string();
        let win_requests = rec.u64_list("win_requests").map_err(err)?;
        let win_violations = rec.u64_list("win_violations").map_err(err)?;
        let win_keepalive = rec.f64_list("win_keepalive_mb").map_err(err)?;
        if win_requests.len() != win_violations.len() || win_requests.len() != win_keepalive.len() {
            return Err("watchdog window series lengths differ".to_string());
        }
        let tr_minutes = rec.u64_list("transition_minutes").map_err(err)?;
        let tr_fallback = rec.u64_list("transition_to_fallback").map_err(err)?;
        if tr_minutes.len() != tr_fallback.len() {
            return Err("watchdog transition series lengths differ".to_string());
        }
        let streak_breached = u32::try_from(rec.u64("streak_breached").map_err(err)?)
            .map_err(|_| "streak_breached overflows u32".to_string())?;
        let streak_healthy = u32::try_from(rec.u64("streak_healthy").map_err(err)?)
            .map_err(|_| "streak_healthy overflows u32".to_string())?;
        self.inner.restore_state(rec.str("inner").map_err(err)?)?;
        self.window = win_requests
            .iter()
            .zip(&win_violations)
            .zip(&win_keepalive)
            .map(|((&r, &v), &mb)| (r, v, mb))
            .collect();
        self.sum_requests = rec.u64("sum_requests").map_err(err)?;
        self.sum_violations = rec.u64("sum_violations").map_err(err)?;
        self.sum_keepalive_mb = rec.f64("sum_keepalive_mb").map_err(err)?;
        self.streak_breached = streak_breached;
        self.streak_healthy = streak_healthy;
        self.in_fallback = rec.bool("in_fallback").map_err(err)?;
        self.fallback_minutes = rec.u64("fallback_minutes").map_err(err)?;
        self.transitions = tr_minutes
            .iter()
            .zip(&tr_fallback)
            .map(|(&minute, &fb)| WatchdogTransition {
                minute,
                to_fallback: fb != 0,
            })
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn fams() -> Vec<ModelFamily> {
        vec![zoo::bert(), zoo::gpt()]
    }

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            enabled: true,
            window: 5,
            max_violation_rate: 0.5,
            max_keepalive_mb: f64::INFINITY,
            enter_after: 3,
            exit_after: 4,
        }
    }

    fn bad_minute(t: Minute) -> MinuteObservation {
        MinuteObservation {
            minute: t,
            requests: 10,
            slo_violations: 10,
            keepalive_mb: 100.0,
        }
    }

    fn good_minute(t: Minute) -> MinuteObservation {
        MinuteObservation {
            minute: t,
            requests: 10,
            slo_violations: 0,
            keepalive_mb: 100.0,
        }
    }

    #[test]
    fn transient_spike_does_not_flap() {
        let f = fams();
        let mut w = Watchdog::new(OpenWhiskFixed::new(&f), &f, cfg());
        // One bad minute among good ones: the enter streak never reaches 3.
        for t in 0..20 {
            let obs = if t == 7 {
                bad_minute(t)
            } else {
                good_minute(t)
            };
            w.observe_minute(&obs);
            assert!(!w.in_fallback(), "flapped at minute {t}");
        }
        assert!(w.transitions().is_empty());
        assert_eq!(w.fallback_minutes(), 0);
    }

    #[test]
    fn sustained_breach_falls_back_and_recovers() {
        let f = fams();
        let mut w = Watchdog::new(OpenWhiskFixed::new(&f), &f, cfg());
        // Sustained violations: fallback after `enter_after` minutes.
        for t in 0..3 {
            assert!(!w.in_fallback());
            w.observe_minute(&bad_minute(t));
        }
        assert!(w.in_fallback(), "3 breached minutes must trip the watchdog");
        // Recovery needs the *rolling window* to go healthy, then
        // `exit_after` consecutive healthy minutes.
        let mut recovered_at = None;
        for t in 3..40 {
            w.observe_minute(&good_minute(t));
            if !w.in_fallback() {
                recovered_at = Some(t);
                break;
            }
        }
        let t = recovered_at.expect("sustained health must recover");
        // Window (5) must flush the bad minutes, then 4 healthy in a row —
        // recovery is not instant.
        assert!(t >= 6, "recovered too eagerly at {t}");
        assert_eq!(w.transitions().len(), 2);
        assert!(w.transitions()[0].to_fallback);
        assert!(!w.transitions()[1].to_fallback);
        assert!(w.fallback_minutes() > 0);
    }

    #[test]
    fn fallback_serves_the_fixed_baseline() {
        let f = fams();
        // Inner keeps the lowest variant; the fallback keeps the highest.
        let inner = crate::policies::FixedVariant::all_low(&f);
        let mut w = Watchdog::new(inner, &f, cfg());
        let before = w.schedule_on_invocation(1, 0);
        assert_eq!(before.variant_at_offset(1), Some(0), "inner governs");
        for t in 0..3 {
            w.observe_minute(&bad_minute(t));
        }
        assert!(w.in_fallback());
        let after = w.schedule_on_invocation(1, 10);
        assert_eq!(
            after.variant_at_offset(1),
            Some(f[1].highest_id()),
            "fallback governs"
        );
        assert_eq!(w.cold_start_variant(1, 10), f[1].highest_id());
        // No cross-function actions while benched.
        let mut alive = Vec::new();
        assert!(w.adjust_minute(10, &[], false, 0.0, &mut alive).is_empty());
    }

    #[test]
    fn memory_overspend_guardrail_trips_too() {
        let f = fams();
        let mut w = Watchdog::new(
            OpenWhiskFixed::new(&f),
            &f,
            WatchdogConfig {
                max_violation_rate: 1.0, // violation guardrail off
                max_keepalive_mb: 500.0,
                ..cfg()
            },
        );
        for t in 0..3 {
            w.observe_minute(&MinuteObservation {
                minute: t,
                requests: 1,
                slo_violations: 0,
                keepalive_mb: 10_000.0,
            });
        }
        assert!(w.in_fallback(), "overspend must trip the watchdog");
    }

    #[test]
    fn disabled_watchdog_never_falls_back() {
        let f = fams();
        let mut w = Watchdog::new(OpenWhiskFixed::new(&f), &f, WatchdogConfig::disabled());
        for t in 0..100 {
            w.observe_minute(&bad_minute(t));
        }
        assert!(!w.in_fallback());
        assert!(w.transitions().is_empty());
        assert_eq!(w.fallback_minutes(), 0);
        assert_eq!(w.name(), "watchdog(openwhisk-fixed-10min)");
    }

    #[test]
    fn zero_request_window_is_healthy() {
        let f = fams();
        let mut w = Watchdog::new(OpenWhiskFixed::new(&f), &f, cfg());
        for t in 0..10 {
            w.observe_minute(&MinuteObservation {
                minute: t,
                requests: 0,
                slo_violations: 0,
                keepalive_mb: 0.0,
            });
        }
        assert!(!w.in_fallback(), "an idle platform is not a breach");
    }
}

//! Model-to-function assignment (the paper's 1000-run methodology).
//!
//! "Using the gathered data, we conducted 1000 simulation runs, each
//! presenting a unique combination of model-to-function assignments." Each
//! run draws one model family per function from the zoo, uniformly with
//! replacement, so the 12 functions cover a varying mix of GPT/BERT/YOLO/
//! ResNet/DenseNet workloads.

use pulse_models::ModelFamily;
use rand::Rng;

/// Draw one family per function, uniformly with replacement from `zoo`.
pub fn random_assignment<R: Rng + ?Sized>(
    zoo: &[ModelFamily],
    n_functions: usize,
    rng: &mut R,
) -> Vec<ModelFamily> {
    assert!(!zoo.is_empty(), "zoo must be non-empty");
    (0..n_functions)
        .map(|_| zoo[rng.gen_range(0..zoo.len())].clone())
        .collect()
}

/// Deterministic round-robin assignment (fixture-friendly: every family
/// appears, order is stable).
pub fn round_robin_assignment(zoo: &[ModelFamily], n_functions: usize) -> Vec<ModelFamily> {
    assert!(!zoo.is_empty(), "zoo must be non-empty");
    (0..n_functions)
        .map(|i| zoo[i % zoo.len()].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_assignment_draws_from_zoo() {
        let z = zoo::standard();
        let a = random_assignment(&z, 12, &mut SmallRng::seed_from_u64(4));
        assert_eq!(a.len(), 12);
        for f in &a {
            assert!(z.iter().any(|g| g.name == f.name));
        }
    }

    #[test]
    fn random_assignment_varies_with_seed() {
        let z = zoo::standard();
        let a = random_assignment(&z, 12, &mut SmallRng::seed_from_u64(1));
        let names = |xs: &[ModelFamily]| xs.iter().map(|f| f.name.clone()).collect::<Vec<_>>();
        let differs = (2..30).any(|s| {
            names(&random_assignment(&z, 12, &mut SmallRng::seed_from_u64(s))) != names(&a)
        });
        assert!(differs);
    }

    #[test]
    fn round_robin_covers_all_families() {
        let z = zoo::standard();
        let a = round_robin_assignment(&z, 12);
        assert_eq!(a.len(), 12);
        for g in &z {
            assert!(a.iter().any(|f| f.name == g.name));
        }
        assert_eq!(a[0].name, a[5].name);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_zoo_rejected() {
        round_robin_assignment(&[], 3);
    }
}

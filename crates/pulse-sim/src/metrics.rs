//! Per-run accounting: the paper's three metrics plus supporting series.
//!
//! * **Service time** — cumulative seconds across all invocations; a warm
//!   start contributes only execution time, a cold start adds the cold-start
//!   latency ("when an invoked function experiences a warm start, it incurs
//!   zero cold-start time").
//! * **Keep-alive cost** — the provider's monetary cost of keeping containers
//!   alive, metered per minute from the keep-alive memory footprint.
//! * **Accuracy** — "the sum of the accuracy delivered by each model during
//!   invocations, divided by the total number of invocations".

use pulse_models::stats;
use serde::{Deserialize, Serialize};

/// Metrics accumulated over one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Policy that produced this run.
    pub policy: String,
    /// Total service time across all invocations, seconds.
    pub service_time_s: f64,
    /// Total keep-alive cost, USD.
    pub keepalive_cost_usd: f64,
    /// Sum of per-invocation delivered accuracy, percent (divide by
    /// `invocations` for the average — see [`Self::avg_accuracy_pct`]).
    pub accuracy_sum_pct: f64,
    /// Number of invocations served warm.
    pub warm_starts: u64,
    /// Number of invocations that experienced a cold start.
    pub cold_starts: u64,
    /// Keep-alive memory at each minute, MB.
    pub memory_series_mb: Vec<f64>,
    /// Keep-alive cost incurred at each minute, USD.
    pub cost_series_usd: Vec<f64>,
    /// Number of downgrade/evict actions taken by cross-function
    /// optimization (0 for policies without one).
    pub downgrades: u64,
}

impl RunMetrics {
    /// Fresh metrics for a run of `minutes` length.
    pub fn new(policy: impl Into<String>, minutes: usize) -> Self {
        Self {
            policy: policy.into(),
            service_time_s: 0.0,
            keepalive_cost_usd: 0.0,
            accuracy_sum_pct: 0.0,
            warm_starts: 0,
            cold_starts: 0,
            memory_series_mb: Vec::with_capacity(minutes),
            cost_series_usd: Vec::with_capacity(minutes),
            downgrades: 0,
        }
    }

    /// Total invocations served.
    pub fn invocations(&self) -> u64 {
        self.warm_starts + self.cold_starts
    }

    /// The paper's accuracy metric: average delivered accuracy, percent.
    /// Zero when no invocation was served.
    pub fn avg_accuracy_pct(&self) -> f64 {
        stats::ratio_or_zero(self.accuracy_sum_pct, self.invocations() as f64)
    }

    /// Fraction of invocations served warm, in `[0, 1]`.
    pub fn warm_fraction(&self) -> f64 {
        stats::ratio_or_zero(self.warm_starts as f64, self.invocations() as f64)
    }

    /// Peak keep-alive memory over the run, MB.
    pub fn peak_memory_mb(&self) -> f64 {
        stats::max(&self.memory_series_mb)
    }

    /// Mean keep-alive memory over the run, MB.
    pub fn avg_memory_mb(&self) -> f64 {
        stats::mean(&self.memory_series_mb)
    }

    /// Percentage improvement of `self` over a `baseline` for a
    /// lower-is-better quantity (cost, service time): positive means `self`
    /// is cheaper/faster. A zero baseline reports 0.0 (nothing to improve
    /// on), via the shared [`stats::ratio_or_zero`] convention.
    pub fn improvement_pct(ours: f64, baseline: f64) -> f64 {
        stats::ratio_or_zero(baseline - ours, baseline) * 100.0
    }
}

/// Aggregate of many runs (the 1000-run simulation): streaming mean/σ of the
/// scalar metrics.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Policy name.
    pub policy: String,
    /// Service-time accumulator (seconds).
    pub service_time_s: pulse_models::stats::Running,
    /// Cost accumulator (USD).
    pub keepalive_cost_usd: pulse_models::stats::Running,
    /// Average-accuracy accumulator (percent).
    pub accuracy_pct: pulse_models::stats::Running,
    /// Warm-fraction accumulator.
    pub warm_fraction: pulse_models::stats::Running,
    /// Peak-memory accumulator (MB).
    pub peak_memory_mb: pulse_models::stats::Running,
}

impl Aggregate {
    /// Empty aggregate for a policy.
    pub fn new(policy: impl Into<String>) -> Self {
        Self {
            policy: policy.into(),
            ..Default::default()
        }
    }

    /// Fold in one run.
    pub fn push(&mut self, m: &RunMetrics) {
        self.service_time_s.push(m.service_time_s);
        self.keepalive_cost_usd.push(m.keepalive_cost_usd);
        self.accuracy_pct.push(m.avg_accuracy_pct());
        self.warm_fraction.push(m.warm_fraction());
        self.peak_memory_mb.push(m.peak_memory_mb());
    }

    /// Merge a partial aggregate from another worker.
    pub fn merge(&mut self, other: &Aggregate) {
        self.service_time_s.merge(&other.service_time_s);
        self.keepalive_cost_usd.merge(&other.keepalive_cost_usd);
        self.accuracy_pct.merge(&other.accuracy_pct);
        self.warm_fraction.merge(&other.warm_fraction);
        self.peak_memory_mb.merge(&other.peak_memory_mb);
    }

    /// Number of runs folded in.
    pub fn runs(&self) -> u64 {
        self.service_time_s.count()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        let mut m = RunMetrics::new("test", 4);
        m.service_time_s = 100.0;
        m.keepalive_cost_usd = 0.5;
        m.accuracy_sum_pct = 80.0 * 8.0;
        m.warm_starts = 6;
        m.cold_starts = 2;
        m.memory_series_mb = vec![100.0, 400.0, 200.0, 300.0];
        m.cost_series_usd = vec![0.1, 0.2, 0.1, 0.1];
        m
    }

    #[test]
    fn derived_metrics() {
        let m = sample();
        assert_eq!(m.invocations(), 8);
        assert!((m.avg_accuracy_pct() - 80.0).abs() < 1e-12);
        assert!((m.warm_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(m.peak_memory_mb(), 400.0);
        assert!((m.avg_memory_mb() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let m = RunMetrics::new("x", 0);
        assert_eq!(m.invocations(), 0);
        assert_eq!(m.avg_accuracy_pct(), 0.0);
        assert_eq!(m.warm_fraction(), 0.0);
        assert_eq!(m.peak_memory_mb(), 0.0);
    }

    #[test]
    fn improvement_sign_convention() {
        // Ours cheaper than baseline → positive improvement.
        assert!((RunMetrics::improvement_pct(60.0, 100.0) - 40.0).abs() < 1e-12);
        assert!((RunMetrics::improvement_pct(120.0, 100.0) + 20.0).abs() < 1e-12);
        assert_eq!(RunMetrics::improvement_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn aggregate_means_match() {
        let mut agg = Aggregate::new("p");
        let m = sample();
        agg.push(&m);
        agg.push(&m);
        assert_eq!(agg.runs(), 2);
        assert!((agg.service_time_s.mean() - 100.0).abs() < 1e-12);
        assert!((agg.accuracy_pct.mean() - 80.0).abs() < 1e-12);
        assert_eq!(agg.service_time_s.std_dev(), 0.0);
    }

    #[test]
    fn aggregate_merge() {
        let m = sample();
        let mut a = Aggregate::new("p");
        a.push(&m);
        let mut b = Aggregate::new("p");
        b.push(&m);
        a.merge(&b);
        assert_eq!(a.runs(), 2);
        assert!((a.keepalive_cost_usd.mean() - 0.5).abs() < 1e-12);
    }
}

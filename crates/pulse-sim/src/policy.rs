//! The keep-alive policy interface the simulator drives.

use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};

/// A keep-alive policy: decides which variant container (if any) each
/// function keeps alive at each minute, and how to react to memory peaks.
///
/// The engine calls:
/// * [`Self::schedule_on_invocation`] after every invocation — the returned
///   schedule replaces the function's remaining plan;
/// * [`Self::cold_start_variant`] when an invocation arrives with no alive
///   container — the variant launched for that cold start;
/// * [`Self::adjust_minute`] once per minute *before* invocations are served
///   — the policy may return downgrade/evict actions (cross-function
///   optimization). Policies without a global layer use the default no-op.
pub trait KeepAlivePolicy: Send {
    /// Human-readable policy name for reports.
    fn name(&self) -> &str;

    /// Plan the keep-alive window following an invocation of `f` at `t`.
    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule;

    /// The variant to launch when `f` cold-starts at `t`.
    fn cold_start_variant(&mut self, f: FuncId, t: Minute) -> VariantId;

    /// Cross-function adjustment at minute `t`.
    ///
    /// * `mem_history` — keep-alive memory of minutes `0..t` (MB);
    /// * `first_minute_of_period` — true when this minute begins a new
    ///   keep-alive period (an invocation arrived in the previous minute, or
    ///   activity just resumed after an idle stretch) — Algorithm 1's
    ///   `t == 1` branch;
    /// * `current_kam_mb` — keep-alive memory at `t` before adjustment;
    /// * `alive` — alive containers at `t`; implementations mutate it in
    ///   step with the actions they return.
    fn adjust_minute(
        &mut self,
        _t: Minute,
        _mem_history: &[f64],
        _first_minute_of_period: bool,
        _current_kam_mb: f64,
        _alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        Vec::new()
    }
}

/// Shared helper: the highest variant id of each family, used by several
/// policies as the provider-default cold-start choice.
pub fn highest_ids(families: &[ModelFamily]) -> Vec<VariantId> {
    families.iter().map(|f| f.highest_id()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    #[test]
    fn highest_ids_match_families() {
        let fams = vec![zoo::bert(), zoo::gpt()];
        assert_eq!(highest_ids(&fams), vec![1, 2]);
    }

    struct Noop;
    impl KeepAlivePolicy for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn schedule_on_invocation(&mut self, _f: FuncId, t: Minute) -> KeepAliveSchedule {
            KeepAliveSchedule::constant(t, 0, 10)
        }
        fn cold_start_variant(&mut self, _f: FuncId, _t: Minute) -> VariantId {
            0
        }
    }

    #[test]
    fn default_adjust_is_noop() {
        let mut p = Noop;
        let mut alive = Vec::new();
        let actions = p.adjust_minute(5, &[1.0, 2.0], false, 100.0, &mut alive);
        assert!(actions.is_empty());
    }
}

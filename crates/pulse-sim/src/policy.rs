//! The keep-alive policy interface the simulator drives.

use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::types::{FuncId, Minute};
use pulse_models::{ModelFamily, VariantId};

/// What one simulated minute looked like from the platform's side, fed back
/// to the policy after the minute completes (see
/// [`KeepAlivePolicy::observe_minute`]). Both engines report it: the minute
/// engine counts a cold start as the SLO violation, the event-driven runtime
/// additionally counts terminal failures and shed requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinuteObservation {
    /// The minute that just completed.
    pub minute: Minute,
    /// Requests that arrived during the minute.
    pub requests: u64,
    /// Requests that violated the SLO during the minute (cold starts in the
    /// minute engine; cold starts + failures + sheds in the runtime).
    pub slo_violations: u64,
    /// Keep-alive memory billed for the minute, MB.
    pub keepalive_mb: f64,
}

/// A keep-alive policy: decides which variant container (if any) each
/// function keeps alive at each minute, and how to react to memory peaks.
///
/// The engine calls:
/// * [`Self::schedule_on_invocation`] after every invocation — the returned
///   schedule replaces the function's remaining plan;
/// * [`Self::cold_start_variant`] when an invocation arrives with no alive
///   container — the variant launched for that cold start;
/// * [`Self::adjust_minute`] once per minute *before* invocations are served
///   — the policy may return downgrade/evict actions (cross-function
///   optimization). Policies without a global layer use the default no-op;
/// * [`Self::observe_minute`] after each minute completes — feedback for
///   self-monitoring wrappers such as [`crate::watchdog::Watchdog`]. The
///   default is a no-op, so plain policies are unaffected.
pub trait KeepAlivePolicy: Send {
    /// Human-readable policy name for reports.
    fn name(&self) -> &str;

    /// Plan the keep-alive window following an invocation of `f` at `t`.
    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule;

    /// The variant to launch when `f` cold-starts at `t`.
    fn cold_start_variant(&mut self, f: FuncId, t: Minute) -> VariantId;

    /// Cross-function adjustment at minute `t`.
    ///
    /// * `mem_history` — keep-alive memory of minutes `0..t` (MB);
    /// * `first_minute_of_period` — true when this minute begins a new
    ///   keep-alive period (an invocation arrived in the previous minute, or
    ///   activity just resumed after an idle stretch) — Algorithm 1's
    ///   `t == 1` branch;
    /// * `current_kam_mb` — keep-alive memory at `t` before adjustment;
    /// * `alive` — alive containers at `t`; implementations mutate it in
    ///   step with the actions they return.
    fn adjust_minute(
        &mut self,
        _t: Minute,
        _mem_history: &[f64],
        _first_minute_of_period: bool,
        _current_kam_mb: f64,
        _alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        Vec::new()
    }

    /// Feedback after a minute completes: request count, SLO violations and
    /// billed keep-alive memory. Default: ignore it.
    fn observe_minute(&mut self, _obs: &MinuteObservation) {}

    /// Whether the policy is currently serving from a safety fallback (see
    /// [`crate::watchdog::Watchdog`]). Plain policies never are.
    fn in_fallback(&self) -> bool {
        false
    }

    /// Serialize the policy's mutable state for checkpointing, or `None`
    /// when the policy does not support checkpoint/restore (the default).
    /// Stateless policies return an empty string. The format is
    /// policy-private: it only needs to round-trip through
    /// [`Self::restore_state`] on a policy rebuilt with the same constructor
    /// arguments (including seeds).
    fn checkpoint_state(&self) -> Option<String> {
        None
    }

    /// Restore state captured by [`Self::checkpoint_state`] into a policy
    /// rebuilt with the same constructor arguments.
    ///
    /// # Errors
    /// Returns a description of the problem when the policy does not support
    /// checkpointing (the default) or the state does not fit this policy.
    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Err(format!("policy {:?} is not checkpointable", self.name()))
    }
}

/// Boxed policies forward everything, so wrappers generic over
/// `P: KeepAlivePolicy` (e.g. [`crate::watchdog::Watchdog`]) also accept
/// `Box<dyn KeepAlivePolicy>`.
impl<P: KeepAlivePolicy + ?Sized> KeepAlivePolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        (**self).schedule_on_invocation(f, t)
    }

    fn cold_start_variant(&mut self, f: FuncId, t: Minute) -> VariantId {
        (**self).cold_start_variant(f, t)
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        (**self).adjust_minute(
            t,
            mem_history,
            first_minute_of_period,
            current_kam_mb,
            alive,
        )
    }

    fn observe_minute(&mut self, obs: &MinuteObservation) {
        (**self).observe_minute(obs)
    }

    fn in_fallback(&self) -> bool {
        (**self).in_fallback()
    }

    fn checkpoint_state(&self) -> Option<String> {
        (**self).checkpoint_state()
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        (**self).restore_state(state)
    }
}

/// Shared helper: the highest variant id of each family, used by several
/// policies as the provider-default cold-start choice.
pub fn highest_ids(families: &[ModelFamily]) -> Vec<VariantId> {
    families.iter().map(|f| f.highest_id()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    #[test]
    fn highest_ids_match_families() {
        let fams = vec![zoo::bert(), zoo::gpt()];
        assert_eq!(highest_ids(&fams), vec![1, 2]);
    }

    struct Noop;
    impl KeepAlivePolicy for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn schedule_on_invocation(&mut self, _f: FuncId, t: Minute) -> KeepAliveSchedule {
            KeepAliveSchedule::constant(t, 0, 10)
        }
        fn cold_start_variant(&mut self, _f: FuncId, _t: Minute) -> VariantId {
            0
        }
    }

    #[test]
    fn default_adjust_is_noop() {
        let mut p = Noop;
        let mut alive = Vec::new();
        let actions = p.adjust_minute(5, &[1.0, 2.0], false, 100.0, &mut alive);
        assert!(actions.is_empty());
    }

    #[test]
    fn default_observe_is_noop_and_never_in_fallback() {
        let mut p = Noop;
        p.observe_minute(&MinuteObservation {
            minute: 3,
            requests: 10,
            slo_violations: 10,
            keepalive_mb: 1e9,
        });
        assert!(!p.in_fallback());
    }
}

//! # pulse-sim — a minute-resolution serverless keep-alive simulator
//!
//! The paper evaluates PULSE with a trace-driven simulation of a serverless
//! platform: functions receive invocations from a two-week trace, containers
//! hosting ML model variants are kept alive according to a policy, and the
//! platform accounts service time (cold vs warm), keep-alive memory and cost,
//! and delivered accuracy. This crate is that platform.
//!
//! ## Simulation semantics
//!
//! Time advances in one-minute steps over a [`pulse_trace::Trace`]. Each
//! function is assigned one model family. Per minute `t`:
//!
//! 1. Containers alive at `t` follow each function's current keep-alive
//!    schedule (produced by the policy after each invocation).
//! 2. The policy may *adjust* the minute (cross-function optimization): it
//!    sees the keep-alive memory history and the alive set and returns
//!    downgrade/evict actions, which persist for the remainder of each
//!    affected schedule.
//! 3. Invocations at `t` are served: if the function has an alive container,
//!    every invocation that minute is a warm start on the alive variant;
//!    otherwise the first invocation cold-starts the policy's chosen variant
//!    and subsequent same-minute invocations reuse it warm. Each invocation
//!    is then reported to the policy, which returns a fresh keep-alive
//!    schedule for the following window.
//! 4. Keep-alive memory at `t` is the sum of alive-container footprints
//!    (after adjustments); it drives the cost meter and the policy's peak
//!    detection. Execution (in-use) memory of cold starts is *not* counted
//!    as keep-alive — it cannot be reclaimed by a downgrade.
//!
//! ## Layout
//!
//! * [`metrics`] — per-run accounting: service time, keep-alive cost,
//!   accuracy, warm/cold starts, per-minute memory and cost series;
//! * [`policy`] — the [`policy::KeepAlivePolicy`] trait;
//! * [`policies`] — OpenWhisk fixed 10-minute, fixed-variant (all-high /
//!   all-low), random mixing, the intelligent oracle (Tables II/III), the
//!   ideal oracle (Figure 6b), and PULSE itself (with and without the global
//!   optimizer, for Figure 4);
//! * [`engine`] — the minute loop;
//! * [`assignment`] — randomized model-to-function assignment (the paper's
//!   1000-run methodology);
//! * [`runner`] — a crossbeam-parallel many-run harness with streaming
//!   mean/σ aggregation;
//! * [`watchdog`] — a guardrailed wrapper over any policy that falls back to
//!   the fixed 10-minute baseline (with hysteresis) when the policy's
//!   SLO-violation rate or keep-alive overspend goes bad;
//! * [`recover`] — crash-consistent checkpointing: versioned snapshots
//!   ([`SimSession::snapshot`] / [`Simulator::restore_session`]) with typed
//!   soft-failure errors, shared with the event-driven runtime.

pub mod assignment;
pub mod engine;
pub mod metrics;
pub mod policies;
pub mod policy;
pub mod recover;
pub mod runner;
pub mod watchdog;

pub use engine::{SimSession, Simulator};
pub use metrics::RunMetrics;
pub use policy::{KeepAlivePolicy, MinuteObservation};
pub use recover::{RecoverError, SNAPSHOT_VERSION};
pub use watchdog::{Watchdog, WatchdogConfig};

//! Property tests for the minute-resolution simulator: policy-independent
//! accounting invariants, and an independent reconstruction of the fixed
//! policy's cost from first principles.

#![allow(clippy::cast_possible_truncation)] // test-local minute counts fit usize

use proptest::prelude::*;
use pulse_core::types::PulseConfig;
use pulse_models::{CostModel, ModelFamily};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{FixedVariant, OpenWhiskFixed, PulsePolicy, RandomMix};
use pulse_sim::Simulator;
use pulse_trace::{FunctionTrace, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_trace() -> impl Strategy<Value = Trace> {
    (1usize..5, 30usize..150).prop_flat_map(|(nf, minutes)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..3, minutes..=minutes),
            nf..=nf,
        )
        .prop_map(|rows| {
            Trace::new(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, counts)| FunctionTrace::new(format!("f{i}"), counts))
                    .collect(),
            )
        })
    })
}

/// First-principles reconstruction of the fixed policy's billing: for each
/// function, the union of `[t+1, t+window]` intervals over its invocation
/// minutes, clipped to the horizon, times the highest variant's memory.
fn fixed_policy_expected_cost(trace: &Trace, fams: &[ModelFamily], window: u64) -> f64 {
    let cm = CostModel::aws_lambda();
    let mut total = 0.0;
    for (f, fam) in fams.iter().enumerate() {
        let mem = fam.highest().memory_mb;
        let mut alive = vec![false; trace.minutes()];
        for &t in &trace.function(f).invocation_minutes() {
            for m in t + 1..=t + window {
                if let Some(slot) = alive.get_mut(m as usize) {
                    *slot = true;
                }
            }
        }
        let minutes = alive.iter().filter(|&&a| a).count();
        total += cm.keepalive_cost_usd_per_minutes(mem, minutes as f64);
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine's billing matches the closed-form interval-union cost for
    /// the fixed policy on arbitrary workloads.
    #[test]
    fn fixed_policy_cost_matches_first_principles(trace in arb_trace()) {
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), trace.n_functions());
        let sim = Simulator::new(trace.clone(), fams.clone());
        let m = sim.run(&mut OpenWhiskFixed::new(&fams));
        let expected = fixed_policy_expected_cost(&trace, &fams, 10);
        prop_assert!(
            (m.keepalive_cost_usd - expected).abs() < 1e-9,
            "engine {} vs reconstruction {}",
            m.keepalive_cost_usd,
            expected
        );
    }

    /// Accounting invariants hold for every policy on arbitrary workloads.
    #[test]
    fn accounting_invariants_for_all_policies(trace in arb_trace(), seed in 0u64..100) {
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), trace.n_functions());
        let sim = Simulator::new(trace.clone(), fams.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let metrics = [
            sim.run(&mut OpenWhiskFixed::new(&fams)),
            sim.run(&mut FixedVariant::all_low(&fams)),
            sim.run(&mut RandomMix::new(&fams, &mut rng)),
            sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default())),
        ];
        for m in &metrics {
            prop_assert_eq!(m.invocations(), trace.total_invocations(), "{}", &m.policy);
            prop_assert_eq!(m.memory_series_mb.len(), trace.minutes());
            let series: f64 = m.cost_series_usd.iter().sum();
            prop_assert!((series - m.keepalive_cost_usd).abs() < 1e-9);
            for &mb in &m.memory_series_mb {
                prop_assert!(mb >= 0.0 && mb.is_finite());
            }
            if m.invocations() > 0 {
                prop_assert!(m.avg_accuracy_pct() >= 50.0 && m.avg_accuracy_pct() <= 100.0);
            }
        }
        // All-low is never more expensive than the all-high fixed policy.
        prop_assert!(metrics[1].keepalive_cost_usd <= metrics[0].keepalive_cost_usd + 1e-12);
    }

    /// PULSE's cost never exceeds the fixed policy's on any workload: its
    /// schedules only ever choose variants at or below the highest, for the
    /// same covered minutes or fewer.
    #[test]
    fn pulse_is_never_more_expensive_than_fixed(trace in arb_trace()) {
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), trace.n_functions());
        let sim = Simulator::new(trace.clone(), fams.clone());
        let fixed = sim.run(&mut OpenWhiskFixed::new(&fams));
        let pulse = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        prop_assert!(
            pulse.keepalive_cost_usd <= fixed.keepalive_cost_usd + 1e-9,
            "pulse {} > fixed {}",
            pulse.keepalive_cost_usd,
            fixed.keepalive_cost_usd
        );
    }
}

//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the PULSE workspace uses:
//! the [`proptest!`] macro (including `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`, [`prop_oneof!`],
//! range and tuple strategies, [`strategy::Just`], `prop_map` /
//! `prop_flat_map`, [`collection::vec`] and [`arbitrary::any`].
//!
//! Differences from real proptest, deliberately accepted for a hermetic
//! offline build:
//!
//! * **No shrinking** — a failing case reports the raw generated inputs.
//! * **Deterministic seeding** — the RNG seed derives from the test-function
//!   name, so failures reproduce exactly across runs and machines; the
//!   `proptest-regressions` persistence files are ignored.
//! * Fewer cases by default (64 vs 256) to keep CI latency low;
//!   `ProptestConfig::with_cases` is honored.

pub mod test_runner {
    //! Runner plumbing: config, RNG, failure type.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure with an explanatory message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }

        /// Proptest-compatible alias of [`TestCaseError::fail`].
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-case result type produced by property bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic xoshiro256++ generator used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG seeded from a stable FNV-1a hash of `name` — typically the
        /// property function's name, so each property has an independent and
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_u64(h)
        }

        /// RNG from an explicit `u64` seed (SplitMix64 expansion).
        pub fn from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 1;
            }
            Self { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform draw from `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let threshold = span.wrapping_neg() % span;
            loop {
                let m = (self.next_u64() as u128).wrapping_mul(span as u128);
                if m as u64 >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate an intermediate value, then a strategy from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Helper used by [`crate::prop_oneof!`] to erase each alternative.
    pub fn erase<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> OneOf<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T: Debug> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    // References to strategies are strategies (lets generators be reused).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s whose length lies in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning many magnitudes.
            let u = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.below(61) as i32) - 30;
            u * (2.0f64).powi(exp)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items (each usually carrying its
/// own `#[test]` attribute, mirroring real proptest usage).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let mut inputs = ::std::string::String::new();
                    $(
                        let __generated = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        inputs.push_str(concat!("\n  ", stringify!($arg), " = "));
                        inputs.push_str(&format!("{:?}", &__generated));
                        let $arg = __generated;
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Property-test assertion returning `Err` (not panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::erase($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -4i64..=4, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&z), "z = {z}");
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn oneof_and_just_choose_listed_values(k in prop_oneof![Just(1u8), Just(7u8)]) {
            prop_assert!(k == 1 || k == 7);
        }

        #[test]
        fn maps_compose(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }

        #[test]
        fn flat_map_threads_intermediate(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..2, n..=n))) {
            prop_assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_honored(_x in 0u32..10) {
            // Body runs exactly `cases` times; nothing to assert per case.
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("alpha");
        let mut b = crate::test_runner::TestRng::deterministic("alpha");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property 'sample' failed")]
    fn failing_property_panics_with_inputs() {
        // Simulate the expansion directly to keep the should_panic local.
        crate::__proptest_impl!((crate::test_runner::ProptestConfig::with_cases(5))
            fn sample(x in 0u32..10) {
                prop_assert!(x < 3, "x = {x} escaped");
            }
        );
        sample();
    }
}

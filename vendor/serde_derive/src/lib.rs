//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates policy types with `#[derive(Serialize,
//! Deserialize)]` for downstream consumers, but nothing in-tree performs
//! (de)serialization, so these derives expand to an empty token stream.
//! `#[serde(...)]` field/container attributes are accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

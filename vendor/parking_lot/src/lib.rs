//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape the workspace uses — `lock()` /
//! `read()` / `write()` returning guards directly rather than `Result`s.
//! Poisoning is transparently ignored (a panicked holder's data is still
//! returned), matching `parking_lot` semantics.

use std::sync;

/// Mutual exclusion lock with `parking_lot`'s panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader–writer lock with `parking_lot`'s panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}

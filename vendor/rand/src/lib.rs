//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the (small) API subset the PULSE workspace actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` over integer and float
//!   ranges;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`] and [`rngs::StdRng`] (both xoshiro256++ here);
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is deterministic per seed (a requirement of the PULSE
//! 1000-run sweeps) and statistically solid for simulation workloads
//! (xoshiro256++ seeded via SplitMix64), but this crate makes **no**
//! compatibility promise about the exact value streams of the real `rand`
//! crate — only about the API shape and determinism.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly-distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range_only {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_only!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}

impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}

impl Standard for isize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

/// Uniform draw from `[0, span)` (`span > 0`) via Lemire's multiply-shift
/// with rejection, avoiding modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(span as u128);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng); // [0, 1)
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level random value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniformly-distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range`. Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64 key expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, deterministic. Stands in for the real
    /// crate's `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The generator's current internal state, for checkpointing. An
        /// RNG rebuilt with [`Self::from_state`] from this value continues
        /// the exact same output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator at a previously captured [`Self::state`]
        /// cursor. The all-zero state (a fixed point of xoshiro256++) is
        /// nudged exactly as [`SeedableRng::from_seed`] does, so a round
        /// trip through `state()`/`from_state()` is always the identity on
        /// reachable states.
        pub fn from_state(s: [u64; 4]) -> Self {
            let mut s = s;
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    /// Same generator as [`SmallRng`]; the workspace only needs determinism,
    /// not CSPRNG strength.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Slice sampling helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_full_span() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let cursor = a.state();
        let mut b = SmallRng::from_state(cursor);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero state is nudged, never a fixed point.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([42u8].choose(&mut rng).is_some());
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the `pulse-bench` crate uses — groups, bench
//! ids, throughput annotation, `iter`/`iter_batched` — with a deliberately
//! simple measurement loop: each benchmark runs `sample_size` timed
//! iterations after one warm-up and reports the mean wall time to stdout.
//! There is no statistical analysis, HTML report, or comparison store; this
//! exists so `cargo bench` compiles and produces order-of-magnitude numbers
//! in an offline environment.

use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints accepted by [`Bencher::iter_batched`] (ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: u32,
    /// Mean wall time of the last `iter*` call, filled by the harness.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / self.samples.max(1));
    }

    /// Time `routine` with fresh input from `setup` each iteration; setup
    /// time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean = Some(total / self.samples.max(1));
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Set the measurement time (accepted for API compatibility; the simple
    /// loop here is iteration-count driven, so this is ignored).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Set warm-up time (ignored; one warm-up call is always made).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, None, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Criterion's post-run hook (no-op here).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, samples: u32, f: F)
where
    F: FnOnce(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        last_mean: None,
    };
    f(&mut b);
    match (b.last_mean, throughput) {
        (Some(mean), Some(Throughput::Elements(n))) => {
            let per_sec = if mean.as_secs_f64() > 0.0 {
                n as f64 / mean.as_secs_f64()
            } else {
                f64::INFINITY
            };
            println!("bench {name}: mean {mean:?} ({per_sec:.0} elem/s)");
        }
        (Some(mean), Some(Throughput::Bytes(n))) => {
            let per_sec = if mean.as_secs_f64() > 0.0 {
                n as f64 / mean.as_secs_f64()
            } else {
                f64::INFINITY
            };
            println!("bench {name}: mean {mean:?} ({per_sec:.0} B/s)");
        }
        (Some(mean), None) => println!("bench {name}: mean {mean:?}"),
        (None, _) => println!("bench {name}: no measurement recorded"),
    }
    if let (Some(mean), Ok(path)) = (b.last_mean, std::env::var("PULSE_BENCH_JSON")) {
        append_json_point(&path, name, mean, samples, throughput);
    }
}

/// Append one machine-readable measurement to the JSON Lines trajectory
/// file named by the `PULSE_BENCH_JSON` environment variable (one object
/// per line, so successive `cargo bench` runs accumulate a time series):
///
/// ```json
/// {"bench":"fleet/rolling_crashes","mean_ns":812345,"samples":10,"elements_per_sec":443.1}
/// ```
///
/// Failures to write are warnings, never bench failures.
fn append_json_point(
    path: &str,
    name: &str,
    mean: Duration,
    samples: u32,
    throughput: Option<Throughput>,
) {
    use std::io::Write;
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let mut line = format!(
        "{{\"bench\":\"{escaped}\",\"mean_ns\":{},\"samples\":{samples}",
        mean.as_nanos()
    );
    let per_sec = |n: u64| {
        if mean.as_secs_f64() > 0.0 {
            n as f64 / mean.as_secs_f64()
        } else {
            0.0
        }
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(",\"elements_per_sec\":{:.3}", per_sec(n)));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(",\"bytes_per_sec\":{:.3}", per_sec(n)));
        }
        None => {}
    }
    line.push('}');
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench point to {path}: {e}");
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)` or
/// the block form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("inc", |b| b.iter(|| calls += 1));
        // One warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_function("plain", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn json_trajectory_points_append_and_escape() {
        let path = std::env::temp_dir().join(format!(
            "pulse-bench-traj-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let p = path.to_str().unwrap();
        append_json_point(
            p,
            "grp/run \"a\"",
            Duration::from_micros(1500),
            10,
            Some(Throughput::Elements(3000)),
        );
        append_json_point(p, "plain", Duration::from_nanos(250), 5, None);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"bench\":\"grp/run \\\"a\\\"\",\"mean_ns\":1500000,\"samples\":10,\
             \"elements_per_sec\":2000000.000}"
        );
        assert_eq!(
            lines[1],
            "{\"bench\":\"plain\",\"mean_ns\":250,\"samples\":5}"
        );
    }
}

//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports — both
//! the marker traits and the (no-op) derive macros re-exported from the
//! vendored `serde_derive`. Nothing in-tree serializes, so no serializer
//! plumbing exists here; swapping in the real `serde` later is a
//! `Cargo.toml`-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

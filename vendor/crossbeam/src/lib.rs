//! Offline stand-in for the `crossbeam` facade.
//!
//! Only [`thread::scope`] is provided (the one API the workspace uses),
//! implemented on top of `std::thread::scope`, which has offered the same
//! structured-concurrency guarantee since Rust 1.63.

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`.

    use std::any::Any;

    /// Result type of [`scope`]: `Err` carries a child-thread panic payload.
    pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

    /// Handle passed to the scope closure and to each spawned child.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a child thread inside the scope. As in crossbeam, the
        /// closure receives the scope handle so children can spawn further
        /// children.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Create a scope; all children are joined before `scope` returns.
    ///
    /// Unlike `std::thread::scope` (which re-panics), a child panic is
    /// reported as `Err`, matching crossbeam's contract. The first panic
    /// payload observed is returned.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let handle = Scope { inner: s };
                f(&handle)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_children() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn children_can_spawn_children() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}

//! # pulse — mixed-quality ML model variants for cheap serverless keep-alive
//!
//! A production-quality Rust reproduction of **PULSE: Using Mixed-Quality
//! Models for Reducing Serverless Keep-Alive Cost** (SC-W 2024). PULSE
//! replaces the industry-standard fixed 10-minute keep-alive with a dynamic
//! scheme that keeps *cheaper quality variants* of an ML model warm when the
//! invocation probability is low and the expensive high-accuracy variant
//! warm only at the minutes an invocation is likely — plus a utility-driven
//! cross-function downgrade mechanism that flattens keep-alive memory peaks.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] ([`pulse_core`]) — the policy: inter-arrival probability
//!   model, threshold schemes, Algorithm 1 peak detection, Algorithm 2
//!   utility downgrades, and the shared schedule ledger (typed
//!   `Slot`s, footprint/billing queries, the downgrade write path);
//! * [`models`] ([`pulse_models`]) — the model zoo (BERT/YOLO/GPT/ResNet/
//!   DenseNet variants calibrated to the paper's Table I), cost model,
//!   profiler;
//! * [`trace`] ([`pulse_trace`]) — Azure-schema traces and the synthetic
//!   12-function two-week workload;
//! * [`sim`] ([`pulse_sim`]) — the minute-resolution serverless simulator
//!   and the baseline policies;
//! * [`forecast`] ([`pulse_forecast`]) — Serverless-in-the-Wild and
//!   IceBreaker, standalone and PULSE-integrated;
//! * [`obs`] ([`pulse_obs`]) — structured observability: trace sinks
//!   (JSONL event streams over simulated time), counters and histograms,
//!   all guaranteed not to perturb results;
//! * [`milp`] ([`pulse_milp`]) — the from-scratch simplex + branch-and-bound
//!   MILP baseline.
//!
//! ## Quickstart
//!
//! ```
//! use pulse::prelude::*;
//!
//! // A one-day, 12-function Azure-like workload and a model assignment.
//! let trace = pulse::trace::synth::azure_like_12_with_horizon(7, 1440);
//! let families = pulse::sim::assignment::round_robin_assignment(
//!     &pulse::models::zoo::standard(),
//!     trace.n_functions(),
//! );
//!
//! // Simulate OpenWhisk's fixed policy vs PULSE.
//! let sim = Simulator::new(trace, families.clone());
//! let fixed = sim.run(&mut OpenWhiskFixed::new(&families));
//! let pulse = sim.run(&mut PulsePolicy::new(families, PulseConfig::default()));
//!
//! assert!(pulse.keepalive_cost_usd < fixed.keepalive_cost_usd);
//! ```

pub use pulse_core as core;
pub use pulse_forecast as forecast;
pub use pulse_milp as milp;
pub use pulse_models as models;
pub use pulse_obs as obs;
pub use pulse_runtime as runtime;
pub use pulse_sim as sim;
pub use pulse_trace as trace;

/// The names most programs need, in one import.
pub mod prelude {
    pub use pulse_core::{PulseConfig, PulseEngine, ScheduleLedger, Slot};
    pub use pulse_models::{CostModel, ModelFamily, VariantSpec};
    pub use pulse_obs::{
        CounterRegistry, HistogramRegistry, JsonlSink, MemorySink, NullSink, ObsEvent, TraceSink,
    };
    pub use pulse_runtime::{
        AdmissionControl, ClusterConfig, FaultPlan, FaultRates, FleetConfig, MigrationConfig,
        NodeCapacity, NodeFault, NodeFaultKind, NodeFaultPlan, NodeHealth, NodeSpec, NodeSummary,
        OpsEvent, RetryPolicy, Runtime, RuntimeConfig,
    };
    pub use pulse_sim::policies::{
        FixedVariant, IdealOracle, IntelligentOracle, OpenWhiskFixed, PulsePolicy, RandomMix,
    };
    pub use pulse_sim::{KeepAlivePolicy, RunMetrics, Simulator, Watchdog, WatchdogConfig};
    pub use pulse_trace::{FunctionTrace, Trace};
}

//! Property-based tests (proptest) on the core invariants, spanning crates.

#![allow(clippy::cast_possible_truncation)] // test-local minute counts fit usize

use proptest::prelude::*;
use pulse::core::global::{flatten_peak, AliveModel};
use pulse::core::interarrival::InterArrivalModel;
use pulse::core::peak::PeakDetector;
use pulse::core::priority::PriorityStructure;
use pulse::core::probability::Probability;
use pulse::core::thresholds::{SchemeT1, SchemeT2, ThresholdScheme};
use pulse::milp::MilpDowngrader;
use pulse::models::stats::normalize_min_max;
use pulse::models::zoo;

proptest! {
    /// Gap probabilities are a sub-distribution: every entry in [0,1] and
    /// the in-window mass never exceeds 1.
    #[test]
    fn gap_probabilities_are_subdistribution(
        gaps in proptest::collection::vec(1u64..200, 0..60),
        local_window in 1u32..200,
    ) {
        let mut m = InterArrivalModel::new();
        let mut t = 0u64;
        m.record(t);
        for g in gaps {
            t += g;
            m.record(t);
        }
        let p = m.probabilities(t, local_window, 10);
        let mut mass = 0.0;
        for k in 0..=10u64 {
            let v = p.at(k);
            prop_assert!((0.0..=1.0).contains(&v));
            mass += v;
        }
        prop_assert!(mass <= 1.0 + 1e-9);
    }

    /// Threshold schemes are monotone in p and always in range.
    #[test]
    fn threshold_schemes_monotone(n in 1usize..6, steps in 2usize..50) {
        for scheme in [&SchemeT1 as &dyn ThresholdScheme, &SchemeT2] {
            let mut prev = 0usize;
            for i in 0..=steps {
                let p = Probability::new(i as f64 / steps as f64).unwrap();
                let v = scheme.select(p, n);
                prop_assert!(v < n);
                prop_assert!(v >= prev);
                prev = v;
            }
        }
    }

    /// Equation 1 normalization maps into [0,1] and hits both endpoints for
    /// non-degenerate input.
    #[test]
    fn normalization_bounds(xs in proptest::collection::vec(0.0f64..1e6, 1..40)) {
        let ys = normalize_min_max(&xs);
        prop_assert_eq!(ys.len(), xs.len());
        for &y in &ys {
            prop_assert!((0.0..=1.0).contains(&y));
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if hi > lo {
            prop_assert!(ys.contains(&0.0));
            prop_assert!(ys.contains(&1.0));
        } else {
            prop_assert!(ys.iter().all(|&y| y == 0.0));
        }
    }

    /// The peak detector never fires on a non-increasing memory series.
    #[test]
    fn no_peak_on_non_increasing_memory(
        start in 1.0f64..1e5,
        drops in proptest::collection::vec(0.0f64..0.2, 1..50),
        km in 0.0f64..0.5,
    ) {
        let d = PeakDetector::new(km, 5);
        let mut history = vec![start];
        let mut level = start;
        for frac in drops {
            let next = level * (1.0 - frac);
            prop_assert!(!d.detect(&history, false, next));
            history.push(next);
            level = next;
        }
    }

    /// Flattening always terminates, never increases memory, and reaches any
    /// non-negative target.
    #[test]
    fn flatten_terminates_and_hits_target(
        n_models in 1usize..8,
        target_frac in 0.0f64..1.2,
        ips in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let zoo = zoo::standard();
        let fams: Vec<_> = (0..n_models).map(|i| zoo[i % zoo.len()].clone()).collect();
        let mut alive: Vec<AliveModel> = fams
            .iter()
            .enumerate()
            .map(|(func, f)| AliveModel {
                func,
                variant: f.highest_id(),
                invocation_probability: ips[func],
            })
            .collect();
        let total: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let target = total * target_frac;
        let mut pr = PriorityStructure::new(n_models);
        let out = flatten_peak(&mut alive, &fams, &mut pr, total, target);
        prop_assert!(out.final_kam_mb <= total + 1e-9);
        prop_assert!(out.final_kam_mb <= target.max(0.0) + 1e-9 || alive.is_empty());
        // Bookkeeping matches recomputation.
        let recomputed: f64 = alive
            .iter()
            .map(|m| fams[m.func].variant(m.variant).memory_mb)
            .sum();
        prop_assert!((recomputed - out.final_kam_mb).abs() < 1e-6);
        // Priority bumps equal actions taken.
        let bumps: u64 = (0..n_models).map(|m| pr.count(m)).sum();
        prop_assert_eq!(bumps as usize, out.actions.len());
    }

    /// FFT round trip is the identity for arbitrary real signals.
    #[test]
    fn fft_round_trip(signal in proptest::collection::vec(-1e3f64..1e3, 1..129)) {
        let spec = pulse::forecast::fft::fft(&signal);
        let back = pulse::forecast::fft::ifft(&spec);
        for (i, x) in signal.iter().enumerate() {
            prop_assert!((x - back[i]).abs() < 1e-6, "idx {}: {} vs {}", i, x, back[i]);
        }
        // Padding tail reconstructs to ~0.
        for y in &back[signal.len()..] {
            prop_assert!(y.abs() < 1e-6);
        }
    }

    /// The MILP downgrader's plan always respects the memory budget and its
    /// utility is at least the greedy loop's (it is the exact optimizer of
    /// the same objective).
    #[test]
    fn milp_plan_feasible_and_at_least_greedy(
        n_models in 1usize..6,
        target_frac in 0.05f64..1.0,
    ) {
        let zoo = zoo::standard();
        let fams: Vec<_> = (0..n_models).map(|i| zoo[i % zoo.len()].clone()).collect();
        let alive: Vec<AliveModel> = fams
            .iter()
            .enumerate()
            .map(|(func, f)| AliveModel {
                func,
                variant: f.highest_id(),
                invocation_probability: 0.2,
            })
            .collect();
        let total: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let target = total * target_frac;
        let pr = PriorityStructure::new(n_models);
        let plan = MilpDowngrader.solve(&alive, &fams, &pr, target);
        prop_assert!(plan.memory_mb <= target + 1e-6);
        let dp = MilpDowngrader.solve_dp(&alive, &fams, &pr, target);
        prop_assert!(dp.memory_mb <= target + 1e-6);
        // The DP discretizes memory to whole MB (ceil weights, floor
        // capacity), so it solves a slightly *tighter* knapsack: its optimum
        // can never exceed branch-and-bound's, and at knife-edge budgets it
        // may fall short by up to one item's utility.
        prop_assert!(dp.utility <= plan.utility + 1e-9,
            "dp {} > bb {}", dp.utility, plan.utility);
    }

    /// Simulated metrics are consistent for arbitrary small traces.
    #[test]
    fn simulator_invariants_hold_on_random_traces(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u32..3, 60..120), 1..4
        ),
    ) {
        use pulse::prelude::*;
        let len = counts.iter().map(|c| c.len()).min().unwrap();
        let functions: Vec<FunctionTrace> = counts
            .iter()
            .enumerate()
            .map(|(i, c)| FunctionTrace::new(format!("f{i}"), c[..len].to_vec()))
            .collect();
        let trace = Trace::new(functions);
        let zoo = zoo::standard();
        let fams: Vec<_> = (0..trace.n_functions())
            .map(|i| zoo[i % zoo.len()].clone())
            .collect();
        let sim = Simulator::new(trace.clone(), fams.clone());
        let m = sim.run(&mut PulsePolicy::new(
            fams,
            pulse::core::PulseConfig::default(),
        ));
        prop_assert_eq!(m.invocations(), trace.total_invocations());
        prop_assert!(m.keepalive_cost_usd >= 0.0);
        prop_assert!(m.service_time_s >= 0.0);
        for &mb in &m.memory_series_mb {
            prop_assert!(mb >= 0.0);
        }
    }
}

//! Property-based tests (proptest) on the core invariants, spanning crates.

#![allow(clippy::cast_possible_truncation)] // test-local minute counts fit usize

use proptest::prelude::*;
use pulse::core::global::{flatten_peak, AliveModel};
use pulse::core::interarrival::InterArrivalModel;
use pulse::core::peak::PeakDetector;
use pulse::core::priority::PriorityStructure;
use pulse::core::probability::Probability;
use pulse::core::thresholds::{SchemeT1, SchemeT2, ThresholdScheme};
use pulse::milp::MilpDowngrader;
use pulse::models::stats::normalize_min_max;
use pulse::models::zoo;

proptest! {
    /// Gap probabilities are a sub-distribution: every entry in [0,1] and
    /// the in-window mass never exceeds 1.
    #[test]
    fn gap_probabilities_are_subdistribution(
        gaps in proptest::collection::vec(1u64..200, 0..60),
        local_window in 1u32..200,
    ) {
        let mut m = InterArrivalModel::new();
        let mut t = 0u64;
        m.record(t);
        for g in gaps {
            t += g;
            m.record(t);
        }
        let p = m.probabilities(t, local_window, 10);
        let mut mass = 0.0;
        for k in 0..=10u64 {
            let v = p.at(k);
            prop_assert!((0.0..=1.0).contains(&v));
            mass += v;
        }
        prop_assert!(mass <= 1.0 + 1e-9);
    }

    /// Threshold schemes are monotone in p and always in range.
    #[test]
    fn threshold_schemes_monotone(n in 1usize..6, steps in 2usize..50) {
        for scheme in [&SchemeT1 as &dyn ThresholdScheme, &SchemeT2] {
            let mut prev = 0usize;
            for i in 0..=steps {
                let p = Probability::new(i as f64 / steps as f64).unwrap();
                let v = scheme.select(p, n);
                prop_assert!(v < n);
                prop_assert!(v >= prev);
                prev = v;
            }
        }
    }

    /// Equation 1 normalization maps into [0,1] and hits both endpoints for
    /// non-degenerate input.
    #[test]
    fn normalization_bounds(xs in proptest::collection::vec(0.0f64..1e6, 1..40)) {
        let ys = normalize_min_max(&xs);
        prop_assert_eq!(ys.len(), xs.len());
        for &y in &ys {
            prop_assert!((0.0..=1.0).contains(&y));
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if hi > lo {
            prop_assert!(ys.contains(&0.0));
            prop_assert!(ys.contains(&1.0));
        } else {
            prop_assert!(ys.iter().all(|&y| y == 0.0));
        }
    }

    /// The peak detector never fires on a non-increasing memory series.
    #[test]
    fn no_peak_on_non_increasing_memory(
        start in 1.0f64..1e5,
        drops in proptest::collection::vec(0.0f64..0.2, 1..50),
        km in 0.0f64..0.5,
    ) {
        let d = PeakDetector::new(km, 5);
        let mut history = vec![start];
        let mut level = start;
        for frac in drops {
            let next = level * (1.0 - frac);
            prop_assert!(!d.detect(&history, false, next));
            history.push(next);
            level = next;
        }
    }

    /// Flattening always terminates, never increases memory, and reaches any
    /// non-negative target.
    #[test]
    fn flatten_terminates_and_hits_target(
        n_models in 1usize..8,
        target_frac in 0.0f64..1.2,
        ips in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let zoo = zoo::standard();
        let fams: Vec<_> = (0..n_models).map(|i| zoo[i % zoo.len()].clone()).collect();
        let mut alive: Vec<AliveModel> = fams
            .iter()
            .enumerate()
            .map(|(func, f)| AliveModel {
                func,
                variant: f.highest_id(),
                invocation_probability: ips[func],
            })
            .collect();
        let total: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let target = total * target_frac;
        let mut pr = PriorityStructure::new(n_models);
        let out = flatten_peak(&mut alive, &fams, &mut pr, total, target);
        prop_assert!(out.final_kam_mb <= total + 1e-9);
        prop_assert!(out.final_kam_mb <= target.max(0.0) + 1e-9 || alive.is_empty());
        // Bookkeeping matches recomputation.
        let recomputed: f64 = alive
            .iter()
            .map(|m| fams[m.func].variant(m.variant).memory_mb)
            .sum();
        prop_assert!((recomputed - out.final_kam_mb).abs() < 1e-6);
        // Priority bumps equal actions taken.
        let bumps: u64 = (0..n_models).map(|m| pr.count(m)).sum();
        prop_assert_eq!(bumps as usize, out.actions.len());
    }

    /// FFT round trip is the identity for arbitrary real signals.
    #[test]
    fn fft_round_trip(signal in proptest::collection::vec(-1e3f64..1e3, 1..129)) {
        let spec = pulse::forecast::fft::fft(&signal);
        let back = pulse::forecast::fft::ifft(&spec);
        for (i, x) in signal.iter().enumerate() {
            prop_assert!((x - back[i]).abs() < 1e-6, "idx {}: {} vs {}", i, x, back[i]);
        }
        // Padding tail reconstructs to ~0.
        for y in &back[signal.len()..] {
            prop_assert!(y.abs() < 1e-6);
        }
    }

    /// The MILP downgrader's plan always respects the memory budget and its
    /// utility is at least the greedy loop's (it is the exact optimizer of
    /// the same objective).
    #[test]
    fn milp_plan_feasible_and_at_least_greedy(
        n_models in 1usize..6,
        target_frac in 0.05f64..1.0,
    ) {
        let zoo = zoo::standard();
        let fams: Vec<_> = (0..n_models).map(|i| zoo[i % zoo.len()].clone()).collect();
        let alive: Vec<AliveModel> = fams
            .iter()
            .enumerate()
            .map(|(func, f)| AliveModel {
                func,
                variant: f.highest_id(),
                invocation_probability: 0.2,
            })
            .collect();
        let total: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let target = total * target_frac;
        let pr = PriorityStructure::new(n_models);
        let plan = MilpDowngrader.solve(&alive, &fams, &pr, target);
        prop_assert!(plan.memory_mb <= target + 1e-6);
        let dp = MilpDowngrader.solve_dp(&alive, &fams, &pr, target);
        prop_assert!(dp.memory_mb <= target + 1e-6);
        // The DP discretizes memory to whole MB (ceil weights, floor
        // capacity), so it solves a slightly *tighter* knapsack: its optimum
        // can never exceed branch-and-bound's, and at knife-edge budgets it
        // may fall short by up to one item's utility.
        prop_assert!(dp.utility <= plan.utility + 1e-9,
            "dp {} > bb {}", dp.utility, plan.utility);
    }

    /// Simulated metrics are consistent for arbitrary small traces.
    #[test]
    fn simulator_invariants_hold_on_random_traces(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u32..3, 60..120), 1..4
        ),
    ) {
        use pulse::prelude::*;
        let len = counts.iter().map(|c| c.len()).min().unwrap();
        let functions: Vec<FunctionTrace> = counts
            .iter()
            .enumerate()
            .map(|(i, c)| FunctionTrace::new(format!("f{i}"), c[..len].to_vec()))
            .collect();
        let trace = Trace::new(functions);
        let zoo = zoo::standard();
        let fams: Vec<_> = (0..trace.n_functions())
            .map(|i| zoo[i % zoo.len()].clone())
            .collect();
        let sim = Simulator::new(trace.clone(), fams.clone());
        let m = sim.run(&mut PulsePolicy::new(
            fams,
            pulse::core::PulseConfig::default(),
        ));
        prop_assert_eq!(m.invocations(), trace.total_invocations());
        prop_assert!(m.keepalive_cost_usd >= 0.0);
        prop_assert!(m.service_time_s >= 0.0);
        for &mb in &m.memory_series_mb {
            prop_assert!(mb >= 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Crash-recovery properties: snapshot at *any* point, restore, resume —
// bit-identical to the uninterrupted run for arbitrary workloads and fault
// plans; corrupt or stale snapshots fail with typed errors, never a panic.
// ---------------------------------------------------------------------------

/// Build an arbitrary small trace + matching families from proptest counts.
fn arb_workload(counts: &[Vec<u32>]) -> (pulse::trace::Trace, Vec<pulse::models::ModelFamily>) {
    use pulse::prelude::*;
    let len = counts.iter().map(|c| c.len()).min().unwrap_or(0);
    let functions: Vec<FunctionTrace> = counts
        .iter()
        .enumerate()
        .map(|(i, c)| FunctionTrace::new(format!("f{i}"), c[..len].to_vec()))
        .collect();
    let trace = Trace::new(functions);
    let z = zoo::standard();
    let fams: Vec<_> = (0..trace.n_functions())
        .map(|i| z[i % z.len()].clone())
        .collect();
    (trace, fams)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Minute engine: kill at an arbitrary minute of an arbitrary workload,
    /// restore, resume — equal to never stopping.
    #[test]
    fn sim_snapshot_at_any_minute_resumes_identically(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u32..3, 40..90), 1..4
        ),
        kill_frac in 0.0f64..1.0,
    ) {
        use pulse::prelude::*;
        let (trace, fams) = arb_workload(&counts);
        let minutes = trace.minutes() as u64;
        let kill = ((minutes as f64 * kill_frac) as u64).min(minutes.saturating_sub(1));
        let sim = Simulator::new(trace, fams.clone());
        let make = || PulsePolicy::new(fams.clone(), pulse::core::PulseConfig::default());

        let whole = sim.run(&mut make());
        let mut p1 = make();
        let mut sess = sim.session(&mut p1);
        while sess.next_minute() < kill && sess.step_minute().is_some() {}
        let snap = sess.snapshot().map_err(|e| TestCaseError::fail(e.to_string()))?;
        drop(sess);
        let mut p2 = make();
        let mut resumed = sim
            .restore_session(&mut p2, &snap)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        while resumed.step_minute().is_some() {}
        let resumed = resumed.finish();
        prop_assert_eq!(&whole, &resumed);
        prop_assert_eq!(
            whole.keepalive_cost_usd.to_bits(),
            resumed.keepalive_cost_usd.to_bits()
        );
    }

    /// Event-driven runtime: kill after an arbitrary number of events under
    /// an arbitrary fault plan (both RNG cursors live), restore, resume —
    /// equal to never stopping.
    #[test]
    fn runtime_snapshot_at_any_event_resumes_identically(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u32..3, 40..80), 1..3
        ),
        kill_events in 0usize..600,
        prov in 0.0f64..0.3,
        crash in 0.0f64..0.2,
        fault_seed in any::<u64>(),
    ) {
        use pulse::prelude::*;
        use pulse::runtime::{ClusterConfig, FaultPlan, FleetConfig, Runtime, RuntimeConfig};
        let (trace, fams) = arb_workload(&counts);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(fault_seed ^ 0x5eed),
                ..RuntimeConfig::default()
            },
        );
        let plan = FaultPlan::uniform(prov, prov / 2.0, crash, fault_seed);
        let fleet = FleetConfig::from_cluster(ClusterConfig::unlimited());
        let make = || PulsePolicy::new(fams.clone(), pulse::core::PulseConfig::default());

        let mut whole_p = make();
        let whole = rt.run_with_fleet(&mut whole_p, &plan, &fleet);
        let mut p1 = make();
        let mut sess = rt.fleet_session(&mut p1, &plan, fleet.clone());
        for _ in 0..kill_events {
            if sess.step().is_none() {
                break;
            }
        }
        let snap = sess.snapshot().map_err(|e| TestCaseError::fail(e.to_string()))?;
        drop(sess);
        let mut p2 = make();
        let mut resumed = rt
            .restore_fleet_session(&mut p2, &plan, fleet.clone(), &snap)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        while resumed.step().is_some() {}
        let resumed = resumed.finish();
        prop_assert_eq!(&whole.records, &resumed.records);
        prop_assert_eq!(format!("{whole:?}"), format!("{resumed:?}"));
    }
}

proptest! {
    /// Arbitrary garbage — and arbitrary corruptions of a valid snapshot —
    /// are rejected with a typed error on both engines; restore never
    /// panics.
    #[test]
    fn corrupt_snapshots_fail_soft_never_panic(
        garbage_bytes in proptest::collection::vec(any::<u8>(), 0..200),
        cut_frac in 0.0f64..1.0,
        splice_bytes in proptest::collection::vec(32u8..127, 0..30),
    ) {
        use pulse::prelude::*;
        use pulse::runtime::{ClusterConfig, FaultPlan, FleetConfig, Runtime, RuntimeConfig};
        let trace = Trace::new(vec![FunctionTrace::new("f", vec![1, 0, 2, 0, 1, 0, 0, 1])]);
        let fams = vec![zoo::bert()];
        let sim = Simulator::new(trace.clone(), fams.clone());
        let make = || PulsePolicy::new(fams.clone(), pulse::core::PulseConfig::default());
        let mut p = make();
        let mut sess = sim.session(&mut p);
        for _ in 0..4 {
            sess.step_minute();
        }
        let snap = sess.snapshot().map_err(|e| TestCaseError::fail(e.to_string()))?;
        drop(sess);
        let garbage = String::from_utf8_lossy(&garbage_bytes).into_owned();
        let splice = String::from_utf8_lossy(&splice_bytes).into_owned();

        // Corrupt the valid snapshot: truncate at an arbitrary char
        // boundary and splice arbitrary printable bytes in.
        let cut = ((snap.len() as f64) * cut_frac) as usize;
        let cut = (0..=cut).rev().find(|&i| snap.is_char_boundary(i)).unwrap_or(0);
        let corrupted = format!("{}{}", &snap[..cut], splice);

        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let fleet = FleetConfig::from_cluster(ClusterConfig::unlimited());
        for doc in [garbage.as_str(), corrupted.as_str()] {
            // Either a typed error, or (for corruptions that happen to stay
            // well-formed, e.g. a truncation splicing into a valid prefix)
            // a successful restore — but never a panic.
            let mut p = make();
            let _ = sim.restore_session(&mut p, doc);
            let mut p = make();
            let _ = rt.restore_fleet_session(&mut p, &FaultPlan::none(), fleet.clone(), doc);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incrementally-maintained ledger answers every billing and
    /// footprint query bit-identically to a from-scratch ascending full
    /// sweep, after arbitrary interleaved schedule mutations — the contract
    /// both engines' hot paths rely on.
    #[test]
    fn incremental_ledger_matches_full_sweep_bitwise(
        ops in proptest::collection::vec(
            (0usize..8, 0u64..40, 0u8..5, 0usize..4), 1..60),
        probe_minute in 0u64..45,
    ) {
        use pulse::core::individual::KeepAliveSchedule;
        use pulse::core::schedule::{MinuteFootprint, ScheduleLedger};

        let z = zoo::standard();
        let fams: Vec<_> = (0..8).map(|i| z[i % z.len()].clone()).collect();

        // The same mutation stream drives an index-backed ledger and a
        // plain one that only knows the legacy full sweep.
        let mut inc = ScheduleLedger::for_families(&fams);
        let mut full = ScheduleLedger::new(fams.len());
        prop_assert!(inc.is_incremental());
        prop_assert!(!full.is_incremental());

        // One footprint is kept current with `patch` across the whole
        // stream, exactly like the engines' session-owned buffer.
        let patched_minute = 20u64;
        let mut patched = MinuteFootprint::default();
        inc.fill_minute_footprint(&fams, patched_minute, &mut patched);

        for &(f, t, kind, v) in &ops {
            let variant = v % fams[f].n_variants();
            match kind {
                0 | 1 => {
                    let s = KeepAliveSchedule::constant(t, variant, 8);
                    inc.replace(f, s.clone());
                    full.replace(f, s);
                }
                2 => {
                    prop_assert_eq!(
                        inc.apply_downgrade(f, t, variant),
                        full.apply_downgrade(f, t, variant)
                    );
                }
                3 => {
                    prop_assert_eq!(inc.apply_eviction(f, t), full.apply_eviction(f, t));
                }
                _ => {
                    inc.clear(f);
                    full.clear(f);
                }
            }

            // Billing totals: bitwise equal at the mutated minute, a random
            // probe, and the patched minute (covers empty minutes, whose
            // legacy sweep identity is -0.0).
            for m in [t, t + 3, probe_minute, patched_minute] {
                prop_assert_eq!(
                    inc.metered_kam_mb(&fams, m).to_bits(),
                    full.keep_alive_mb_at(&fams, m).to_bits(),
                    "minute {}",
                    m
                );
            }

            // The delta-patched footprint mirrors a from-scratch sweep.
            inc.patch_minute_footprint(&fams, patched_minute, &mut patched);
            let swept = full.minute_footprint(&fams, patched_minute);
            prop_assert_eq!(&patched.alive, &swept.alive);
            prop_assert_eq!(patched.total_mb.to_bits(), swept.total_mb.to_bits());
        }

        // Retiring billed minutes must not change any answer: minutes past
        // the retirement point stay indexed, earlier ones fall back to the
        // sweep — both bitwise equal to the plain ledger.
        inc.retire_minutes_before(probe_minute);
        for m in [0, probe_minute, probe_minute + 5] {
            prop_assert_eq!(
                inc.metered_kam_mb(&fams, m).to_bits(),
                full.keep_alive_mb_at(&fams, m).to_bits()
            );
        }
        let mut refilled = MinuteFootprint::default();
        inc.fill_minute_footprint(&fams, probe_minute, &mut refilled);
        let swept = full.minute_footprint(&fams, probe_minute);
        prop_assert_eq!(&refilled.alive, &swept.alive);
        prop_assert_eq!(refilled.total_mb.to_bits(), swept.total_mb.to_bits());
    }
}

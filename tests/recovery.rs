//! Crash-consistent recovery: kill at any point → restore → resume must be
//! bit-identical to the uninterrupted run, for every policy, on both
//! engines, including the multi-node fleet path under node faults.
//!
//! CI's recovery job re-runs these under several seeds via PULSE_CHAOS_SEED.

#![allow(clippy::float_cmp)] // bit-identity tests compare exact values

use pulse::core::types::PulseConfig;
use pulse::prelude::*;
use pulse::sim::assignment::round_robin_assignment;
use pulse::sim::RecoverError;

fn zoo12() -> Vec<ModelFamily> {
    round_robin_assignment(&pulse::models::zoo::standard(), 12)
}

/// Seed for the recovery scenarios; CI sweeps it, local runs default to 7.
fn chaos_seed() -> u64 {
    std::env::var("PULSE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Builds a fresh instance of a named policy (same factories as the
/// robustness suite): restore requires a same-constructed policy, whose
/// learned state the snapshot then re-injects.
type PolicyFactory = Box<dyn Fn() -> Box<dyn KeepAlivePolicy>>;

fn policy_factories(fams: &[ModelFamily], trace: &Trace) -> Vec<(&'static str, PolicyFactory)> {
    use pulse::sim::policies::{
        CapacityPulse, CapacityRandom, FixedVariant, IdealOracle, IntelligentOracle,
        OpenWhiskFixed, PulsePolicy, RandomMix,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let fams = fams.to_vec();
    vec![
        ("openwhisk", {
            let f = fams.clone();
            Box::new(move || Box::new(OpenWhiskFixed::new(&f)) as Box<dyn KeepAlivePolicy>)
                as PolicyFactory
        }),
        ("pulse", {
            let f = fams.clone();
            Box::new(move || Box::new(PulsePolicy::new(f.clone(), PulseConfig::default())))
        }),
        ("intelligent", {
            let (f, t) = (fams.clone(), trace.clone());
            Box::new(move || Box::new(IntelligentOracle::new(&f, t.clone())))
        }),
        ("ideal", {
            let (f, t) = (fams.clone(), trace.clone());
            Box::new(move || Box::new(IdealOracle::new(&f, t.clone())))
        }),
        ("random-mix", {
            let f = fams.clone();
            Box::new(move || {
                let mut rng = SmallRng::seed_from_u64(11);
                Box::new(RandomMix::new(&f, &mut rng))
            })
        }),
        ("fixed-low", {
            let f = fams.clone();
            Box::new(move || Box::new(FixedVariant::all_low(&f)))
        }),
        ("capacity-pulse", {
            let f = fams.clone();
            Box::new(move || {
                Box::new(CapacityPulse::new(
                    f.clone(),
                    PulseConfig::default(),
                    4000.0,
                ))
            })
        }),
        ("capacity-random", {
            let f = fams.clone();
            Box::new(move || {
                Box::new(CapacityRandom::new(
                    OpenWhiskFixed::new(&f),
                    f.clone(),
                    4000.0,
                    13,
                ))
            })
        }),
    ]
}

/// Field-by-field bitwise comparison of two runtime summaries (the same
/// contract the robustness suite pins for sink transparency).
fn assert_summaries_bit_identical(
    name: &str,
    a: &pulse::runtime::RuntimeSummary,
    b: &pulse::runtime::RuntimeSummary,
) {
    assert_eq!(a.records, b.records, "{name}: records diverged");
    assert_eq!(
        a.keepalive_cost_usd.to_bits(),
        b.keepalive_cost_usd.to_bits(),
        "{name}: cost not bitwise equal"
    );
    let am: Vec<u64> = a.memory_at_tick_mb.iter().map(|m| m.to_bits()).collect();
    let bm: Vec<u64> = b.memory_at_tick_mb.iter().map(|m| m.to_bits()).collect();
    assert_eq!(am, bm, "{name}: memory series diverged");
    assert_eq!(
        a.accuracy_penalty_pct.to_bits(),
        b.accuracy_penalty_pct.to_bits(),
        "{name}"
    );
    assert_eq!(a.downgrades, b.downgrades, "{name}");
    assert_eq!(a.provision_failures, b.provision_failures, "{name}");
    assert_eq!(a.provision_retries, b.provision_retries, "{name}");
    assert_eq!(a.exec_crashes, b.exec_crashes, "{name}");
    assert_eq!(a.request_retries, b.request_retries, "{name}");
    assert_eq!(a.degradations, b.degradations, "{name}");
    assert_eq!(a.timeouts, b.timeouts, "{name}");
    assert_eq!(a.reaped, b.reaped, "{name}");
    assert_eq!(a.shed_requests, b.shed_requests, "{name}");
    assert_eq!(a.evictions, b.evictions, "{name}");
    assert_eq!(a.pressure_downgrades, b.pressure_downgrades, "{name}");
    assert_eq!(a.pressure_minutes, b.pressure_minutes, "{name}");
    assert_eq!(a.fallback_minutes, b.fallback_minutes, "{name}");
    assert_eq!(a.ops_events, b.ops_events, "{name}: ops events diverged");
    assert_eq!(a.migrations, b.migrations, "{name}");
    assert_eq!(a.migration_pause_ms, b.migration_pause_ms, "{name}");
    assert_eq!(a.node_crashes, b.node_crashes, "{name}");
    assert_eq!(a.node_partitions, b.node_partitions, "{name}");
    assert_eq!(a.node_stragglers, b.node_stragglers, "{name}");
    assert_eq!(a.node_recoveries, b.node_recoveries, "{name}");
    assert_eq!(a.redispatched_requests, b.redispatched_requests, "{name}");
    assert_eq!(a.node_loss_evictions, b.node_loss_evictions, "{name}");
    assert_eq!(a.placement_failures, b.placement_failures, "{name}");
    assert_eq!(a.node_shed_requests, b.node_shed_requests, "{name}");
    assert_eq!(a.node_summaries, b.node_summaries, "{name}");
}

#[test]
fn sim_kill_restore_resume_is_bit_identical_for_every_policy() {
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let sim = Simulator::new(trace.clone(), fams.clone());
    for (name, make) in &policy_factories(&fams, &trace) {
        let whole = sim.run(make().as_mut());
        for kill_minute in [1u64, 67, 199] {
            let mut p1 = make();
            let mut sess = sim.session(p1.as_mut());
            while sess.next_minute() < kill_minute && sess.step_minute().is_some() {}
            let snap = sess
                .snapshot()
                .unwrap_or_else(|e| panic!("{name}: snapshot at {kill_minute}: {e}"));
            drop(sess);

            let mut p2 = make();
            let mut resumed = sim
                .restore_session(p2.as_mut(), &snap)
                .unwrap_or_else(|e| panic!("{name}: restore at {kill_minute}: {e}"));
            while resumed.step_minute().is_some() {}
            let resumed = resumed.finish();
            assert_eq!(
                whole, resumed,
                "{name}: metrics diverged at kill {kill_minute}"
            );
            assert_eq!(
                whole.keepalive_cost_usd.to_bits(),
                resumed.keepalive_cost_usd.to_bits(),
                "{name}: cost not bitwise equal at kill {kill_minute}"
            );
            let wm: Vec<u64> = whole.memory_series_mb.iter().map(|m| m.to_bits()).collect();
            let rm: Vec<u64> = resumed
                .memory_series_mb
                .iter()
                .map(|m| m.to_bits())
                .collect();
            assert_eq!(
                wm, rm,
                "{name}: memory series diverged at kill {kill_minute}"
            );
        }
    }
}

#[test]
fn runtime_kill_restore_resume_is_bit_identical_for_every_policy() {
    use pulse::runtime::{ClusterConfig, FaultPlan, FleetConfig, Runtime, RuntimeConfig};
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 150);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // Request-level faults + stochastic durations: both RNG cursors must
    // survive the kill. The cluster-compatible single-node path.
    let plan = FaultPlan::uniform(0.1, 0.05, 0.02, seed).with_timeout_ms(120_000);
    let fleet = FleetConfig::from_cluster(ClusterConfig::unlimited());
    for (name, make) in &policy_factories(&fams, &trace) {
        let whole = rt.run_with_fleet(make().as_mut(), &plan, &fleet);
        // Kill mid-minute, at an arbitrary event boundary.
        for kill_events in [1usize, 1000] {
            let mut p1 = make();
            let mut sess = rt.fleet_session(p1.as_mut(), &plan, fleet.clone());
            for _ in 0..kill_events {
                if sess.step().is_none() {
                    break;
                }
            }
            let snap = sess
                .snapshot()
                .unwrap_or_else(|e| panic!("{name}: snapshot: {e}"));
            drop(sess);

            let mut p2 = make();
            let mut resumed = rt
                .restore_fleet_session(p2.as_mut(), &plan, fleet.clone(), &snap)
                .unwrap_or_else(|e| panic!("{name}: restore: {e}"));
            while resumed.step().is_some() {}
            assert_summaries_bit_identical(name, &whole, &resumed.finish());
        }
    }
}

#[test]
fn fleet_kill_restore_resume_is_bit_identical_for_every_policy() {
    use pulse::runtime::{
        FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig,
    };
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // The full stack at once: capped nodes, rolling node crashes (warm
    // migrations, redispatch), bounded per-node admission, request-level
    // faults. A kill must lose none of it.
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let fleet = FleetConfig::uniform(3, NodeCapacity::mb(all_high * 0.45))
        .with_node_admission(64)
        .with_node_faults(NodeFaultPlan::rolling_crashes(3, 10, 6, 30, 200));
    let plan = FaultPlan::uniform(0.05, 0.02, 0.02, seed);
    for (name, make) in &policy_factories(&fams, &trace) {
        let whole = rt.run_with_fleet(make().as_mut(), &plan, &fleet);
        let mut p1 = make();
        let mut sess = rt.fleet_session(p1.as_mut(), &plan, fleet.clone());
        for _ in 0..2500 {
            if sess.step().is_none() {
                break;
            }
        }
        let snap = sess
            .snapshot()
            .unwrap_or_else(|e| panic!("{name}: snapshot: {e}"));
        drop(sess);

        let mut p2 = make();
        let mut resumed = rt
            .restore_fleet_session(p2.as_mut(), &plan, fleet.clone(), &snap)
            .unwrap_or_else(|e| panic!("{name}: restore: {e}"));
        while resumed.step().is_some() {}
        assert_summaries_bit_identical(name, &whole, &resumed.finish());
    }
}

#[test]
fn watchdog_wrapped_policy_recovers_bit_identically() {
    use pulse::runtime::{FaultPlan, FleetConfig, NodeCapacity, Runtime, RuntimeConfig};
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 150);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    let plan = FaultPlan::uniform(0.2, 0.1, 0.05, seed).with_timeout_ms(120_000);
    let fleet = FleetConfig::uniform(1, NodeCapacity::unlimited());
    let make = || {
        Watchdog::new(
            Box::new(pulse::sim::policies::PulsePolicy::new(
                fams.clone(),
                PulseConfig::default(),
            )),
            &fams,
            WatchdogConfig::default(),
        )
    };
    let mut whole_p = make();
    let whole = rt.run_with_fleet(&mut whole_p, &plan, &fleet);

    let mut p1 = make();
    let mut sess = rt.fleet_session(&mut p1, &plan, fleet.clone());
    for _ in 0..1500 {
        if sess.step().is_none() {
            break;
        }
    }
    let snap = sess.snapshot().expect("watchdog snapshot");
    drop(sess);

    let mut p2 = make();
    let mut resumed = rt
        .restore_fleet_session(&mut p2, &plan, fleet.clone(), &snap)
        .expect("watchdog restore");
    while resumed.step().is_some() {}
    assert_summaries_bit_identical("watchdog(pulse)", &whole, &resumed.finish());
}

#[test]
fn journal_replay_recovers_both_engines_after_torn_write() {
    use pulse::obs::{first_divergence, replay_journal, JournalSink, MemorySink};
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 120);
    let fams = zoo12();
    let sim = Simulator::new(trace.clone(), fams.clone());

    // Journaled run: checkpoint at minute 40, keep tracing, killed at
    // minute 90 with a torn final line.
    let mut policy = pulse::sim::policies::PulsePolicy::new(fams.clone(), PulseConfig::default());
    let mut journal = JournalSink::new(Vec::new());
    let mut sess = sim.session_traced(&mut policy, &mut journal);
    while sess.next_minute() < 40 && sess.step_minute().is_some() {}
    let snap = sess.snapshot().expect("checkpoint snapshot");
    drop(sess);
    journal.checkpoint(&snap);
    let mut sess = sim
        .restore_session_traced(&mut policy, &snap, &mut journal)
        .expect("continue after checkpoint");
    while sess.next_minute() < 90 && sess.step_minute().is_some() {}
    drop(sess);
    let mut text = String::from_utf8(journal.into_inner()).expect("journal is utf-8");
    text.push_str("{\"type\":\"bill\",\"mi"); // torn final write

    let replay = replay_journal(&text).expect("torn tail must not fail replay");
    assert!(replay.torn_tail);
    let (_, ckpt) = replay.last_checkpoint.as_ref().expect("checkpoint present");

    // Recover: restore the checkpoint, resume, and demand the re-emitted
    // events reproduce the journal tail exactly.
    let mut fresh = pulse::sim::policies::PulsePolicy::new(fams.clone(), PulseConfig::default());
    let mut resume_sink = MemorySink::new();
    let mut resumed = sim
        .restore_session_traced(&mut fresh, ckpt, &mut resume_sink)
        .expect("recovery restore");
    while resumed.step_minute().is_some() {}
    let resumed = resumed.finish();

    let whole = sim.run(&mut pulse::sim::policies::PulsePolicy::new(
        fams.clone(),
        PulseConfig::default(),
    ));
    assert_eq!(whole, resumed, "recovered run diverged from uninterrupted");

    let events = resume_sink.events();
    assert!(
        events.len() >= replay.tail.len(),
        "resumed run emitted too few events"
    );
    assert_eq!(
        first_divergence(&replay.tail, &events[..replay.tail.len()]),
        None,
        "journal tail not reproduced"
    );
}

#[test]
fn snapshot_failures_are_typed_and_soft_on_both_engines() {
    use pulse::runtime::{ClusterConfig, FaultPlan, FleetConfig, Runtime, RuntimeConfig};
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 60);
    let fams = zoo12();

    let sim = Simulator::new(trace.clone(), fams.clone());
    let mut policy = pulse::sim::policies::PulsePolicy::new(fams.clone(), PulseConfig::default());
    let mut sess = sim.session(&mut policy);
    for _ in 0..20 {
        sess.step_minute();
    }
    let snap = sess.snapshot().expect("snapshot");
    drop(sess);

    // Version skew.
    let skewed = snap.replacen("\"version\":1", "\"version\":77", 1);
    let mut p = pulse::sim::policies::PulsePolicy::new(fams.clone(), PulseConfig::default());
    assert!(matches!(
        sim.restore_session(&mut p, &skewed),
        Err(RecoverError::VersionSkew { found: 77, .. })
    ));
    // Wrong policy.
    let mut other = pulse::sim::policies::OpenWhiskFixed::new(&fams);
    assert!(matches!(
        sim.restore_session(&mut other, &snap),
        Err(RecoverError::PolicyMismatch { .. })
    ));
    // Wrong engine: a sim snapshot offered to the runtime (and the runtime
    // stamps its own fingerprints, so even the header is rejected typed).
    let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
    let fleet = FleetConfig::from_cluster(ClusterConfig::unlimited());
    let mut p = pulse::sim::policies::PulsePolicy::new(fams.clone(), PulseConfig::default());
    assert!(rt
        .restore_fleet_session(&mut p, &FaultPlan::none(), fleet.clone(), &snap)
        .is_err());
    // Garbage never panics.
    for garbage in [
        "",
        "\n\n",
        "not json",
        "{\"type\":\"snapshot\"}",
        "{\"type\":\"x\"}",
    ] {
        let mut p = pulse::sim::policies::PulsePolicy::new(fams.clone(), PulseConfig::default());
        assert!(sim.restore_session(&mut p, garbage).is_err(), "{garbage:?}");
        let mut p = pulse::sim::policies::PulsePolicy::new(fams.clone(), PulseConfig::default());
        assert!(
            rt.restore_fleet_session(&mut p, &FaultPlan::none(), fleet.clone(), garbage)
                .is_err(),
            "{garbage:?}"
        );
    }
}

/// Assert that two ledgers (one possibly carrying a warm incremental cache,
/// one freshly rebuilt by restore) answer every metered and footprint query
/// bit-identically to each other *and* to the legacy full sweep.
fn assert_ledgers_equivalent(
    fams: &[ModelFamily],
    live: &pulse::core::schedule::ScheduleLedger,
    restored: &pulse::core::schedule::ScheduleLedger,
    horizon: u64,
    what: &str,
) {
    use pulse::core::schedule::MinuteFootprint;
    assert!(live.is_incremental(), "{what}: live ledger lost its index");
    assert!(
        restored.is_incremental(),
        "{what}: restore dropped the incremental index"
    );
    let mut a = live.clone();
    let mut b = restored.clone();
    let mut fa = MinuteFootprint::default();
    let mut fb = MinuteFootprint::default();
    for t in 0..horizon {
        let sweep = live.keep_alive_mb_at(fams, t);
        assert_eq!(
            a.metered_kam_mb(fams, t).to_bits(),
            sweep.to_bits(),
            "{what}: live metered != sweep at minute {t}"
        );
        assert_eq!(
            b.metered_kam_mb(fams, t).to_bits(),
            sweep.to_bits(),
            "{what}: restored metered != sweep at minute {t}"
        );
        a.fill_minute_footprint(fams, t, &mut fa);
        b.fill_minute_footprint(fams, t, &mut fb);
        assert_eq!(fa.alive, fb.alive, "{what}: alive sets differ at {t}");
        assert_eq!(
            fa.total_mb.to_bits(),
            fb.total_mb.to_bits(),
            "{what}: footprint totals differ at minute {t}"
        );
    }
}

/// Restore rebuilds the ledger's incremental cache (dirty sets, running
/// totals) deterministically: after a mid-run snapshot, the restored
/// session's cached reads are bit-identical to the uninterrupted session's
/// and to the legacy full sweep, on both engines.
#[test]
fn restored_ledger_rebuilds_incremental_cache_deterministically() {
    use pulse::runtime::{ClusterConfig, FaultPlan, FleetConfig, Runtime, RuntimeConfig};
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 120);
    let fams = zoo12();
    let make = || pulse::sim::policies::PulsePolicy::new(fams.clone(), PulseConfig::default());

    // Sim engine: kill at minute 60.
    let sim = Simulator::new(trace.clone(), fams.clone());
    let mut p1 = make();
    let mut sess = sim.session(&mut p1);
    while sess.next_minute() < 60 && sess.step_minute().is_some() {}
    let snap = sess.snapshot().expect("sim snapshot");
    let live = sess.ledger().clone();
    drop(sess);
    let mut p2 = make();
    let restored = sim.restore_session(&mut p2, &snap).expect("sim restore");
    assert_ledgers_equivalent(&fams, &live, &restored.ledger().clone(), 130, "sim");

    // Runtime engine: kill mid-stream after a fixed number of events.
    let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
    let fleet = FleetConfig::from_cluster(ClusterConfig::unlimited());
    let mut p1 = make();
    let mut sess = rt.fleet_session(&mut p1, &FaultPlan::none(), fleet.clone());
    for _ in 0..500 {
        if sess.step().is_none() {
            break;
        }
    }
    let snap = sess.snapshot().expect("runtime snapshot");
    let live = sess.ledger().clone();
    drop(sess);
    let mut p2 = make();
    let restored = rt
        .restore_fleet_session(&mut p2, &FaultPlan::none(), fleet, &snap)
        .expect("runtime restore");
    assert_ledgers_equivalent(&fams, &live, &restored.ledger().clone(), 130, "runtime");
}

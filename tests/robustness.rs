//! Failure-injection and robustness tests: pathological traces and
//! misbehaving policies must not corrupt the platform's accounting.

#![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests compare exact values; counts fit usize

use pulse::core::global::{AliveModel, DowngradeAction};
use pulse::core::individual::KeepAliveSchedule;
use pulse::core::types::{FuncId, Minute, PulseConfig};
use pulse::prelude::*;
use pulse::sim::assignment::round_robin_assignment;

fn zoo12() -> Vec<ModelFamily> {
    round_robin_assignment(&pulse::models::zoo::standard(), 12)
}

#[test]
fn all_silent_trace_is_free() {
    let trace = Trace::new(
        (0..12)
            .map(|i| FunctionTrace::new(format!("f{i}"), vec![0; 500]))
            .collect(),
    );
    let fams = zoo12();
    let sim = Simulator::new(trace, fams.clone());
    for metrics in [
        sim.run(&mut OpenWhiskFixed::new(&fams)),
        sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default())),
    ] {
        assert_eq!(metrics.invocations(), 0);
        assert_eq!(metrics.keepalive_cost_usd, 0.0);
        assert_eq!(metrics.service_time_s, 0.0);
        assert!(metrics.memory_series_mb.iter().all(|&m| m == 0.0));
    }
}

#[test]
fn saturated_trace_is_all_warm_after_first_minute() {
    // Every function fires every single minute.
    let trace = Trace::new(
        (0..12)
            .map(|i| FunctionTrace::new(format!("f{i}"), vec![1; 300]))
            .collect(),
    );
    let fams = zoo12();
    let sim = Simulator::new(trace, fams.clone());
    let m = sim.run(&mut OpenWhiskFixed::new(&fams));
    assert_eq!(m.cold_starts, 12, "one cold start per function");
    assert_eq!(m.warm_starts, 12 * 299);
}

#[test]
fn single_mega_burst_is_accounted_once() {
    let mut counts = vec![0u32; 100];
    counts[50] = 10_000;
    let trace = Trace::new(vec![FunctionTrace::new("burst", counts)]);
    let fams = vec![pulse::models::zoo::bert()];
    let sim = Simulator::new(trace, fams.clone());
    let m = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
    assert_eq!(m.invocations(), 10_000);
    assert_eq!(m.cold_starts, 1);
    assert_eq!(m.warm_starts, 9_999);
}

/// A policy that emits downgrade actions for functions that are not alive,
/// repeats actions, and schedules in strange shapes. The engine must ignore
/// the nonsense and keep its accounting invariants.
struct ChaoticPolicy {
    fams: Vec<ModelFamily>,
    tick: u64,
}

impl KeepAlivePolicy for ChaoticPolicy {
    fn name(&self) -> &str {
        "chaotic"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        // Alternate between empty plans, single-minute plans, and oversized
        // variant ids clamped only by the family ladder (use highest).
        match t % 3 {
            0 => KeepAliveSchedule::new(t, Vec::new()),
            1 => KeepAliveSchedule::new(t, vec![0]),
            _ => KeepAliveSchedule::constant(t, self.fams[f].highest_id(), 10),
        }
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> usize {
        self.fams[f].highest_id()
    }

    fn adjust_minute(
        &mut self,
        _t: Minute,
        _mem_history: &[f64],
        _first: bool,
        _kam: f64,
        _alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        self.tick += 1;
        // Bogus actions: downgrades for functions without schedules,
        // evictions of never-alive functions, repeated entries.
        vec![
            DowngradeAction::Downgrade {
                func: (self.tick as usize) % self.fams.len(),
                from: 2,
                to: 0,
            },
            DowngradeAction::Evict {
                func: (self.tick as usize + 1) % self.fams.len(),
                from: 0,
            },
            DowngradeAction::Evict {
                func: (self.tick as usize + 1) % self.fams.len(),
                from: 0,
            },
        ]
    }
}

#[test]
fn engine_survives_chaotic_policy() {
    let trace = pulse::trace::synth::azure_like_12_with_horizon(3, 600);
    let fams = zoo12();
    let sim = Simulator::new(trace.clone(), fams.clone());
    let m = sim.run(&mut ChaoticPolicy {
        fams: fams.clone(),
        tick: 0,
    });
    // Accounting invariants hold regardless of policy nonsense.
    assert_eq!(m.invocations(), trace.total_invocations());
    assert!(m.keepalive_cost_usd >= 0.0);
    assert!(m.service_time_s > 0.0);
    assert_eq!(m.memory_series_mb.len(), trace.minutes());
    assert!(m.memory_series_mb.iter().all(|&x| x >= 0.0));
    let series_total: f64 = m.cost_series_usd.iter().sum();
    assert!((series_total - m.keepalive_cost_usd).abs() < 1e-9);
}

#[test]
fn runtime_survives_chaotic_policy_too() {
    use pulse::runtime::{Runtime, RuntimeConfig};
    let trace = pulse::trace::synth::azure_like_12_with_horizon(3, 300);
    let fams = zoo12();
    let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
    let s = rt.run(&mut ChaoticPolicy {
        fams: fams.clone(),
        tick: 0,
    });
    assert_eq!(s.requests(), trace.total_invocations());
    assert!(s.keepalive_cost_usd >= 0.0);
    // Every request completed (done >= arrival).
    for r in &s.records {
        assert!(r.done_ms >= r.arrival_ms);
        assert!(r.accuracy_pct > 0.0);
    }
}

// ---------------------------------------------------------------------------
// Fault-injection scenarios (the `pulse::runtime::fault` layer).
//
// CI's chaos job re-runs these under several seeds via PULSE_CHAOS_SEED.
// ---------------------------------------------------------------------------

/// Seed for the fault scenarios; CI sweeps it, local runs default to 7.
fn chaos_seed() -> u64 {
    std::env::var("PULSE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Builds a fresh instance of a named policy; one factory per policy in
/// pulse-sim/src/policies/. Shared by the bit-identity suites below.
type PolicyFactory = Box<dyn Fn() -> Box<dyn KeepAlivePolicy>>;

fn policy_factories(fams: &[ModelFamily], trace: &Trace) -> Vec<(&'static str, PolicyFactory)> {
    use pulse::sim::policies::{
        CapacityPulse, CapacityRandom, FixedVariant, IdealOracle, IntelligentOracle,
        OpenWhiskFixed, PulsePolicy, RandomMix,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let fams = fams.to_vec();
    vec![
        ("openwhisk", {
            let f = fams.clone();
            Box::new(move || Box::new(OpenWhiskFixed::new(&f)) as Box<dyn KeepAlivePolicy>)
                as PolicyFactory
        }),
        ("pulse", {
            let f = fams.clone();
            Box::new(move || Box::new(PulsePolicy::new(f.clone(), PulseConfig::default())))
        }),
        ("intelligent", {
            let (f, t) = (fams.clone(), trace.clone());
            Box::new(move || Box::new(IntelligentOracle::new(&f, t.clone())))
        }),
        ("ideal", {
            let (f, t) = (fams.clone(), trace.clone());
            Box::new(move || Box::new(IdealOracle::new(&f, t.clone())))
        }),
        ("random-mix", {
            let f = fams.clone();
            Box::new(move || {
                let mut rng = SmallRng::seed_from_u64(11);
                Box::new(RandomMix::new(&f, &mut rng))
            })
        }),
        ("fixed-low", {
            let f = fams.clone();
            Box::new(move || Box::new(FixedVariant::all_low(&f)))
        }),
        ("capacity-pulse", {
            let f = fams.clone();
            Box::new(move || {
                Box::new(CapacityPulse::new(
                    f.clone(),
                    PulseConfig::default(),
                    4000.0,
                ))
            })
        }),
        ("capacity-random", {
            let f = fams.clone();
            Box::new(move || {
                Box::new(CapacityRandom::new(
                    OpenWhiskFixed::new(&f),
                    f.clone(),
                    4000.0,
                    13,
                ))
            })
        }),
    ]
}

#[test]
fn zero_fault_plan_is_bitwise_identical_for_every_policy() {
    use pulse::runtime::{FaultPlan, Runtime, RuntimeConfig};

    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );

    // The trivial fault plan must not perturb a single bit of any policy's
    // summary.
    for (name, make) in &policy_factories(&fams, &trace) {
        let plain = rt.run(make().as_mut());
        let faulted = rt.run_with_faults(make().as_mut(), &FaultPlan::none());
        assert_eq!(plain.records, faulted.records, "{name}: records diverged");
        assert_eq!(
            plain.keepalive_cost_usd.to_bits(),
            faulted.keepalive_cost_usd.to_bits(),
            "{name}: cost not bitwise equal"
        );
        assert_eq!(plain.warm_starts(), faulted.warm_starts(), "{name}");
        assert_eq!(plain.cold_starts(), faulted.cold_starts(), "{name}");
        let plain_mem: Vec<u64> = plain
            .memory_at_tick_mb
            .iter()
            .map(|m| m.to_bits())
            .collect();
        let fault_mem: Vec<u64> = faulted
            .memory_at_tick_mb
            .iter()
            .map(|m| m.to_bits())
            .collect();
        assert_eq!(plain_mem, fault_mem, "{name}: memory series diverged");
        assert_eq!(faulted.provision_failures, 0, "{name}");
        assert_eq!(faulted.exec_crashes, 0, "{name}");
        assert_eq!(faulted.degradations, 0, "{name}");
        assert_eq!(faulted.timeouts, 0, "{name}");
        assert_eq!(faulted.failed_requests(), 0, "{name}");
    }
}

#[test]
fn unlimited_cluster_is_bitwise_identical_for_every_policy() {
    use pulse::runtime::{ClusterConfig, FaultPlan, Runtime, RuntimeConfig};

    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // A decidedly non-trivial fault plan: the robustness layer must be a
    // pure pass-through when capacity is unlimited, admission unbounded and
    // no watchdog is wrapped — even while faults, retries, degradations and
    // timeouts are all firing.
    let plan = FaultPlan::uniform(0.2, 0.1, 0.05, seed).with_timeout_ms(120_000);

    for (name, make) in &policy_factories(&fams, &trace) {
        let faults = rt.run_with_faults(make().as_mut(), &plan);
        let cluster = rt.run_with_cluster(make().as_mut(), &plan, &ClusterConfig::unlimited());
        assert_eq!(faults.records, cluster.records, "{name}: records diverged");
        assert_eq!(
            faults.keepalive_cost_usd.to_bits(),
            cluster.keepalive_cost_usd.to_bits(),
            "{name}: cost not bitwise equal"
        );
        let a: Vec<u64> = faults
            .memory_at_tick_mb
            .iter()
            .map(|m| m.to_bits())
            .collect();
        let b: Vec<u64> = cluster
            .memory_at_tick_mb
            .iter()
            .map(|m| m.to_bits())
            .collect();
        assert_eq!(a, b, "{name}: memory series diverged");
        assert_eq!(
            faults.provision_failures, cluster.provision_failures,
            "{name}"
        );
        assert_eq!(faults.exec_crashes, cluster.exec_crashes, "{name}");
        assert_eq!(faults.degradations, cluster.degradations, "{name}");
        assert_eq!(faults.timeouts, cluster.timeouts, "{name}");
        assert_eq!(
            faults.accuracy_penalty_pct.to_bits(),
            cluster.accuracy_penalty_pct.to_bits(),
            "{name}"
        );
        // The robustness counters must all stay silent.
        assert_eq!(cluster.shed_requests, 0, "{name}");
        assert_eq!(cluster.evictions, 0, "{name}");
        assert_eq!(cluster.pressure_downgrades, 0, "{name}");
        assert_eq!(cluster.pressure_minutes, 0, "{name}");
        assert_eq!(cluster.fallback_minutes, 0, "{name}");
        assert!(cluster.ops_events.is_empty(), "{name}");
    }
}

#[test]
fn disabled_watchdog_is_bitwise_transparent_for_every_policy() {
    use pulse::runtime::{ClusterConfig, FaultPlan, Runtime, RuntimeConfig};
    use pulse::sim::{Watchdog, WatchdogConfig};

    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 150);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    let plan = FaultPlan::uniform(0.2, 0.1, 0.05, seed).with_timeout_ms(120_000);

    for (name, make) in &policy_factories(&fams, &trace) {
        let bare = rt.run_with_faults(make().as_mut(), &plan);
        let mut wrapped = Watchdog::new(make(), &fams, WatchdogConfig::disabled());
        let watched = rt.run_with_cluster(&mut wrapped, &plan, &ClusterConfig::unlimited());
        assert_eq!(bare.records, watched.records, "{name}: records diverged");
        assert_eq!(
            bare.keepalive_cost_usd.to_bits(),
            watched.keepalive_cost_usd.to_bits(),
            "{name}: cost not bitwise equal"
        );
        assert_eq!(watched.fallback_minutes, 0, "{name}");
        assert!(watched.ops_events.is_empty(), "{name}");
        assert!(!wrapped.in_fallback(), "{name}");
        assert!(wrapped.transitions().is_empty(), "{name}");
    }
}

#[test]
fn top_rung_outage_degrades_every_request_one_rung_and_never_corrupts_billing() {
    use pulse::runtime::{FaultPlan, FaultRates, Runtime, RuntimeConfig};

    let trace = pulse::trace::synth::azure_like_12_with_horizon(chaos_seed(), 120);
    let fams = zoo12();
    // 100% provisioning *and* variant-load failure, scoped per function to
    // its top rung only (ladder lengths differ across the zoo).
    let mut plan = FaultPlan::none();
    for (f, fam) in fams.iter().enumerate() {
        plan = plan.with_function(
            f,
            FaultRates {
                provision_failure: 1.0,
                variant_load_failure: 1.0,
                exec_crash: 0.0,
                min_faulty_variant: Some(fam.highest_id()),
            },
        );
    }
    let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
    let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
    let clean = rt.run(&mut OpenWhiskFixed::new(&fams));

    assert_eq!(s.requests(), trace.total_invocations());
    assert_eq!(s.failed_requests(), 0, "degradation must absorb the outage");
    assert_eq!(s.availability(), 1.0);
    assert!(s.degradations > 0);
    assert!(s.provision_failures > 0);
    // OpenWhisk pins the top rung; with it dark, every request must be
    // served exactly one rung lower — never the top, never two rungs down.
    // Check via the accuracy each record delivered: it must match some
    // family's one-below-top accuracy.
    let below_top: Vec<f64> = fams
        .iter()
        .map(|f| f.variant(f.highest_id() - 1).accuracy_pct)
        .collect();
    for r in &s.records {
        assert!(
            below_top.contains(&r.accuracy_pct),
            "request served at unexpected rung: {}",
            r.accuracy_pct
        );
    }
    // Billing is schedule-driven: the outage must not change a single bit
    // of keep-alive cost or the per-minute memory footprint.
    assert_eq!(
        s.keepalive_cost_usd.to_bits(),
        clean.keepalive_cost_usd.to_bits()
    );
    assert_eq!(s.memory_at_tick_mb.len(), clean.memory_at_tick_mb.len());
    for (a, b) in s.memory_at_tick_mb.iter().zip(&clean.memory_at_tick_mb) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn mid_execution_crashes_never_double_bill_gbms() {
    use pulse::runtime::{FaultPlan, Runtime, RuntimeConfig};

    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
    let plan = FaultPlan::uniform(0.0, 0.0, 0.4, seed);
    let crashed = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
    let clean = rt.run(&mut OpenWhiskFixed::new(&fams));

    assert!(crashed.exec_crashes > 0, "rate 0.4 must hit something");
    assert!(crashed.request_retries > 0);
    // Keep-alive billing is metered from the schedule footprint at minute
    // ticks — a crashed-and-replaced container must not be billed twice.
    assert_eq!(
        crashed.keepalive_cost_usd.to_bits(),
        clean.keepalive_cost_usd.to_bits()
    );
    for (a, b) in crashed
        .memory_at_tick_mb
        .iter()
        .zip(&clean.memory_at_tick_mb)
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(crashed.requests(), clean.requests());
}

#[test]
fn fault_scenarios_replay_identically_under_the_chaos_seed() {
    use pulse::runtime::{FaultPlan, Runtime, RuntimeConfig};

    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 150);
    let fams = zoo12();
    let rt = Runtime::new(
        trace,
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    let plan = FaultPlan::uniform(0.25, 0.1, 0.1, seed).with_timeout_ms(120_000);
    let a = rt.run_with_faults(
        &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
        &plan,
    );
    let b = rt.run_with_faults(
        &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
        &plan,
    );
    assert_eq!(a.records, b.records);
    assert_eq!(a.provision_failures, b.provision_failures);
    assert_eq!(a.provision_retries, b.provision_retries);
    assert_eq!(a.variant_load_failures, b.variant_load_failures);
    assert_eq!(a.exec_crashes, b.exec_crashes);
    assert_eq!(a.request_retries, b.request_retries);
    assert_eq!(a.degradations, b.degradations);
    assert_eq!(a.degraded_requests, b.degraded_requests);
    assert_eq!(a.timeouts, b.timeouts);
    assert_eq!(a.reaped, b.reaped);
    assert_eq!(
        a.keepalive_cost_usd.to_bits(),
        b.keepalive_cost_usd.to_bits()
    );
    assert_eq!(
        a.accuracy_penalty_pct.to_bits(),
        b.accuracy_penalty_pct.to_bits()
    );
}

// ---------------------------------------------------------------------------
// NullSink transparency: tracing with the no-op sink must be bit-identical
// to running untraced, for every policy, at every entry point. CI's obs job
// runs these with `cargo test --test robustness null_sink`.
// ---------------------------------------------------------------------------

/// Field-by-field bitwise comparison of two runtime summaries.
fn assert_summaries_bit_identical(
    name: &str,
    a: &pulse::runtime::RuntimeSummary,
    b: &pulse::runtime::RuntimeSummary,
) {
    assert_eq!(a.records, b.records, "{name}: records diverged");
    assert_eq!(
        a.keepalive_cost_usd.to_bits(),
        b.keepalive_cost_usd.to_bits(),
        "{name}: cost not bitwise equal"
    );
    let am: Vec<u64> = a.memory_at_tick_mb.iter().map(|m| m.to_bits()).collect();
    let bm: Vec<u64> = b.memory_at_tick_mb.iter().map(|m| m.to_bits()).collect();
    assert_eq!(am, bm, "{name}: memory series diverged");
    assert_eq!(
        a.accuracy_penalty_pct.to_bits(),
        b.accuracy_penalty_pct.to_bits(),
        "{name}"
    );
    assert_eq!(a.downgrades, b.downgrades, "{name}");
    assert_eq!(a.provision_failures, b.provision_failures, "{name}");
    assert_eq!(a.provision_retries, b.provision_retries, "{name}");
    assert_eq!(a.exec_crashes, b.exec_crashes, "{name}");
    assert_eq!(a.request_retries, b.request_retries, "{name}");
    assert_eq!(a.degradations, b.degradations, "{name}");
    assert_eq!(a.timeouts, b.timeouts, "{name}");
    assert_eq!(a.reaped, b.reaped, "{name}");
    assert_eq!(a.shed_requests, b.shed_requests, "{name}");
    assert_eq!(a.evictions, b.evictions, "{name}");
    assert_eq!(a.pressure_downgrades, b.pressure_downgrades, "{name}");
    assert_eq!(a.pressure_minutes, b.pressure_minutes, "{name}");
    assert_eq!(a.fallback_minutes, b.fallback_minutes, "{name}");
    // Fleet counters and the per-node breakdown.
    assert_eq!(a.migrations, b.migrations, "{name}");
    assert_eq!(a.migration_pause_ms, b.migration_pause_ms, "{name}");
    assert_eq!(a.node_crashes, b.node_crashes, "{name}");
    assert_eq!(a.node_partitions, b.node_partitions, "{name}");
    assert_eq!(a.node_stragglers, b.node_stragglers, "{name}");
    assert_eq!(a.node_recoveries, b.node_recoveries, "{name}");
    assert_eq!(a.redispatched_requests, b.redispatched_requests, "{name}");
    assert_eq!(a.node_loss_evictions, b.node_loss_evictions, "{name}");
    assert_eq!(a.placement_failures, b.placement_failures, "{name}");
    assert_eq!(a.node_shed_requests, b.node_shed_requests, "{name}");
    assert_eq!(a.node_summaries, b.node_summaries, "{name}");
}

#[test]
fn null_sink_simulator_run_is_bit_identical_for_every_policy() {
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let sim = Simulator::new(trace.clone(), fams.clone());
    for (name, make) in &policy_factories(&fams, &trace) {
        let plain = sim.run(make().as_mut());
        let traced = sim.run_traced(make().as_mut(), &mut NullSink);
        assert_eq!(plain, traced, "{name}: metrics diverged");
        assert_eq!(
            plain.keepalive_cost_usd.to_bits(),
            traced.keepalive_cost_usd.to_bits(),
            "{name}: cost not bitwise equal"
        );
        let pm: Vec<u64> = plain.memory_series_mb.iter().map(|m| m.to_bits()).collect();
        let tm: Vec<u64> = traced
            .memory_series_mb
            .iter()
            .map(|m| m.to_bits())
            .collect();
        assert_eq!(pm, tm, "{name}: memory series diverged");
    }
}

#[test]
fn null_sink_runtime_run_is_bit_identical_for_every_policy() {
    use pulse::runtime::{Runtime, RuntimeConfig};
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    for (name, make) in &policy_factories(&fams, &trace) {
        let plain = rt.run(make().as_mut());
        let traced = rt.run_traced(make().as_mut(), &mut NullSink);
        assert_summaries_bit_identical(name, &plain, &traced);
    }
}

#[test]
fn null_sink_faulted_run_is_bit_identical_for_every_policy() {
    use pulse::runtime::{FaultPlan, Runtime, RuntimeConfig};
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // Faults, retries, degradations and timeouts all firing: the sink hook
    // sits on every one of those paths and must not perturb them.
    let plan = FaultPlan::uniform(0.2, 0.1, 0.05, seed).with_timeout_ms(120_000);
    for (name, make) in &policy_factories(&fams, &trace) {
        let plain = rt.run_with_faults(make().as_mut(), &plan);
        let traced = rt.run_with_faults_traced(make().as_mut(), &plan, &mut NullSink);
        assert_summaries_bit_identical(name, &plain, &traced);
    }
}

#[test]
fn null_sink_cluster_run_is_bit_identical_for_every_policy() {
    use pulse::runtime::{
        AdmissionControl, ClusterConfig, FaultPlan, NodeCapacity, Runtime, RuntimeConfig,
    };
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // A binding cluster: capacity pressure (evictions + pressure
    // downgrades), bounded admission (sheds) and faults at once.
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let cluster = ClusterConfig {
        capacity: NodeCapacity::mb(all_high * 0.3),
        admission: AdmissionControl::bounded(16),
    };
    let plan = FaultPlan::uniform(0.1, 0.05, 0.02, seed);
    for (name, make) in &policy_factories(&fams, &trace) {
        let plain = rt.run_with_cluster(make().as_mut(), &plan, &cluster);
        let traced = rt.run_with_cluster_traced(make().as_mut(), &plan, &cluster, &mut NullSink);
        assert_summaries_bit_identical(name, &plain, &traced);
    }
}

// ---------------------------------------------------------------------------
// Fleet-level fault tolerance (the `pulse::runtime::fleet` layer).
//
// CI's fleet job re-runs these under several seeds via PULSE_CHAOS_SEED.
// ---------------------------------------------------------------------------

/// The smallest cold-start duration any zoo variant can draw (deterministic
/// sampling); migrations must beat this to be worth anything.
fn min_cold_ms(fams: &[ModelFamily]) -> u64 {
    fams.iter()
        .flat_map(|f| (0..=f.highest_id()).map(|v| (f.variant(v).cold_start_s * 1000.0) as u64))
        .min()
        .unwrap_or(0)
}

#[test]
fn single_node_fleet_is_bitwise_identical_to_cluster_for_every_policy() {
    use pulse::runtime::{
        AdmissionControl, ClusterConfig, FaultPlan, FleetConfig, NodeCapacity, Runtime,
        RuntimeConfig,
    };
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // A binding cluster (pressure + sheds) plus request-level faults: the
    // fleet generalization must collapse to the cluster path exactly when
    // given one nominal node and no node faults.
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let cluster = ClusterConfig {
        capacity: NodeCapacity::mb(all_high * 0.3),
        admission: AdmissionControl::bounded(16),
    };
    let plan = FaultPlan::uniform(0.1, 0.05, 0.02, seed);
    for (name, make) in &policy_factories(&fams, &trace) {
        let via_cluster = rt.run_with_cluster(make().as_mut(), &plan, &cluster);
        let via_fleet =
            rt.run_with_fleet(make().as_mut(), &plan, &FleetConfig::from_cluster(cluster));
        assert_summaries_bit_identical(name, &via_cluster, &via_fleet);
        // The single node absorbs the whole fleet accounting.
        assert_eq!(via_fleet.node_summaries.len(), 1, "{name}");
        let n0 = &via_fleet.node_summaries[0];
        assert_eq!(
            n0.keepalive_cost_usd.to_bits(),
            via_fleet.keepalive_cost_usd.to_bits(),
            "{name}: node cost must equal total cost"
        );
        let node_mem: Vec<u64> = n0.memory_at_tick_mb.iter().map(|m| m.to_bits()).collect();
        let total_mem: Vec<u64> = via_fleet
            .memory_at_tick_mb
            .iter()
            .map(|m| m.to_bits())
            .collect();
        assert_eq!(node_mem, total_mem, "{name}: node series must equal total");
        assert_eq!(n0.minutes_down, 0, "{name}");
        assert_eq!(via_fleet.migrations, 0, "{name}");
        assert_eq!(via_fleet.node_crashes, 0, "{name}");
        assert_eq!(via_fleet.redispatched_requests, 0, "{name}");
        assert_eq!(via_fleet.placement_failures, 0, "{name}");
    }
}

#[test]
fn idle_unlimited_extra_nodes_are_bitwise_transparent() {
    use pulse::runtime::{FaultPlan, FleetConfig, NodeCapacity, Runtime, RuntimeConfig};
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 150);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // With every node unlimited and nominal, the placer always resolves to
    // node 0 (strictly-better-or-first-wins) — so extra empty nodes must
    // not move a single bit of the accounting.
    let fleet = FleetConfig::uniform(3, NodeCapacity::unlimited());
    for (name, make) in &policy_factories(&fams, &trace) {
        let single = rt.run_with_faults(make().as_mut(), &FaultPlan::none());
        let spread = rt.run_with_fleet(make().as_mut(), &FaultPlan::none(), &fleet);
        assert_eq!(single.records, spread.records, "{name}: records diverged");
        assert_eq!(
            single.keepalive_cost_usd.to_bits(),
            spread.keepalive_cost_usd.to_bits(),
            "{name}: cost not bitwise equal"
        );
        assert_eq!(spread.node_summaries.len(), 3, "{name}");
        for idle in &spread.node_summaries[1..] {
            assert_eq!(idle.keepalive_cost_usd, 0.0, "{name}: idle node billed");
            assert!(
                idle.memory_at_tick_mb.iter().all(|&m| m == 0.0),
                "{name}: idle node held memory"
            );
        }
    }
}

#[test]
fn rolling_node_failures_keep_every_policy_available() {
    use pulse::runtime::{
        FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig,
    };
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 240);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // Three capped nodes, one crashing at a time on a rolling schedule: the
    // survivors absorb the displaced functions (pushing them near their
    // caps), and the healed node takes migrations back.
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let fleet = FleetConfig::uniform(3, NodeCapacity::mb(all_high * 0.45))
        .with_node_faults(NodeFaultPlan::rolling_crashes(3, 10, 6, 30, 240));
    let cheap_bar = min_cold_ms(&fams);
    let mut total_migrations = 0u64;
    for (name, make) in &policy_factories(&fams, &trace) {
        let s = rt.run_with_fleet(make().as_mut(), &FaultPlan::none(), &fleet);
        assert_eq!(s.requests(), trace.total_invocations(), "{name}");
        assert!(
            s.availability() >= 0.99,
            "{name}: availability {} under rolling crashes",
            s.availability()
        );
        assert!(s.node_crashes > 0, "{name}: plan must actually fire");
        assert!(s.node_recoveries > 0, "{name}");
        let down: u64 = s.node_summaries.iter().map(|n| n.minutes_down).sum();
        assert!(down > 0, "{name}: downtime must be accounted");
        // Migration bookkeeping balances, and the total pause charged is
        // strictly cheaper than cold-starting the same containers.
        let inflow: u64 = s.node_summaries.iter().map(|n| n.migrations_in).sum();
        let outflow: u64 = s.node_summaries.iter().map(|n| n.migrations_out).sum();
        assert_eq!(inflow, s.migrations, "{name}");
        assert_eq!(outflow, s.migrations, "{name}");
        assert!(
            s.migration_pause_ms < (s.migrations + 1) * cheap_bar,
            "{name}: migrations must be cheaper than cold starts"
        );
        total_migrations += s.migrations;
    }
    assert!(
        total_migrations > 0,
        "rolling crashes over capped nodes must trigger migrations"
    );
}

#[test]
fn correlated_outage_fails_over_or_fails_loud() {
    use pulse::runtime::{
        FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig,
    };
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 120);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // Two of three nodes partition simultaneously (an AZ outage): the
    // survivor carries everything; with the whole fleet partitioned the
    // failure must be loud (placement failures), never a hang.
    let fleet = FleetConfig::uniform(3, NodeCapacity::unlimited())
        .with_node_faults(NodeFaultPlan::correlated_outage(&[0, 1], 30, 20));
    let s = rt.run_with_fleet(
        &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
        &FaultPlan::none(),
        &fleet,
    );
    assert_eq!(s.requests(), trace.total_invocations());
    assert_eq!(s.node_partitions, 2);
    assert!(
        s.availability() >= 0.99,
        "one node survived: {availability}",
        availability = s.availability()
    );
    // Every request reached a terminal state (no lost work).
    for r in &s.records {
        assert!(r.done_ms >= r.arrival_ms);
    }

    let all_down = FleetConfig::uniform(2, NodeCapacity::unlimited())
        .with_node_faults(NodeFaultPlan::correlated_outage(&[0, 1], 30, 20));
    let dark = rt.run_with_fleet(
        &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
        &FaultPlan::none(),
        &all_down,
    );
    assert!(
        dark.placement_failures > 0,
        "a fully dark fleet must fail placements loudly"
    );
    assert!(dark.failed_requests() > 0);
    for r in &dark.records {
        assert!(r.done_ms >= r.arrival_ms, "no request may be left hanging");
    }
}

#[test]
fn stragglers_slow_requests_but_fail_nothing() {
    use pulse::runtime::{
        FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig,
    };
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 120);
    let fams = zoo12();
    let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
    let slow = FleetConfig::uniform(1, NodeCapacity::unlimited())
        .with_node_faults(NodeFaultPlan::stragglers(1, 5, 110, 1000, 4.0, 120));
    let s = rt.run_with_fleet(&mut OpenWhiskFixed::new(&fams), &FaultPlan::none(), &slow);
    let clean = rt.run(&mut OpenWhiskFixed::new(&fams));
    assert_eq!(s.node_stragglers, 1);
    assert_eq!(s.failed_requests(), 0, "slow is not broken");
    assert_eq!(s.requests(), clean.requests());
    assert!(
        s.latency_p99_ms() > clean.latency_p99_ms(),
        "a 4x straggler must show up in the tail: {} vs {}",
        s.latency_p99_ms(),
        clean.latency_p99_ms()
    );
    // Billing is schedule-driven: stragglers never change cost.
    assert_eq!(
        s.keepalive_cost_usd.to_bits(),
        clean.keepalive_cost_usd.to_bits()
    );
}

#[test]
fn null_sink_fleet_run_is_bit_identical_for_every_policy() {
    use pulse::runtime::{
        FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig,
    };
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 200);
    let fams = zoo12();
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    // Node faults, migrations and request-level faults all firing: the sink
    // hook sits on every new fleet path and must not perturb any of them.
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let fleet = FleetConfig::uniform(3, NodeCapacity::mb(all_high * 0.45))
        .with_node_admission(64)
        .with_node_faults(NodeFaultPlan::rolling_crashes(3, 10, 6, 30, 200));
    let plan = FaultPlan::uniform(0.05, 0.02, 0.02, seed);
    for (name, make) in &policy_factories(&fams, &trace) {
        let plain = rt.run_with_fleet(make().as_mut(), &plan, &fleet);
        let traced = rt.run_with_fleet_traced(make().as_mut(), &plan, &fleet, &mut NullSink);
        assert_summaries_bit_identical(name, &plain, &traced);
    }
}

#[test]
fn fleet_scenarios_replay_identically_under_the_chaos_seed() {
    use pulse::runtime::{
        FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig,
    };
    let seed = chaos_seed();
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 150);
    let fams = zoo12();
    let rt = Runtime::new(
        trace,
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(seed),
            ..RuntimeConfig::default()
        },
    );
    let fleet = FleetConfig::heterogeneous(vec![
        pulse::runtime::NodeSpec::nominal("big", NodeCapacity::gb(8.0)),
        pulse::runtime::NodeSpec::nominal("slow", NodeCapacity::gb(4.0)).with_speed_factor(1.5),
        pulse::runtime::NodeSpec::nominal("cheap", NodeCapacity::gb(4.0)).with_price_factor(0.5),
    ])
    .with_node_faults(NodeFaultPlan::rolling_crashes(3, 15, 5, 40, 150));
    let plan = FaultPlan::uniform(0.1, 0.05, 0.05, seed);
    let a = rt.run_with_fleet(
        &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
        &plan,
        &fleet,
    );
    let b = rt.run_with_fleet(
        &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
        &plan,
        &fleet,
    );
    assert_summaries_bit_identical("pulse/fleet-replay", &a, &b);
    assert_eq!(a.records, b.records);
}

#[test]
fn one_minute_horizon_works() {
    let trace = Trace::new(vec![FunctionTrace::new("f", vec![3])]);
    let fams = vec![pulse::models::zoo::gpt()];
    let sim = Simulator::new(trace, fams.clone());
    let m = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
    assert_eq!(m.invocations(), 3);
    assert_eq!(m.cold_starts, 1);
    assert_eq!(m.memory_series_mb.len(), 1);
}

#[test]
fn extreme_config_values_do_not_break_pulse() {
    let trace = pulse::trace::synth::azure_like_12_with_horizon(9, 400);
    let fams = zoo12();
    let sim = Simulator::new(trace.clone(), fams.clone());
    for cfg in [
        PulseConfig {
            km_threshold: 0.0, // every increase is a peak
            ..Default::default()
        },
        PulseConfig {
            km_threshold: 1e9, // nothing is ever a peak
            ..Default::default()
        },
        PulseConfig {
            keepalive_minutes: 1,
            ..Default::default()
        },
        PulseConfig {
            local_window: 1,
            ..Default::default()
        },
    ] {
        let m = sim.run(&mut PulsePolicy::new(fams.clone(), cfg));
        assert_eq!(m.invocations(), trace.total_invocations(), "{cfg:?}");
        assert!(m.keepalive_cost_usd >= 0.0);
    }
}

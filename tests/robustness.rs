//! Failure-injection and robustness tests: pathological traces and
//! misbehaving policies must not corrupt the platform's accounting.

#![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests compare exact values; counts fit usize

use pulse::core::global::{AliveModel, DowngradeAction};
use pulse::core::individual::KeepAliveSchedule;
use pulse::core::types::{FuncId, Minute, PulseConfig};
use pulse::prelude::*;
use pulse::sim::assignment::round_robin_assignment;

fn zoo12() -> Vec<ModelFamily> {
    round_robin_assignment(&pulse::models::zoo::standard(), 12)
}

#[test]
fn all_silent_trace_is_free() {
    let trace = Trace::new(
        (0..12)
            .map(|i| FunctionTrace::new(format!("f{i}"), vec![0; 500]))
            .collect(),
    );
    let fams = zoo12();
    let sim = Simulator::new(trace, fams.clone());
    for metrics in [
        sim.run(&mut OpenWhiskFixed::new(&fams)),
        sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default())),
    ] {
        assert_eq!(metrics.invocations(), 0);
        assert_eq!(metrics.keepalive_cost_usd, 0.0);
        assert_eq!(metrics.service_time_s, 0.0);
        assert!(metrics.memory_series_mb.iter().all(|&m| m == 0.0));
    }
}

#[test]
fn saturated_trace_is_all_warm_after_first_minute() {
    // Every function fires every single minute.
    let trace = Trace::new(
        (0..12)
            .map(|i| FunctionTrace::new(format!("f{i}"), vec![1; 300]))
            .collect(),
    );
    let fams = zoo12();
    let sim = Simulator::new(trace, fams.clone());
    let m = sim.run(&mut OpenWhiskFixed::new(&fams));
    assert_eq!(m.cold_starts, 12, "one cold start per function");
    assert_eq!(m.warm_starts, 12 * 299);
}

#[test]
fn single_mega_burst_is_accounted_once() {
    let mut counts = vec![0u32; 100];
    counts[50] = 10_000;
    let trace = Trace::new(vec![FunctionTrace::new("burst", counts)]);
    let fams = vec![pulse::models::zoo::bert()];
    let sim = Simulator::new(trace, fams.clone());
    let m = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
    assert_eq!(m.invocations(), 10_000);
    assert_eq!(m.cold_starts, 1);
    assert_eq!(m.warm_starts, 9_999);
}

/// A policy that emits downgrade actions for functions that are not alive,
/// repeats actions, and schedules in strange shapes. The engine must ignore
/// the nonsense and keep its accounting invariants.
struct ChaoticPolicy {
    fams: Vec<ModelFamily>,
    tick: u64,
}

impl KeepAlivePolicy for ChaoticPolicy {
    fn name(&self) -> &str {
        "chaotic"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        // Alternate between empty plans, single-minute plans, and oversized
        // variant ids clamped only by the family ladder (use highest).
        match t % 3 {
            0 => KeepAliveSchedule::new(t, Vec::new()),
            1 => KeepAliveSchedule::new(t, vec![0]),
            _ => KeepAliveSchedule::constant(t, self.fams[f].highest_id(), 10),
        }
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> usize {
        self.fams[f].highest_id()
    }

    fn adjust_minute(
        &mut self,
        _t: Minute,
        _mem_history: &[f64],
        _first: bool,
        _kam: f64,
        _alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        self.tick += 1;
        // Bogus actions: downgrades for functions without schedules,
        // evictions of never-alive functions, repeated entries.
        vec![
            DowngradeAction::Downgrade {
                func: (self.tick as usize) % self.fams.len(),
                from: 2,
                to: 0,
            },
            DowngradeAction::Evict {
                func: (self.tick as usize + 1) % self.fams.len(),
                from: 0,
            },
            DowngradeAction::Evict {
                func: (self.tick as usize + 1) % self.fams.len(),
                from: 0,
            },
        ]
    }
}

#[test]
fn engine_survives_chaotic_policy() {
    let trace = pulse::trace::synth::azure_like_12_with_horizon(3, 600);
    let fams = zoo12();
    let sim = Simulator::new(trace.clone(), fams.clone());
    let m = sim.run(&mut ChaoticPolicy {
        fams: fams.clone(),
        tick: 0,
    });
    // Accounting invariants hold regardless of policy nonsense.
    assert_eq!(m.invocations(), trace.total_invocations());
    assert!(m.keepalive_cost_usd >= 0.0);
    assert!(m.service_time_s > 0.0);
    assert_eq!(m.memory_series_mb.len(), trace.minutes());
    assert!(m.memory_series_mb.iter().all(|&x| x >= 0.0));
    let series_total: f64 = m.cost_series_usd.iter().sum();
    assert!((series_total - m.keepalive_cost_usd).abs() < 1e-9);
}

#[test]
fn runtime_survives_chaotic_policy_too() {
    use pulse::runtime::{Runtime, RuntimeConfig};
    let trace = pulse::trace::synth::azure_like_12_with_horizon(3, 300);
    let fams = zoo12();
    let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
    let s = rt.run(&mut ChaoticPolicy {
        fams: fams.clone(),
        tick: 0,
    });
    assert_eq!(s.requests(), trace.total_invocations());
    assert!(s.keepalive_cost_usd >= 0.0);
    // Every request completed (done >= arrival).
    for r in &s.records {
        assert!(r.done_ms >= r.arrival_ms);
        assert!(r.accuracy_pct > 0.0);
    }
}

#[test]
fn one_minute_horizon_works() {
    let trace = Trace::new(vec![FunctionTrace::new("f", vec![3])]);
    let fams = vec![pulse::models::zoo::gpt()];
    let sim = Simulator::new(trace, fams.clone());
    let m = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
    assert_eq!(m.invocations(), 3);
    assert_eq!(m.cold_starts, 1);
    assert_eq!(m.memory_series_mb.len(), 1);
}

#[test]
fn extreme_config_values_do_not_break_pulse() {
    let trace = pulse::trace::synth::azure_like_12_with_horizon(9, 400);
    let fams = zoo12();
    let sim = Simulator::new(trace.clone(), fams.clone());
    for cfg in [
        PulseConfig {
            km_threshold: 0.0, // every increase is a peak
            ..Default::default()
        },
        PulseConfig {
            km_threshold: 1e9, // nothing is ever a peak
            ..Default::default()
        },
        PulseConfig {
            keepalive_minutes: 1,
            ..Default::default()
        },
        PulseConfig {
            local_window: 1,
            ..Default::default()
        },
    ] {
        let m = sim.run(&mut PulsePolicy::new(fams.clone(), cfg));
        assert_eq!(m.invocations(), trace.total_invocations(), "{cfg:?}");
        assert!(m.keepalive_cost_usd >= 0.0);
    }
}

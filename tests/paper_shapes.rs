//! Paper-shape regression suite: one assertion per headline claim of the
//! paper, run end-to-end at reduced scale. If a refactor silently breaks a
//! reproduction target, this suite is where it shows up.

use pulse_experiments::common::{improvement_lower_better, ExpConfig};
use pulse_experiments::{exp_fig4_fig7, exp_fig5_fig6, exp_fig8, exp_tables23};

fn cfg() -> ExpConfig {
    ExpConfig {
        seed: 42,
        horizon: 2000,
        n_runs: 8,
        trace_out: None,
        serve: Default::default(),
    }
}

#[test]
fn claim_cost_reduction_over_openwhisk() {
    // Paper: 39.5 % keep-alive cost reduction. Target: a substantial cut.
    let r = exp_fig5_fig6::evaluate(&cfg());
    let get = |n: &str| r.rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
    let (_, ow_cost, ..) = get("openwhisk");
    let (_, pu_cost, ..) = get("pulse");
    let cut = improvement_lower_better(pu_cost, ow_cost);
    assert!(cut > 25.0, "cost cut only {cut:.1}% (paper: 39.5%)");
}

#[test]
fn claim_service_time_improvement() {
    // Paper: 8.8 % service-time reduction (PULSE must not be slower).
    let r = exp_fig5_fig6::evaluate(&cfg());
    let get = |n: &str| r.rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
    let (_, _, _, ow_svc) = get("openwhisk");
    let (_, _, _, pu_svc) = get("pulse");
    assert!(
        pu_svc < ow_svc,
        "pulse service {pu_svc:.0}s !< openwhisk {ow_svc:.0}s"
    );
}

#[test]
fn claim_accuracy_within_a_few_points() {
    // Paper: 0.6 % accuracy decrease. Target: small, bounded loss.
    let r = exp_fig5_fig6::evaluate(&cfg());
    let get = |n: &str| r.rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
    let (_, _, ow_acc, _) = get("openwhisk");
    let (_, _, pu_acc, _) = get("pulse");
    let drop = ow_acc - pu_acc;
    assert!((0.0..4.0).contains(&drop), "accuracy drop {drop:.2} points");
}

#[test]
fn claim_fig5_pulse_sits_inside_the_corners() {
    let r = exp_fig5_fig6::evaluate(&cfg());
    let get = |n: &str| r.rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
    let (_, low_cost, low_acc, _) = get("lowest-quality");
    let (_, high_cost, high_acc, _) = get("highest-quality");
    let (_, pu_cost, pu_acc, _) = get("pulse");
    // Cost near the lowest-quality corner…
    assert!(pu_cost < low_cost + (high_cost - low_cost) * 0.4);
    // …accuracy much closer to the highest-quality corner than to the lowest.
    assert!(pu_acc - low_acc > (high_acc - pu_acc));
}

#[test]
fn claim_tables23_strategy_ordering() {
    for e in exp_tables23::evaluate(&cfg()) {
        let [high, low, random, intelligent] = &e.rows[..] else {
            panic!()
        };
        assert!(high.keepalive_cost_usd > low.keepalive_cost_usd);
        assert!(high.avg_accuracy_pct() >= intelligent.avg_accuracy_pct());
        assert!(intelligent.avg_accuracy_pct() >= random.avg_accuracy_pct() - 0.5);
        assert!(random.avg_accuracy_pct() > low.avg_accuracy_pct());
    }
}

#[test]
fn claim_fig7_memory_is_lower_and_smoother() {
    let r = exp_fig4_fig7::evaluate(&cfg());
    assert!(r.pulse.avg_memory_mb() < r.openwhisk.avg_memory_mb() * 0.7);
    assert!(r.pulse.peak_memory_mb() < r.openwhisk.peak_memory_mb());
    // Peak-to-average flatness improves (smoothing).
    let flatness = |m: &pulse::sim::RunMetrics| m.peak_memory_mb() / m.avg_memory_mb().max(1e-9);
    assert!(flatness(&r.pulse) < flatness(&r.openwhisk) * 1.5);
}

#[test]
fn claim_fig8_integration_cuts_costs() {
    let rows = exp_fig8::evaluate(&ExpConfig {
        seed: 42,
        horizon: 1500,
        n_runs: 4,
        trace_out: None,
        serve: Default::default(),
    });
    let get = |n: &str| rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
    let (_, wild_cost, ..) = get("wild");
    let (_, wp_cost, ..) = get("wild+pulse");
    let (_, ib_cost, ..) = get("icebreaker");
    let (_, ibp_cost, ..) = get("icebreaker+pulse");
    assert!(wp_cost < wild_cost * 0.7, "wild cut too small");
    assert!(ibp_cost <= ib_cost, "icebreaker integration raised cost");
}

#[test]
fn experiment_pipeline_is_deterministic() {
    // The multi-run campaigns parallelize over threads; results must not
    // depend on scheduling.
    let cfg = ExpConfig {
        seed: 42,
        horizon: 900,
        n_runs: 6,
        trace_out: None,
        serve: Default::default(),
    };
    let a = pulse_experiments::run_experiment("fig6a", &cfg).unwrap();
    let b = pulse_experiments::run_experiment("fig6a", &cfg).unwrap();
    assert_eq!(a, b);
    let a = pulse_experiments::run_experiment("table2", &cfg).unwrap();
    let b = pulse_experiments::run_experiment("table2", &cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn claim_fig9_milp_slower_and_not_more_accurate() {
    let samples = pulse_experiments::exp_fig9::overhead_samples(12, 5);
    let greedy: f64 = samples.iter().map(|&(g, _)| g).sum();
    let milp: f64 = samples.iter().map(|&(_, m)| m).sum();
    assert!(milp > greedy * 3.0, "milp {milp} vs greedy {greedy}");
    let (pulse_acc, milp_acc) = pulse_experiments::exp_fig9::accuracy_comparison(&ExpConfig {
        seed: 42,
        horizon: 1200,
        n_runs: 2,
        trace_out: None,
        serve: Default::default(),
    });
    assert!(milp_acc <= pulse_acc + 1.0);
}

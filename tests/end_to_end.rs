//! End-to-end integration tests spanning all crates: seeded simulations
//! asserting the paper's qualitative results hold on the full stack.

use pulse::core::PulseConfig;
use pulse::prelude::*;
use pulse::sim::assignment::{random_assignment, round_robin_assignment};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn workload(seed: u64, minutes: usize) -> (Trace, Vec<ModelFamily>) {
    let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, minutes);
    let families = round_robin_assignment(&pulse::models::zoo::standard(), trace.n_functions());
    (trace, families)
}

#[test]
fn pulse_beats_openwhisk_on_cost_and_service_time() {
    let (trace, families) = workload(42, 2880);
    let sim = Simulator::new(trace, families.clone());
    let ow = sim.run(&mut OpenWhiskFixed::new(&families));
    let pu = sim.run(&mut PulsePolicy::new(families, PulseConfig::default()));
    assert!(pu.keepalive_cost_usd < ow.keepalive_cost_usd * 0.9);
    assert!(pu.service_time_s < ow.service_time_s);
    // Accuracy within 3 points (paper: −0.6 points).
    assert!(ow.avg_accuracy_pct() - pu.avg_accuracy_pct() < 3.0);
}

#[test]
fn pulse_cost_cut_holds_across_seeds_and_assignments() {
    for seed in [1u64, 7, 99] {
        let trace = pulse::trace::synth::azure_like_12_with_horizon(seed, 1800);
        let families = random_assignment(
            &pulse::models::zoo::standard(),
            trace.n_functions(),
            &mut SmallRng::seed_from_u64(seed),
        );
        let sim = Simulator::new(trace, families.clone());
        let ow = sim.run(&mut OpenWhiskFixed::new(&families));
        let pu = sim.run(&mut PulsePolicy::new(families, PulseConfig::default()));
        assert!(
            pu.keepalive_cost_usd < ow.keepalive_cost_usd,
            "seed {seed}: {} !< {}",
            pu.keepalive_cost_usd,
            ow.keepalive_cost_usd
        );
    }
}

#[test]
fn quality_corners_bound_pulse() {
    let (trace, families) = workload(5, 2000);
    let sim = Simulator::new(trace, families.clone());
    let low = sim.run(&mut FixedVariant::all_low(&families));
    let high = sim.run(&mut FixedVariant::all_high(&families));
    let pu = sim.run(&mut PulsePolicy::new(families, PulseConfig::default()));
    // PULSE sits inside the corners: cost below all-high, accuracy above
    // all-low.
    assert!(pu.keepalive_cost_usd < high.keepalive_cost_usd);
    assert!(pu.avg_accuracy_pct() > low.avg_accuracy_pct());
    // And the corners are genuine corners.
    assert!(low.keepalive_cost_usd < high.keepalive_cost_usd);
    assert!(low.avg_accuracy_pct() < high.avg_accuracy_pct());
}

#[test]
fn global_optimizer_reduces_peak_memory_versus_individual_only() {
    let (trace, families) = workload(11, 2880);
    let sim = Simulator::new(trace, families.clone());
    let indiv = sim.run(&mut PulsePolicy::without_global(
        families.clone(),
        PulseConfig::default(),
    ));
    let full = sim.run(&mut PulsePolicy::new(families, PulseConfig::default()));
    assert!(full.peak_memory_mb() <= indiv.peak_memory_mb());
    assert!(full.downgrades > 0);
    assert_eq!(indiv.downgrades, 0);
    // The global layer trims cost further.
    assert!(full.keepalive_cost_usd <= indiv.keepalive_cost_usd);
}

#[test]
fn ideal_oracle_is_the_cost_floor() {
    let (trace, families) = workload(3, 1500);
    let sim = Simulator::new(trace.clone(), families.clone());
    let ideal = sim.run(&mut IdealOracle::new(&families, trace));
    let ow = sim.run(&mut OpenWhiskFixed::new(&families));
    let pu = sim.run(&mut PulsePolicy::new(families, PulseConfig::default()));
    assert!(ideal.keepalive_cost_usd < pu.keepalive_cost_usd);
    assert!(ideal.keepalive_cost_usd < ow.keepalive_cost_usd);
    // PULSE lands closer to the ideal than OpenWhisk (Figure 6b's message).
    let gap_pulse = pu.keepalive_cost_usd - ideal.keepalive_cost_usd;
    let gap_ow = ow.keepalive_cost_usd - ideal.keepalive_cost_usd;
    assert!(gap_pulse < gap_ow);
}

#[test]
fn intelligent_oracle_beats_random_mix_on_accuracy_per_dollar() {
    let (trace, families) = workload(17, 1500);
    let sim = Simulator::new(trace.clone(), families.clone());
    let mut rng = SmallRng::seed_from_u64(17);
    let random = sim.run(&mut RandomMix::new(&families, &mut rng));
    let intelligent = sim.run(&mut IntelligentOracle::new(&families, trace));
    // The oracle allocates high quality where invocations actually land, so
    // its delivered accuracy is at least the random mix's.
    assert!(intelligent.avg_accuracy_pct() >= random.avg_accuracy_pct() - 0.5);
}

#[test]
fn run_metrics_are_internally_consistent() {
    let (trace, families) = workload(23, 1200);
    let sim = Simulator::new(trace.clone(), families.clone());
    let m = sim.run(&mut PulsePolicy::new(families, PulseConfig::default()));
    assert_eq!(m.invocations(), m.warm_starts + m.cold_starts);
    assert_eq!(m.memory_series_mb.len(), trace.minutes());
    assert_eq!(m.cost_series_usd.len(), trace.minutes());
    let series_total: f64 = m.cost_series_usd.iter().sum();
    assert!((series_total - m.keepalive_cost_usd).abs() < 1e-9);
    assert!(m.avg_accuracy_pct() > 0.0 && m.avg_accuracy_pct() <= 100.0);
    // Invocations served equals the trace's volume.
    assert_eq!(m.invocations(), trace.total_invocations());
}

/// Full-scale soak: the complete two-week trace across every policy family,
/// checking accounting invariants throughout. Minutes of wall clock — run
/// explicitly with `cargo test --release -- --ignored`.
#[test]
#[ignore = "two-week soak; run with --ignored"]
fn soak_two_weeks_all_policies() {
    let trace = pulse::trace::synth::azure_like_12(2024);
    let families = round_robin_assignment(&pulse::models::zoo::standard(), 12);
    let sim = Simulator::new(trace.clone(), families.clone());
    let mut policies: Vec<Box<dyn KeepAlivePolicy>> = vec![
        Box::new(OpenWhiskFixed::new(&families)),
        Box::new(FixedVariant::all_low(&families)),
        Box::new(FixedVariant::all_high(&families)),
        Box::new(PulsePolicy::new(families.clone(), PulseConfig::default())),
        Box::new(PulsePolicy::without_global(
            families.clone(),
            PulseConfig::default(),
        )),
        Box::new(IdealOracle::new(&families, trace.clone())),
    ];
    let mut costs = Vec::new();
    for p in policies.iter_mut() {
        let m = sim.run(p.as_mut());
        assert_eq!(m.invocations(), trace.total_invocations(), "{}", m.policy);
        assert_eq!(m.memory_series_mb.len(), trace.minutes());
        assert!(m.keepalive_cost_usd.is_finite() && m.keepalive_cost_usd >= 0.0);
        assert!(m.avg_accuracy_pct() > 50.0 && m.avg_accuracy_pct() <= 100.0);
        costs.push((m.policy.clone(), m.keepalive_cost_usd));
    }
    let cost = |n: &str| costs.iter().find(|(p, _)| p.contains(n)).unwrap().1;
    assert!(cost("ideal") < cost("pulse"));
    assert!(cost("pulse") < cost("openwhisk"));
    assert!(cost("all-low") < cost("all-high"));
}

#[test]
fn multi_run_campaign_is_reproducible_end_to_end() {
    use pulse::sim::runner::{run_many, MultiRunConfig, PolicyFactory};
    let trace = pulse::trace::synth::azure_like_12_with_horizon(9, 800);
    let zoo = pulse::models::zoo::standard();
    let cfg = MultiRunConfig {
        n_runs: 6,
        base_seed: 77,
        threads: Some(3),
    };
    let factory: Box<PolicyFactory<'_>> =
        Box::new(|fams, _| Box::new(PulsePolicy::new(fams.to_vec(), PulseConfig::default())));
    let a = run_many(&trace, &zoo, &cfg, factory.as_ref());
    let b = run_many(&trace, &zoo, &cfg, factory.as_ref());
    assert_eq!(a, b);
}

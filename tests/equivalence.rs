//! Cross-engine equivalence properties over the shared schedule ledger.
//!
//! Both engines — the minute-resolution `Simulator` and the millisecond
//! event-driven `Runtime` — now plan, downgrade, and bill through the same
//! `pulse_core::schedule::ScheduleLedger`. These properties pin the payoff:
//! for deterministic policies on arbitrary workloads, the engines agree on
//! billed keep-alive cost (to minute-boundary rounding), on warm/cold start
//! counts exactly, and on the number of downgrade/evict actions exactly —
//! including policies that exercise the cross-function downgrade path, which
//! the per-crate validation tests only cover for action-free baselines.

#![allow(clippy::cast_possible_truncation)] // test-local minute counts fit usize

use proptest::prelude::*;
use pulse::core::global::{AliveModel, DowngradeAction};
use pulse::core::individual::KeepAliveSchedule;
use pulse::core::types::{FuncId, Minute};
use pulse::models::VariantId;
use pulse::prelude::*;
use pulse::sim::assignment::round_robin_assignment;

/// A trace of `1..=3` functions over `30..120` minutes with at most
/// `max_per_minute` invocations per function-minute. The downgrade-exercising
/// properties stay at one invocation per minute so no request is ever
/// executing across the minute tick that evicts its container (the engines
/// model that boundary at different resolutions by design).
fn arb_trace(max_per_minute: u32) -> impl Strategy<Value = Trace> {
    (1usize..4, 30usize..120).prop_flat_map(move |(nf, minutes)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..=max_per_minute, minutes..=minutes),
            nf..=nf,
        )
        .prop_map(|rows| {
            Trace::new(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, counts)| FunctionTrace::new(format!("f{i}"), counts))
                    .collect(),
            )
        })
    })
}

/// A deterministic cross-function layer over a fixed keep-alive baseline:
/// every `period` minutes it downgrades one alive container by one rung (or
/// evicts it when already at the lowest rung), rotating the victim by
/// minute. Both engines drive it through the same `adjust_minute` call, so
/// any divergence in the alive sets they present — or in how the shared
/// ledger applies the returned actions — changes its decisions and breaks
/// the equality assertions downstream.
struct PeriodicDowngrader {
    inner: OpenWhiskFixed,
    period: u64,
}

impl KeepAlivePolicy for PeriodicDowngrader {
    fn name(&self) -> &str {
        "periodic-downgrader"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.inner.schedule_on_invocation(f, t)
    }

    fn cold_start_variant(&mut self, f: FuncId, t: Minute) -> VariantId {
        self.inner.cold_start_variant(f, t)
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        _mem_history: &[f64],
        _first_minute_of_period: bool,
        _current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        if t == 0 || !t.is_multiple_of(self.period) || alive.is_empty() {
            return Vec::new();
        }
        let idx = (t / self.period) as usize % alive.len();
        let victim = alive[idx].clone();
        if victim.variant > 0 {
            alive[idx].variant -= 1;
            vec![DowngradeAction::Downgrade {
                func: victim.func,
                from: victim.variant,
                to: victim.variant - 1,
            }]
        } else {
            alive.remove(idx);
            vec![DowngradeAction::Evict {
                func: victim.func,
                from: 0,
            }]
        }
    }
}

/// Assert the full equivalence contract between one sim run and one runtime
/// run: exact warm/cold/downgrade counts, cost to minute-boundary rounding,
/// and the per-minute billed memory series elementwise.
fn assert_engines_agree(
    s: &RunMetrics,
    r: &pulse::runtime::RuntimeSummary,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(s.warm_starts, r.warm_starts());
    prop_assert_eq!(s.cold_starts, r.cold_starts());
    prop_assert_eq!(s.downgrades, r.downgrades);
    prop_assert!(
        (s.keepalive_cost_usd - r.keepalive_cost_usd).abs() < 1e-9,
        "cost: sim {} vs runtime {}",
        s.keepalive_cost_usd,
        r.keepalive_cost_usd
    );
    prop_assert_eq!(s.memory_series_mb.len(), r.memory_at_tick_mb.len());
    for (t, (&sm, &rm)) in s
        .memory_series_mb
        .iter()
        .zip(r.memory_at_tick_mb.iter())
        .enumerate()
    {
        prop_assert!(
            (sm - rm).abs() < 1e-9,
            "minute {}: sim billed {} MB, runtime billed {} MB",
            t,
            sm,
            rm
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Equivalence under an action-emitting policy: the shared ledger applies
    /// the same downgrades/evictions in both engines, so costs, counts, and
    /// the billed memory series all agree on arbitrary sparse workloads.
    #[test]
    fn engines_agree_under_periodic_downgrades(
        trace in arb_trace(1),
        period in 2u64..7,
    ) {
        let fams = round_robin_assignment(
            &pulse::models::zoo::standard(),
            trace.n_functions(),
        );
        let sim = Simulator::new(trace.clone(), fams.clone());
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = sim.run(&mut PeriodicDowngrader {
            inner: OpenWhiskFixed::new(&fams),
            period,
        });
        let r = rt.run(&mut PeriodicDowngrader {
            inner: OpenWhiskFixed::new(&fams),
            period,
        });
        assert_engines_agree(&s, &r)?;
    }

    /// Equivalence for the pinned-variant baselines (all-low and all-high)
    /// on denser workloads — no downgrade actions, but cold-start variant
    /// choice and schedule refresh must route identically through the ledger.
    #[test]
    fn engines_agree_on_pinned_variants(trace in arb_trace(2), high in 0u8..2) {
        let high = high == 1;
        let fams = round_robin_assignment(
            &pulse::models::zoo::standard(),
            trace.n_functions(),
        );
        let mk = |fams: &[_]| if high {
            FixedVariant::all_high(fams)
        } else {
            FixedVariant::all_low(fams)
        };
        let sim = Simulator::new(trace.clone(), fams.clone());
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = sim.run(&mut mk(&fams));
        let r = rt.run(&mut mk(&fams));
        assert_engines_agree(&s, &r)?;
    }

    /// The steppable sessions preserve the equivalence: driving both engines
    /// by hand — `SimSession::step_minute` against `RuntimeSession::step` —
    /// yields the same agreement as the batch `run` entry points, and the
    /// mid-run ledgers expose the same alive variant for every function at
    /// every minute boundary.
    #[test]
    fn stepped_sessions_agree_and_expose_one_ledger_view(
        trace in arb_trace(1),
        period in 2u64..7,
    ) {
        let fams = round_robin_assignment(
            &pulse::models::zoo::standard(),
            trace.n_functions(),
        );
        let minutes = trace.minutes();
        let sim = Simulator::new(trace.clone(), fams.clone());
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());

        let mut sp = PeriodicDowngrader { inner: OpenWhiskFixed::new(&fams), period };
        let mut rp = PeriodicDowngrader { inner: OpenWhiskFixed::new(&fams), period };
        let mut ssess = sim.session(&mut sp);
        let plan = FaultPlan::none();
        let mut rsess = rt.session(&mut rp, &plan, ClusterConfig::unlimited());

        for t in 0..minutes as u64 {
            // Advance each engine through exactly minute t: the runtime
            // processes every event timestamped inside the minute (its tick,
            // arrivals, completions), the sim takes one step. With both
            // engines at the t/t+1 boundary, minute t's slots are final in
            // both ledgers and must agree for every function.
            while rsess
                .peek_time()
                .is_some_and(|ms| ms < (t + 1) * pulse::runtime::MS_PER_MINUTE)
            {
                rsess.step();
            }
            prop_assert!(ssess.step_minute().is_some());
            for f in 0..fams.len() {
                prop_assert_eq!(
                    ssess.ledger().alive_variant_at(f, t),
                    rsess.ledger().alive_variant_at(f, t),
                    "minute {} func {}: ledgers disagree",
                    t,
                    f
                );
            }
        }
        prop_assert!(ssess.step_minute().is_none());
        while rsess.step().is_some() {}
        assert_engines_agree(&ssess.finish(), &rsess.finish())?;
    }
}

//! Implementing a custom keep-alive policy against the simulator's
//! `KeepAlivePolicy` trait, and racing it against the built-ins.
//!
//! The custom policy here is a simple *adaptive-window* strategy: keep the
//! highest-quality variant alive for as long as the function's recent mean
//! inter-arrival gap (clamped to 1–10 minutes) — a policy a practitioner
//! might actually try before reaching for PULSE.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

#![allow(clippy::cast_possible_truncation)] // demo window arithmetic stays tiny

use pulse::core::individual::KeepAliveSchedule;
use pulse::core::types::{FuncId, Minute, PulseConfig};
use pulse::models::{ModelFamily, VariantId};
use pulse::prelude::*;

/// Keep the highest variant alive for ≈ the recent mean gap.
struct AdaptiveWindow {
    families: Vec<ModelFamily>,
    last_arrival: Vec<Option<Minute>>,
    recent_gaps: Vec<Vec<f64>>,
}

impl AdaptiveWindow {
    fn new(families: Vec<ModelFamily>) -> Self {
        let n = families.len();
        Self {
            families,
            last_arrival: vec![None; n],
            recent_gaps: vec![Vec::new(); n],
        }
    }

    fn window_for(&self, f: FuncId) -> u32 {
        let gaps = &self.recent_gaps[f];
        if gaps.is_empty() {
            return 10;
        }
        let tail = &gaps[gaps.len().saturating_sub(16)..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        (mean.round() as u32).clamp(1, 10)
    }
}

impl KeepAlivePolicy for AdaptiveWindow {
    fn name(&self) -> &str {
        "adaptive-window"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        if let Some(last) = self.last_arrival[f] {
            if t > last {
                self.recent_gaps[f].push((t - last) as f64);
            }
        }
        self.last_arrival[f] = Some(t);
        KeepAliveSchedule::constant(t, self.families[f].highest_id(), self.window_for(f))
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.families[f].highest_id()
    }
}

fn main() {
    let trace = pulse::trace::synth::azure_like_12_with_horizon(21, 2 * 24 * 60);
    let zoo = pulse::models::zoo::standard();
    let families = pulse::sim::assignment::round_robin_assignment(&zoo, trace.n_functions());
    let sim = Simulator::new(trace, families.clone());

    let runs = [
        sim.run(&mut OpenWhiskFixed::new(&families)),
        sim.run(&mut AdaptiveWindow::new(families.clone())),
        sim.run(&mut PulsePolicy::new(families, PulseConfig::default())),
    ];

    println!(
        "{:<24} {:>14} {:>12} {:>12} {:>11}",
        "policy", "service time(s)", "cost(USD)", "accuracy(%)", "cold starts"
    );
    for m in &runs {
        println!(
            "{:<24} {:>14.0} {:>12.3} {:>12.2} {:>11}",
            m.policy,
            m.service_time_s,
            m.keepalive_cost_usd,
            m.avg_accuracy_pct(),
            m.cold_starts
        );
    }
    println!(
        "\nThe adaptive window trims cost by shortening idle keep-alive, but it is\n\
         variant-oblivious: PULSE's variant mixing cuts cost further while keeping\n\
         accuracy within a point of the all-highest baseline."
    );
}

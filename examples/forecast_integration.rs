//! Integrating PULSE into state-of-the-art warm-up strategies (Figure 8).
//!
//! Runs Serverless-in-the-Wild and IceBreaker — each as published, and each
//! with PULSE deciding the model variant inside the technique's predicted
//! warm windows — on the same workload and assignment.
//!
//! ```text
//! cargo run --release --example forecast_integration
//! ```

use pulse::core::PulseConfig;
use pulse::forecast::integrate::{
    IceBreakerPolicy, IceBreakerPulsePolicy, WildPolicy, WildPulsePolicy,
};
use pulse::prelude::*;

fn main() {
    let trace = pulse::trace::synth::azure_like_12_with_horizon(33, 2 * 24 * 60);
    let zoo = pulse::models::zoo::standard();
    let families = pulse::sim::assignment::round_robin_assignment(&zoo, trace.n_functions());
    let sim = Simulator::new(trace.clone(), families.clone());

    let runs = [
        sim.run(&mut WildPolicy::new(&families)),
        sim.run(&mut WildPulsePolicy::new(
            families.clone(),
            PulseConfig::default(),
        )),
        sim.run(&mut IceBreakerPolicy::new(&families, trace.clone())),
        sim.run(&mut IceBreakerPulsePolicy::new(
            families.clone(),
            trace,
            PulseConfig::default(),
        )),
    ];

    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>11}",
        "technique", "service time(s)", "cost(USD)", "accuracy(%)", "warm rate"
    );
    for m in &runs {
        println!(
            "{:<20} {:>14.0} {:>12.3} {:>12.2} {:>10.1}%",
            m.policy,
            m.service_time_s,
            m.keepalive_cost_usd,
            m.avg_accuracy_pct(),
            m.warm_fraction() * 100.0
        );
    }

    let cut = |a: f64, b: f64| (a - b) / a * 100.0;
    println!(
        "\nWild+PULSE cuts Wild's keep-alive cost by {:.1}% (paper: 99%).",
        cut(runs[0].keepalive_cost_usd, runs[1].keepalive_cost_usd)
    );
    println!(
        "IceBreaker+PULSE cuts IceBreaker's keep-alive cost by {:.1}% (paper: 14%).",
        cut(runs[2].keepalive_cost_usd, runs[3].keepalive_cost_usd)
    );
}

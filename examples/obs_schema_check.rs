//! Validate a JSONL trace produced by `pulse-exp --trace-out`: every line
//! must parse back into a typed `pulse::obs::ObsEvent` (CI's obs job runs
//! this as a schema self-check), and the event mix is summarized by kind.
//!
//! ```bash
//! cargo run --release -p pulse-experiments -- --runs 1 --horizon 300 \
//!     --trace-out run.jsonl chaos
//! cargo run --example obs_schema_check -- run.jsonl
//! ```

#![allow(clippy::expect_used)] // a validator should die loudly on bad input

use pulse::obs::ObsEvent;

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: obs_schema_check <trace.jsonl>");
    let text = std::fs::read_to_string(&path).expect("read trace file");

    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    let mut runs = 0usize;
    for (i, line) in text.lines().enumerate() {
        let ev = ObsEvent::from_json(line)
            .unwrap_or_else(|e| panic!("{path}:{}: invalid event: {e}", i + 1));
        if matches!(ev, ObsEvent::RunStart { .. }) {
            runs += 1;
        }
        let kind = ev.kind();
        match counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((kind, 1)),
        }
    }

    let total: usize = counts.iter().map(|(_, n)| n).sum();
    assert!(total > 0, "trace must be non-empty");
    assert!(runs > 0, "trace must contain at least one run_start header");
    println!("{total} events across {runs} runs, all valid:");
    for (kind, n) in &counts {
        println!("  {kind:<10} {n}");
    }
}

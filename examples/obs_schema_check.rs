//! Validate a JSONL trace produced by `pulse-exp --trace-out`: every line
//! must parse back into a typed `pulse::obs::ObsEvent` (CI's obs and fleet
//! jobs run this as a schema self-check), and the event mix is summarized
//! by kind. `--require k1,k2,...` additionally fails the check unless every
//! named kind appears at least once — CI uses it to prove the fleet
//! lifecycle events (`node_down`, `node_recovered`, `migrate`) actually
//! round-trip through a real traced sweep.
//!
//! ```bash
//! cargo run --release -p pulse-experiments -- --runs 1 --horizon 300 \
//!     --trace-out run.jsonl chaos
//! cargo run --example obs_schema_check -- run.jsonl
//! cargo run --example obs_schema_check -- fleet.jsonl \
//!     --require node_down,node_recovered,migrate
//! ```

#![allow(clippy::expect_used)] // a validator should die loudly on bad input

use pulse::obs::ObsEvent;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require" => {
                let list = args
                    .get(i + 1)
                    .expect("--require takes a comma-separated kind list");
                required.extend(list.split(',').map(str::to_string));
                i += 2;
            }
            other => {
                path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let path = path.expect("usage: obs_schema_check <trace.jsonl> [--require k1,k2,...]");
    let text = std::fs::read_to_string(&path).expect("read trace file");

    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    let mut runs = 0usize;
    for (i, line) in text.lines().enumerate() {
        let ev = ObsEvent::from_json(line)
            .unwrap_or_else(|e| panic!("{path}:{}: invalid event: {e}", i + 1));
        if matches!(ev, ObsEvent::RunStart { .. }) {
            runs += 1;
        }
        let kind = ev.kind();
        match counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((kind, 1)),
        }
    }

    let total: usize = counts.iter().map(|(_, n)| n).sum();
    assert!(total > 0, "trace must be non-empty");
    assert!(runs > 0, "trace must contain at least one run_start header");
    for kind in &required {
        assert!(
            counts.iter().any(|(k, _)| k == kind),
            "required event kind {kind:?} never appeared in {path}"
        );
    }
    println!("{total} events across {runs} runs, all valid:");
    for (kind, n) in &counts {
        println!("  {kind:<14} {n}");
    }
}

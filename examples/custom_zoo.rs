//! Bringing your own models and workload.
//!
//! Everything in the reproduction is driven by two inputs: a model catalog
//! (families of quality variants) and an invocation trace. This example
//! builds both from scratch — a catalog defined in the CSV format
//! `pulse::models::catalog` parses, and a bespoke workload declared with
//! `SynthConfig` — then runs the PULSE-vs-fixed comparison on them.
//!
//! ```text
//! cargo run --release --example custom_zoo
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail fast on demo input

use pulse::models::catalog;
use pulse::prelude::*;
use pulse::trace::synth::{Archetype, PeakSpec, SynthConfig};

const CATALOG: &str = "\
family,task,dataset,variant,warm_s,cold_s,memory_mb,accuracy_pct
Whisper,speech-to-text,librispeech,Whisper-Tiny,0.8,4.0,390,71.2
Whisper,speech-to-text,librispeech,Whisper-Base,1.4,5.5,740,76.9
Whisper,speech-to-text,librispeech,Whisper-Small,3.1,9.0,1900,83.4
Embed,embedding,msmarco,Embed-Mini,0.2,3.2,220,58.0
Embed,embedding,msmarco,Embed-Large,0.7,4.8,1100,66.5
";

fn main() {
    // 1. Parse the catalog (ladder invariants are validated on load).
    let zoo = catalog::from_csv(CATALOG).expect("valid catalog");
    println!("loaded {} custom families:", zoo.len());
    for fam in &zoo {
        println!(
            "  {:<8} {} variants, {:.0}–{:.0} MB, {:.1}–{:.1}% accuracy",
            fam.name,
            fam.n_variants(),
            fam.lowest().memory_mb,
            fam.highest().memory_mb,
            fam.lowest().accuracy_pct,
            fam.highest().accuracy_pct
        );
    }

    // 2. Declare a workload: a transcription API with a tight daytime
    //    cadence, a nightly batch embedder, and a lunchtime traffic spike.
    let trace = SynthConfig::new(2 * 24 * 60)
        .function(
            "transcribe-api",
            Archetype::SteadyPeriodic {
                period_min: 3,
                jitter_min: 1,
            },
        )
        .function(
            "embed-nightly",
            Archetype::OnOff {
                on_min: 240,
                off_min: 1200,
                period_in_on: 2,
            },
        )
        .function(
            "transcribe-burst",
            Archetype::Bursty {
                quiet_min: 90,
                burst_len_min: 10,
                burst_rate: 1.5,
            },
        )
        .function("embed-adhoc", Archetype::Poisson { rate: 0.05 })
        .peak(PeakSpec {
            start: 12 * 60 + 30,
            len: 5,
            intensity: 3.0,
        })
        .generate(17);

    // 3. Assign families (alternate the two) and compare policies.
    let families: Vec<ModelFamily> = (0..trace.n_functions())
        .map(|i| zoo[i % zoo.len()].clone())
        .collect();
    let sim = Simulator::new(trace, families.clone());
    let fixed = sim.run(&mut OpenWhiskFixed::new(&families));
    let dynamic = sim.run(&mut PulsePolicy::new(
        families,
        pulse::core::PulseConfig::default(),
    ));

    println!(
        "\n{:<12} {:>12} {:>12} {:>12}",
        "policy", "cost (USD)", "service (s)", "accuracy (%)"
    );
    for m in [&fixed, &dynamic] {
        println!(
            "{:<12} {:>12.4} {:>12.0} {:>12.2}",
            if m.policy.starts_with("open") {
                "fixed"
            } else {
                "pulse"
            },
            m.keepalive_cost_usd,
            m.service_time_s,
            m.avg_accuracy_pct()
        );
    }
    println!(
        "\nround-trip check: catalog serializes back to {} bytes of CSV",
        catalog::to_csv(&zoo).len()
    );
}

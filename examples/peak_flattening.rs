//! Watching Algorithm 1 + Algorithm 2 flatten a keep-alive memory peak.
//!
//! Drives the PULSE engine directly (no simulator): a steady memory level, a
//! sudden invocation burst that doubles the demanded keep-alive memory, and
//! the utility-ordered downgrades that bring it back under the threshold —
//! printed step by step.
//!
//! ```text
//! cargo run --release --example peak_flattening
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail fast on demo input

use pulse::core::global::{AliveModel, DowngradeAction};
use pulse::core::{PulseConfig, PulseEngine};

fn main() {
    let zoo = pulse::models::zoo::standard();
    // Ten functions: two of each family, all warmed at their highest rung —
    // the state right after a synchronized invocation burst.
    let families: Vec<_> = (0..10).map(|i| zoo[i % zoo.len()].clone()).collect();
    let names: Vec<String> = families.iter().map(|f| f.highest().name.clone()).collect();
    let mut engine = PulseEngine::new(families.clone(), PulseConfig::default());

    let mut alive: Vec<AliveModel> = families
        .iter()
        .enumerate()
        .map(|(func, f)| AliveModel {
            func,
            variant: f.highest_id(),
            // Pretend functions 0 and 1 are very likely to fire this minute.
            invocation_probability: if func < 2 { 0.9 } else { 0.05 },
        })
        .collect();

    let demand: f64 = families.iter().map(|f| f.highest().memory_mb).sum();
    let steady = demand / 2.0; // the burst doubled the steady level
    let history = vec![steady; 180];

    println!("steady keep-alive memory : {steady:>9.0} MB");
    println!("burst demand             : {demand:>9.0} MB");
    println!(
        "flatten target (KM_T=10%): {:>9.0} MB\n",
        engine.detector().flatten_target(steady)
    );

    let outcome = engine
        .check_and_flatten(&history, true, demand, &mut alive)
        .expect("the burst is a peak");

    println!("downgrade sequence (lowest utility first):");
    for (i, a) in outcome.actions.iter().enumerate() {
        match a {
            DowngradeAction::Downgrade { func, from, to } => println!(
                "  {:>2}. downgrade f{func} ({}) rung {from} -> {to}",
                i + 1,
                names[*func]
            ),
            DowngradeAction::Evict { func, .. } => {
                println!("  {:>2}. evict     f{func} ({})", i + 1, names[*func])
            }
        }
    }
    println!(
        "\nflattened to {:.0} MB in {} steps; flattened={}",
        outcome.final_kam_mb,
        outcome.actions.len(),
        outcome.flattened
    );
    println!(
        "high-probability functions kept their rung: f0 -> {:?}, f1 -> {:?}",
        alive.iter().find(|m| m.func == 0).map(|m| m.variant),
        alive.iter().find(|m| m.func == 1).map(|m| m.variant),
    );
    println!("\nper-function downgrade counts (the priority structure):");
    for (f, name) in names.iter().enumerate() {
        println!("  f{f} ({name:>12}): {}", engine.priority().count(f));
    }
}

//! Sub-minute latency fidelity: what the fixed-vs-PULSE trade-off looks
//! like at the request level, using the millisecond event-driven runtime
//! (`pulse::runtime`) instead of the minute simulator.
//!
//! The minute engine totals service time; the runtime exposes per-request
//! latency percentiles, queueing behind cold starts, and the effect of a
//! per-container concurrency cap — the operational view an SRE would ask
//! for before adopting PULSE.
//!
//! ```text
//! cargo run --release --example latency_tail
//! ```

use pulse::core::PulseConfig;
use pulse::prelude::*;
use pulse::runtime::{Runtime, RuntimeConfig};

fn main() {
    let trace = pulse::trace::synth::azure_like_12_with_horizon(55, 24 * 60);
    let families = pulse::sim::assignment::round_robin_assignment(
        &pulse::models::zoo::standard(),
        trace.n_functions(),
    );

    println!(
        "{:<26} {:>8} {:>8} {:>10} {:>10} {:>11}",
        "configuration", "warm", "cold", "p50 (ms)", "p99 (ms)", "cost (USD)"
    );

    let configs = [
        ("unbounded concurrency", RuntimeConfig::default()),
        (
            "per-container cap = 2",
            RuntimeConfig {
                max_concurrency: Some(2),
                ..Default::default()
            },
        ),
    ];
    for (label, rc) in configs {
        let rt = Runtime::new(trace.clone(), families.clone(), rc);
        for (policy_name, summary) in [
            ("openwhisk", rt.run(&mut OpenWhiskFixed::new(&families))),
            (
                "pulse",
                rt.run(&mut PulsePolicy::new(
                    families.clone(),
                    PulseConfig::default(),
                )),
            ),
        ] {
            println!(
                "{:<26} {:>8} {:>8} {:>10.0} {:>10.0} {:>11.3}",
                format!("{policy_name} / {label}"),
                summary.warm_starts(),
                summary.cold_starts(),
                summary.latency_p50_ms(),
                summary.latency_p99_ms(),
                summary.keepalive_cost_usd
            );
        }
    }

    println!(
        "\nPULSE's p50 falls (warm hits land on faster low-quality variants) while its\n\
         p99 tracks the cold-start tail; the concurrency cap adds queueing delay to\n\
         bursty minutes without changing warm/cold accounting."
    );
}

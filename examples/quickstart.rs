//! Quickstart: simulate PULSE against the fixed 10-minute keep-alive policy
//! on a two-day, 12-function Azure-like workload and print the three
//! headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pulse::prelude::*;

fn main() {
    // 1. A workload: per-minute invocation counts for 12 functions over two
    //    days, spanning steady, bursty, diurnal, drifting and heavy-tailed
    //    invocation patterns (a synthetic stand-in for the Azure trace).
    let trace = pulse::trace::synth::azure_like_12_with_horizon(7, 2 * 24 * 60);

    // 2. A model assignment: each function hosts one ML model family from
    //    the paper's zoo (BERT, YOLO, GPT, ResNet, DenseNet), each with
    //    2–3 quality variants trading accuracy against memory and latency.
    let zoo = pulse::models::zoo::standard();
    let families = pulse::sim::assignment::round_robin_assignment(&zoo, trace.n_functions());

    // 3. Simulate both keep-alive policies on identical inputs.
    let sim = Simulator::new(trace, families.clone());
    let fixed = sim.run(&mut OpenWhiskFixed::new(&families));
    let mut pulse_policy = PulsePolicy::new(families, PulseConfig::default());
    let dynamic = sim.run(&mut pulse_policy);

    // 4. Compare.
    println!(
        "{:<28} {:>14} {:>14} {:>12} {:>12}",
        "policy", "service time(s)", "cost(USD)", "accuracy(%)", "warm rate"
    );
    for m in [&fixed, &dynamic] {
        println!(
            "{:<28} {:>14.0} {:>14.3} {:>12.2} {:>11.1}%",
            m.policy,
            m.service_time_s,
            m.keepalive_cost_usd,
            m.avg_accuracy_pct(),
            m.warm_fraction() * 100.0
        );
    }
    let cost_cut =
        (fixed.keepalive_cost_usd - dynamic.keepalive_cost_usd) / fixed.keepalive_cost_usd * 100.0;
    let svc_cut = (fixed.service_time_s - dynamic.service_time_s) / fixed.service_time_s * 100.0;
    println!(
        "\nPULSE cuts keep-alive cost by {cost_cut:.1}% and service time by {svc_cut:.1}% \
         (paper: 39.5% and 8.8%), with {} utility-driven downgrades at memory peaks.",
        dynamic.downgrades
    );
}

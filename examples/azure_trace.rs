//! Working with the Azure Functions trace format.
//!
//! The paper's workload is the Microsoft Azure Functions production trace
//! (one CSV per day: `HashOwner,HashApp,HashFunction,Trigger,1,…,1440`).
//! That dataset cannot be vendored, so this example shows the full path a
//! user with the real files would take — here driven by synthetic day files
//! written in the same schema:
//!
//! 1. write/parse per-day CSVs,
//! 2. merge days into a two-week workload,
//! 3. run the paper's inter-arrival and peak analyses,
//! 4. simulate PULSE vs the fixed policy on the parsed trace.
//!
//! ```text
//! cargo run --release --example azure_trace
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples fail fast on demo input

use pulse::prelude::*;
use pulse::trace::{csv, interarrival, peaks, MINUTES_PER_DAY};

fn main() {
    // Pretend these came from the dataset: 14 day files in Azure's schema.
    let source = pulse::trace::synth::azure_like_12(2024);
    let day_files: Vec<String> = (0..14).map(|d| csv::to_azure_day_csv(&source, d)).collect();
    println!(
        "wrote {} synthetic day files in the Azure schema",
        day_files.len()
    );

    // Parse and merge them back into one workload.
    let days: Vec<csv::AzureDay> = day_files
        .iter()
        .map(|s| csv::parse_azure_day(s).expect("valid day file"))
        .collect();
    let trace = csv::merge_azure_days(&days).expect("mergeable days");
    println!(
        "merged: {} functions x {} minutes, {} invocations total\n",
        trace.n_functions(),
        trace.minutes(),
        trace.total_invocations()
    );

    // The paper's trace characterizations.
    println!("top inter-arrival gaps per function (gap<=10min, % of invocations):");
    for f in trace.functions().iter().take(5) {
        let p = interarrival::gap_percentages(f, 10);
        let (best_gap, best_pct) = p
            .iter()
            .enumerate()
            .map(|(i, &v)| (i + 1, v))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!("  {:<28} mode gap {best_gap} min ({best_pct:.1}%)", f.name);
    }
    let totals = peaks::total_per_minute(&trace);
    let top = peaks::top_peaks(&totals, 2, 60);
    println!("\ntwo most prominent invocation peaks (Tables II/III windows):");
    for (minute, count) in &top {
        println!("  minute {minute}: {count} invocations across the fleet");
    }

    // Simulate on the parsed trace, exactly as with the real dataset.
    let families = pulse::sim::assignment::round_robin_assignment(
        &pulse::models::zoo::standard(),
        trace.n_functions(),
    );
    let sim = Simulator::new(trace.slice(0, 2 * MINUTES_PER_DAY), families.clone());
    let fixed = sim.run(&mut OpenWhiskFixed::new(&families));
    let dynamic = sim.run(&mut PulsePolicy::new(families, PulseConfig::default()));
    println!(
        "\nfirst two days: fixed policy ${:.2} vs PULSE ${:.2} keep-alive ({:.1}% cheaper)",
        fixed.keepalive_cost_usd,
        dynamic.keepalive_cost_usd,
        (1.0 - dynamic.keepalive_cost_usd / fixed.keepalive_cost_usd) * 100.0
    );
}
